//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no network access and no crates.io mirror, so the
//! workspace vendors the slice of `rand` it actually uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), and [`rngs::StdRng`]. Call sites are source-compatible with
//! the real crate; only the concrete output streams differ (`StdRng` here is
//! xoshiro256** seeded via SplitMix64 rather than ChaCha12). Nothing in the
//! workspace depends on specific stream values — only on determinism for a
//! fixed seed — so the swap is behavior-preserving.
//!
//! This is NOT a cryptographic RNG. It is a fast, high-quality statistical
//! generator for Monte-Carlo simulation.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random bits.
///
/// Object-safe; executors take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// SplitMix64 step — used to expand small seeds into full generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 so
    /// that similar seeds still yield well-separated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut src = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut src).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait SampleStandard: Sized {
    /// Draws one value from the standard distribution of the type
    /// (uniform bits for integers, uniform `[0, 1)` for floats).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform `u64` in `[0, span)` without modulo bias (rejection sampling).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64; values at or above it
    // would bias the low residues and are rejected (at most ~50% of draws,
    // typically far fewer).
    let limit = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < limit {
            return v % span;
        }
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution (uniform bits
    /// for integers, uniform `[0, 1)` for floats).
    #[inline]
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Small (32 bytes of state), fast, and passes BigCrush; the streams
    /// differ from upstream `rand`'s ChaCha12-based `StdRng`, which is fine
    /// because the workspace only relies on per-seed determinism.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_integers_cover_uniformly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut hist = [0u32; 7];
        for _ in 0..70_000 {
            hist[rng.gen_range(0..7usize)] += 1;
        }
        for &h in &hist {
            assert!((h as f64 - 10_000.0).abs() < 600.0, "hist = {hist:?}");
        }
        // Offset ranges respect the bounds.
        for _ in 0..1000 {
            let v = rng.gen_range(1..16u8);
            assert!((1..16).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_floats_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let u: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&u));
        let _ = dyn_rng.gen_range(0..10u64);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }
}
