//! Offline vendored micro-benchmark harness, API-compatible with the slice
//! of `criterion` 0.5 the workspace uses.
//!
//! The build container has no crates.io access, so this crate re-implements
//! the benchmarking surface the `qbenches` crate is written against:
//! `criterion_group!` / `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / `bench_with_input`, `sample_size`,
//! `throughput`, and [`Bencher::iter`]. Statistics are intentionally simple
//! — per-sample median / mean / min over wall-clock time — but measured the
//! same way criterion measures: each sample times a batch of iterations
//! sized from a calibration pass, so per-iteration overhead is amortized.
//!
//! Extras:
//!
//! * positional CLI arguments act as substring filters on `group/name` ids
//!   (like `cargo bench -- <filter>`); flags (`--bench`, …) are ignored;
//! * setting `CRITERION_JSON=<path>` appends one JSON line per benchmark
//!   (`{"id": …, "median_ns": …, "mean_ns": …, "min_ns": …, "samples": …}`),
//!   which is how `BENCH_sampler.json` baselines are produced.

#![warn(missing_docs)]

use std::fmt::Display;
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration and CLI filter state.
#[derive(Debug)]
pub struct Criterion {
    filters: Vec<String>,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            filters,
            sample_size: 20,
            measurement: Duration::from_millis(1000),
            warm_up: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Overrides the default per-benchmark sample count.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Overrides the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id, sample_size, None, &mut f);
    }

    fn matches_filter(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f))
    }

    fn run_one(
        &mut self,
        id: &str,
        sample_size: usize,
        throughput: Option<&Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if !self.matches_filter(id) {
            return;
        }
        // Calibration: double the batch size until one batch is long enough
        // to time reliably, also serving as warm-up.
        let warm_deadline = Instant::now() + self.warm_up;
        let mut iters = 1u64;
        let per_iter_ns = loop {
            let elapsed = time_batch(f, iters);
            let long_enough = elapsed >= Duration::from_millis(5);
            if (long_enough && Instant::now() >= warm_deadline) || iters >= 1 << 40 {
                break (elapsed.as_nanos() as f64 / iters as f64).max(0.1);
            }
            if !long_enough {
                iters = iters.saturating_mul(2);
            }
        };
        let per_sample = self.measurement.as_nanos() as f64 / sample_size as f64;
        let sample_iters = ((per_sample / per_iter_ns) as u64).max(1);
        let mut samples: Vec<f64> = (0..sample_size)
            .map(|_| time_batch(f, sample_iters).as_nanos() as f64 / sample_iters as f64)
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let min = samples[0];
        let median = if samples.len() % 2 == 1 {
            samples[samples.len() / 2]
        } else {
            0.5 * (samples[samples.len() / 2 - 1] + samples[samples.len() / 2])
        };
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;

        let mut line = format!(
            "{id:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
        if let Some(tp) = throughput {
            let _ = write!(line, "  thrpt: {}", tp.render(median));
        }
        println!("{line}");
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    file,
                    "{{\"id\": \"{id}\", \"median_ns\": {median:.1}, \"mean_ns\": {mean:.1}, \
                     \"min_ns\": {min:.1}, \"samples\": {}, \"iters_per_sample\": {sample_iters}}}",
                    samples.len()
                );
            }
        }
    }
}

fn time_batch(f: &mut dyn FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Work-rate annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

impl Throughput {
    fn render(&self, median_ns: f64) -> String {
        let (count, unit) = match self {
            Throughput::Elements(n) => (*n, "elem/s"),
            Throughput::Bytes(n) => (*n, "B/s"),
        };
        let rate = count as f64 * 1e9 / median_ns;
        if rate >= 1e9 {
            format!("{:.3} G{unit}", rate / 1e9)
        } else if rate >= 1e6 {
            format!("{:.3} M{unit}", rate / 1e6)
        } else if rate >= 1e3 {
            format!("{:.3} K{unit}", rate / 1e3)
        } else {
            format!("{rate:.1} {unit}")
        }
    }
}

/// A parameterized benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = Some(n);
        self
    }

    /// Overrides the target measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Annotates subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let throughput = self.throughput;
        self.criterion
            .run_one(&full, sample_size, throughput.as_ref(), &mut f);
    }

    /// Times `f` with a borrowed input under `group_name/benchmark_id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id.id, |b| f(b, input));
    }

    /// Ends the group (drop would do; kept for API compatibility).
    pub fn finish(self) {}
}

/// Times the closure handed to it over a fixed iteration count.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the batch's iteration count and records the wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_batches() {
        let mut c = Criterion {
            filters: Vec::new(),
            sample_size: 3,
            measurement: Duration::from_millis(20),
            warm_up: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut ran = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran += 1;
        });
        group.finish();
        assert!(ran > 0, "benchmark closure never ran");
    }

    #[test]
    fn filters_skip_nonmatching() {
        let mut c = Criterion {
            filters: vec!["wanted".into()],
            sample_size: 2,
            measurement: Duration::from_millis(5),
            warm_up: Duration::from_millis(1),
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(!ran, "filtered benchmark should not run");
        c.bench_function("the_wanted_one", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran, "matching benchmark should run");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("brute", 5).id, "brute/5");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(2.0e9).contains(" s"));
    }
}
