//! Characterize a machine's Relative Basis Measurement Strength three ways
//! — the paper's Appendix A validation (Figure 15).
//!
//! Profiles ibmqx4 by brute force (prepare and measure every basis state),
//! by ESCT (one uniform superposition), and by AWCT (sliding 3-qubit
//! windows), then compares each estimate against the exact channel
//! diagonal.
//!
//! ```sh
//! cargo run --release -p invmeas --example device_characterization
//! ```

use invmeas::RbmsTable;
use qmetrics::{fmt_prob, Table};
use qnoise::{DeviceModel, NoisyExecutor};
use qsim::BitString;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let device = DeviceModel::ibmqx4();
    let exec = NoisyExecutor::readout_only(&device);

    println!(
        "Characterizing {} (5 qubits, arbitrary bias)\n",
        device.name()
    );

    let exact = RbmsTable::exact(&device.readout());
    let brute = RbmsTable::brute_force(&exec, 16_000, &mut rng);
    let esct = RbmsTable::esct(&exec, 512_000, &mut rng);
    let awct = RbmsTable::awct(&exec, 3, 2, 170_000, &mut rng);

    let mut summary = Table::new(&["technique", "trials", "MSE vs exact", "strongest"]);
    for (name, table) in [
        ("exact (channel diagonal)", &exact),
        ("brute force (32 states)", &brute),
        ("ESCT (superposition)", &esct),
        ("AWCT (window=3, overlap=2)", &awct),
    ] {
        summary.row_owned(vec![
            name.to_string(),
            if table.trials_used() == 0 {
                "-".to_string()
            } else {
                table.trials_used().to_string()
            },
            format!("{:.5}", table.mse_vs(&exact)),
            table.strongest_state().to_string(),
        ]);
    }
    println!("{summary}");

    println!(
        "Hamming-weight correlation of the exact profile: {:.3}",
        exact.hamming_correlation()
    );
    println!("\nRelative strength per state (Figure 15 series):");
    let mut per_state = Table::new(&["state", "exact", "brute", "ESCT", "AWCT"]);
    let (e, b, s, a) = (
        exact.relative(),
        brute.relative(),
        esct.relative(),
        awct.relative(),
    );
    for st in BitString::all_by_hamming_weight(5) {
        let i = st.index();
        per_state.row_owned(vec![
            st.to_string(),
            fmt_prob(e[i]),
            fmt_prob(b[i]),
            fmt_prob(s[i]),
            fmt_prob(a[i]),
        ]);
    }
    println!("{per_state}");
}
