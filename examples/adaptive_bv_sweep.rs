//! Bernstein-Vazirani across every possible 5-bit key — the paper's
//! Figure 13, reduced to an example.
//!
//! With the baseline, application fidelity depends heavily on the stored
//! key; with AIM it becomes flat and high for every key except the trivial
//! strongest state (where the baseline was already optimal).
//!
//! ```sh
//! cargo run --release -p invmeas --example adaptive_bv_sweep
//! ```

use invmeas::{AdaptiveInvertMeasure, Baseline, MeasurementPolicy, RbmsTable, StaticInvertMeasure};
use qmetrics::{fmt_prob, min_avg_max, pst, Table};
use qnoise::{DeviceModel, NoisyExecutor};
use qsim::BitString;
use qworkloads::Benchmark;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    let shots = 4_000;
    let device = DeviceModel::ibmqx4();
    let exec = NoisyExecutor::from_device(&device);
    let profile = RbmsTable::exact(&device.readout());

    let sim = StaticInvertMeasure::four_mode(5);
    let aim = AdaptiveInvertMeasure::new(profile);

    println!(
        "BV with all 32 keys on {} ({shots} trials per key per policy)\n",
        device.name()
    );
    let mut table = Table::new(&["key", "baseline", "SIM", "AIM"]);
    let mut series = (Vec::new(), Vec::new(), Vec::new());
    for key in BitString::all_by_hamming_weight(5) {
        let bench = Benchmark::bv_phase(format!("bv-{key}"), key);
        let p_base = pst(
            &Baseline.execute(bench.circuit(), shots, &exec, &mut rng),
            bench.correct(),
        );
        let p_sim = pst(
            &sim.execute(bench.circuit(), shots, &exec, &mut rng),
            bench.correct(),
        );
        let p_aim = pst(
            &aim.execute(bench.circuit(), shots, &exec, &mut rng),
            bench.correct(),
        );
        series.0.push(p_base);
        series.1.push(p_sim);
        series.2.push(p_aim);
        table.row_owned(vec![
            key.to_string(),
            fmt_prob(p_base),
            fmt_prob(p_sim),
            fmt_prob(p_aim),
        ]);
    }
    println!("{table}");

    let mut summary = Table::new(&["policy", "min PST", "avg PST", "max PST"]);
    for (name, s) in [
        ("baseline", &series.0),
        ("SIM", &series.1),
        ("AIM", &series.2),
    ] {
        let (min, avg, max) = min_avg_max(s);
        summary.row_owned(vec![
            name.to_string(),
            fmt_prob(min),
            fmt_prob(avg),
            fmt_prob(max),
        ]);
    }
    println!("{summary}");
    println!("AIM's min PST is the figure of merit: fidelity no longer depends");
    println!("on the value the application stores.");
}
