//! Quickstart: run a Bernstein-Vazirani program on a biased NISQ machine
//! and watch SIM and AIM recover the reliability the baseline loses.
//!
//! ```sh
//! cargo run --release -p invmeas --example quickstart
//! ```

use invmeas::{AdaptiveInvertMeasure, Baseline, MeasurementPolicy, RbmsTable, StaticInvertMeasure};
use qmetrics::{fmt_prob, fmt_ratio, ist, pst, roca, Table};
use qnoise::{DeviceModel, NoisyExecutor};
use qworkloads::Benchmark;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2019);
    let shots = 16_000;

    // The arbitrary-bias five-qubit machine from the paper's evaluation.
    let device = DeviceModel::ibmqx4();
    let exec = NoisyExecutor::from_device(&device);

    // bv-4B: the all-ones secret key — the hardest value to read back.
    let bench = Benchmark::bv("bv-4B", "1111".parse().expect("valid key"));
    println!(
        "Running {} ({} qubits, {} gates) on {} for {shots} trials per policy\n",
        bench.name(),
        bench.circuit().n_qubits(),
        bench.circuit().len(),
        device.name(),
    );

    // AIM needs a machine profile; profile the readout channel exactly.
    let profile = RbmsTable::exact(&device.readout());
    let policies: Vec<Box<dyn MeasurementPolicy>> = vec![
        Box::new(Baseline),
        Box::new(StaticInvertMeasure::four_mode(5)),
        Box::new(AdaptiveInvertMeasure::new(profile)),
    ];

    let mut table = Table::new(&["policy", "PST", "IST", "ROCA", "PST gain"]);
    let mut baseline_pst = None;
    for policy in &policies {
        let log = policy.execute(bench.circuit(), shots, &exec, &mut rng);
        let p = pst(&log, bench.correct());
        let base = *baseline_pst.get_or_insert(p);
        table.row_owned(vec![
            policy.name(),
            fmt_prob(p),
            fmt_ratio(ist(&log, bench.correct())),
            roca(&log, bench.correct())
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".to_string()),
            fmt_ratio(p / base),
        ]);
    }
    println!("{table}");
    println!("SIM averages the bias; AIM steers the answer onto the strongest state.");
}
