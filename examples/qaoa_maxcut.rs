//! QAOA max-cut under measurement noise — the paper's Table 2 / Figure 9
//! scenario on a single graph.
//!
//! Solves max-cut for a 6-node graph whose optimal partition has high
//! Hamming weight (the paper's graph D, output 101011), runs it on the
//! 14-qubit machine model, and compares the three measurement policies on
//! all three reliability metrics.
//!
//! ```sh
//! cargo run --release -p invmeas --example qaoa_maxcut
//! ```

use invmeas::{AdaptiveInvertMeasure, Baseline, MeasurementPolicy, RbmsTable, StaticInvertMeasure};
use qmetrics::{fmt_prob, fmt_ratio, ReliabilityReport, Table};
use qnoise::{DeviceModel, NoisyExecutor};
use qworkloads::{Benchmark, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let shots = 16_000;

    // The paper's graph D: optimal cut 101011 (Hamming weight 4).
    let target: qsim::BitString = "101011".parse().expect("valid cut");
    let graph = Graph::complete_bipartite(target);
    println!(
        "Max-cut on a 6-node graph: {} edges, optimal cut {target} (weight {})",
        graph.edges().len(),
        target.hamming_weight()
    );

    // Allocate the benchmark onto the six best qubits of the 14-qubit
    // machine (the paper's variability-aware mapping).
    let device = DeviceModel::ibmq_melbourne().best_qubits_subdevice(6);
    let exec = NoisyExecutor::from_device(&device);
    let bench = Benchmark::qaoa_on_graph("qaoa-6-graphD", graph, 2);
    println!(
        "QAOA p=2 circuit: {} gates ({} two-qubit) on {}\n",
        bench.circuit().len(),
        bench.circuit().two_qubit_gate_count(),
        device.name()
    );

    let profile = RbmsTable::exact(&device.readout());
    let policies: Vec<Box<dyn MeasurementPolicy>> = vec![
        Box::new(Baseline),
        Box::new(StaticInvertMeasure::four_mode(6)),
        Box::new(AdaptiveInvertMeasure::new(profile)),
    ];

    let mut table = Table::new(&["policy", "PST", "IST", "ROCA"]);
    for policy in &policies {
        let log = policy.execute(bench.circuit(), shots, &exec, &mut rng);
        let r = ReliabilityReport::evaluate(&log, bench.correct());
        table.row_owned(vec![
            policy.name(),
            fmt_prob(r.pst),
            fmt_ratio(r.ist),
            r.roca
                .map(|x| x.to_string())
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    println!("{table}");
    println!("A rank (ROCA) near 1 means classically re-checking the top few");
    println!("outputs finds the optimal cut — the paper's Figure 9 improvement.");
}
