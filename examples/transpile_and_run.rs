//! Full compiler-to-measurement pipeline: allocate, route, export QASM,
//! execute under noise, fold back to logical outcomes, and mitigate.
//!
//! This mirrors how the paper's experiments actually ran: a logical kernel
//! is compiled onto the machine's best qubits (variability-aware, §4.3),
//! lowered to OpenQASM, executed for thousands of trials, and the measured
//! physical bit strings are interpreted back as logical answers.
//!
//! ```sh
//! cargo run --release -p invmeas --example transpile_and_run
//! ```

use invmeas::{Baseline, InversionString, MeasurementPolicy, StaticInvertMeasure};
use qmetrics::{fmt_prob, pst, Table};
use qnoise::{DeviceModel, Executor, NoisyExecutor};
use qworkloads::Benchmark;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let shots = 16_000;
    let device = DeviceModel::ibmq_melbourne();

    // A 6-qubit Bernstein-Vazirani kernel (5-bit key + ancilla).
    let bench = Benchmark::bv("bv-5", "11011".parse().expect("valid key"));
    println!(
        "Kernel: {} ({} logical qubits, {} gates)",
        bench.name(),
        bench.circuit().n_qubits(),
        bench.circuit().len()
    );

    // Variability-aware allocation + SWAP routing onto the 14-qubit device.
    let routed = qmapper::route_auto(bench.circuit(), &device).expect("melbourne fits 6 qubits");
    println!(
        "Mapped onto physical qubits {:?} with {} SWAPs",
        routed.output_layout(),
        routed.swap_count()
    );

    // The exact program that would be submitted to the cloud:
    let qasm = qsim::qasm::to_qasm(routed.circuit());
    println!(
        "\nOpenQASM job ({} lines), first gates:",
        qasm.lines().count()
    );
    for line in qasm.lines().skip(4).take(5) {
        println!("  {line}");
    }

    // Execute the physical circuit and fold outcomes back to logical bits.
    let exec = NoisyExecutor::from_device(&device);
    let physical_log = exec.run(routed.circuit(), shots, &mut rng);
    let logical_log = routed.logical_counts(&physical_log);
    let base_pst = pst(&logical_log, bench.correct());

    // Mitigation composes with mapping: apply SIM's inversion on the
    // *logical* qubits by inverting the routed circuit's output qubits.
    let n_log = bench.circuit().n_qubits();
    let sim = StaticInvertMeasure::four_mode(n_log);
    let mut merged = qsim::Counts::new(n_log);
    for inv in sim.strings() {
        // Lift the logical inversion mask onto the physical output layout.
        let mut phys_circuit = routed.circuit().clone();
        for logical in inv.mask().iter_ones() {
            phys_circuit.x(routed.output_qubit(logical));
        }
        let group = exec.run(&phys_circuit, shots / 4, &mut rng);
        merged.merge(&inv.correct(&routed.logical_counts(&group)));
    }
    let sim_pst = pst(&merged, bench.correct());

    let mut t = Table::new(&["policy", "PST (logical)"]);
    t.row_owned(vec![Baseline.name(), fmt_prob(base_pst)]);
    t.row_owned(vec![sim.name(), fmt_prob(sim_pst)]);
    println!("\n{t}");
    println!(
        "Post-measurement correction and mapping commute: inversion string {} acts on\n\
         physical qubits {:?}.",
        InversionString::full(n_log),
        (0..n_log)
            .map(|q| routed.output_qubit(q))
            .collect::<Vec<_>>()
    );
}
