//! Smoke tests: every reproduction experiment runs at reduced scale and
//! produces well-formed output.

use repro::experiments::{self, ALL_EXPERIMENTS};
use repro::Config;

#[test]
fn every_experiment_runs_at_low_scale() {
    let cfg = Config::quick();
    for (id, _) in ALL_EXPERIMENTS {
        let outputs = experiments::run(id, &cfg).unwrap_or_else(|e| panic!("{id}: {e}"));
        assert!(!outputs.is_empty(), "{id} produced nothing");
        for out in &outputs {
            assert_eq!(out.id, *id);
            assert!(!out.sections.is_empty(), "{id} has no sections");
            let rendered = out.to_string();
            assert!(rendered.contains(out.id), "{id} render missing id");
            assert!(rendered.len() > 50, "{id} render suspiciously short");
        }
    }
}

#[test]
fn unknown_experiment_is_rejected() {
    assert!(experiments::run("fig99", &Config::quick()).is_err());
}

#[test]
fn run_all_covers_every_artifact() {
    let outputs = experiments::run_all(&Config::quick());
    assert_eq!(outputs.len(), ALL_EXPERIMENTS.len());
    for ((id, _), out) in ALL_EXPERIMENTS.iter().zip(&outputs) {
        assert_eq!(out.id, *id, "run_all order must match the index");
    }
}

#[test]
fn shots_scaling_keeps_minimum() {
    let cfg = Config {
        scale: 1e-9,
        seed: 0,
    };
    assert_eq!(cfg.shots(32_000), 64);
    let cfg = Config::default();
    assert_eq!(cfg.shots(32_000), 32_000);
}

#[test]
fn experiments_are_deterministic_for_fixed_seed() {
    let cfg = Config::quick();
    let a = experiments::run("fig1", &cfg).unwrap();
    let b = experiments::run("fig1", &cfg).unwrap();
    assert_eq!(a[0].to_string(), b[0].to_string());
    // Different seed, different samples.
    let cfg2 = Config {
        seed: 1,
        ..Config::quick()
    };
    let c = experiments::run("fig1", &cfg2).unwrap();
    assert_ne!(a[0].to_string(), c[0].to_string());
}
