//! Cross-crate characterization consistency: the RBMS estimators, the
//! device models, and the workloads agree with each other.

use invmeas::RbmsTable;
use qnoise::{DeviceModel, Executor, NoisyExecutor};
use qsim::{BitString, StateVector};
use qworkloads::{uniform_superposition_circuit, Benchmark};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The uniform-superposition output distribution under readout noise
/// correlates with the per-state measurement strength (§3.2's closing
/// observation: the H⊗n output distribution tracks relative BMS).
#[test]
fn superposition_distribution_tracks_strength() {
    let dev = DeviceModel::ibmqx2();
    let exec = NoisyExecutor::readout_only(&dev);
    let dist = exec.exact_readout_distribution(&uniform_superposition_circuit(5));
    let readout = dev.readout();
    let table = RbmsTable::exact(&readout);
    let corr = qmetrics::pearson_correlation(dist.probabilities(), &table.relative());
    assert!(corr > 0.95, "superposition/strength correlation = {corr}");
}

/// The ESCT estimator agrees with the exact channel diagonal on every
/// device model, not just ibmqx2.
#[test]
fn esct_agrees_with_exact_on_all_five_qubit_machines() {
    for dev in [DeviceModel::ibmqx2(), DeviceModel::ibmqx4()] {
        let exec = NoisyExecutor::readout_only(&dev);
        let mut rng = StdRng::seed_from_u64(31);
        let est = RbmsTable::esct(&exec, 300_000, &mut rng);
        let readout = dev.readout();
        let exact = RbmsTable::exact(&readout);
        let mse = est.mse_vs(&exact);
        assert!(mse < 0.02, "{}: ESCT MSE = {mse}", dev.name());
    }
}

/// AWCT windows cover every qubit: perturbing any single qubit's error
/// visibly changes the combined estimate.
#[test]
fn awct_is_sensitive_to_every_qubit() {
    let mut rng = StdRng::seed_from_u64(77);
    let nominal = DeviceModel::ibmqx4();
    let exec = NoisyExecutor::readout_only(&nominal);
    let base = RbmsTable::awct(&exec, 3, 2, 60_000, &mut rng);
    for q in 0..5 {
        // A device where qubit q has a catastrophically *asymmetric* error
        // (a symmetric one would shift all states uniformly and leave the
        // relative table unchanged, by design).
        let drifted = {
            let mut specs: Vec<qnoise::QubitSpec> = (0..5).map(|i| *nominal.qubit(i)).collect();
            specs[q].assignment = qnoise::FlipPair::new(0.0, 0.6);
            DeviceModel::from_parts(
                "perturbed",
                specs,
                nominal.coupling().to_vec(),
                0.0,
                Vec::new(),
                nominal.meas_duration_us(),
                Vec::new(),
            )
        };
        let exec2 = NoisyExecutor::readout_only(&drifted);
        let perturbed = RbmsTable::awct(&exec2, 3, 2, 60_000, &mut rng);
        let mse = perturbed.mse_vs(&base);
        assert!(mse > 0.01, "AWCT blind to qubit {q}: MSE only {mse}");
    }
}

/// Workload sanity across the noise boundary: the ideal Born distribution
/// of every Table 3 benchmark is preserved by an ideal executor and only
/// reshaped (never widened) by readout noise.
#[test]
fn benchmarks_survive_the_noise_boundary() {
    let mut rng = StdRng::seed_from_u64(41);
    for bench in qworkloads::suite_q5() {
        let n = bench.circuit().n_qubits();
        let ideal_psi = StateVector::from_circuit(bench.circuit());
        let ideal_pst: f64 = bench
            .correct()
            .outputs()
            .iter()
            .map(|&s| ideal_psi.probability_of(s))
            .sum();
        let dev = DeviceModel::ibmqx4().best_qubits_subdevice(n);
        let exec = NoisyExecutor::readout_only(&dev);
        let log = exec.run(bench.circuit(), 8_000, &mut rng);
        let noisy_pst: f64 = bench
            .correct()
            .outputs()
            .iter()
            .map(|s| log.frequency(s))
            .sum();
        assert!(
            noisy_pst < ideal_pst + 0.02,
            "{}: readout noise should not raise PST ({noisy_pst} vs {ideal_pst})",
            bench.name()
        );
        assert!(
            noisy_pst > 0.05,
            "{}: noise model too destructive ({noisy_pst})",
            bench.name()
        );
    }
}

/// The confusion-matrix mitigation and the RBMS profile describe the same
/// channel: the matrix diagonal equals the profile strengths.
#[test]
fn confusion_diagonal_is_rbms() {
    let readout = DeviceModel::ibmqx4().readout();
    let cm = invmeas::ConfusionMatrix::from_model(&readout);
    let table = RbmsTable::exact(&readout);
    for s in BitString::all(5) {
        assert!(
            (cm.probability(s, s) - table.strength(s)).abs() < 1e-12,
            "diagonal mismatch at {s}"
        );
    }
}

/// Correct sets and benchmark circuits stay consistent: the BV ancilla bit
/// is part of the correct output and the circuit width.
#[test]
fn bv_benchmark_widths_align() {
    let bench = Benchmark::bv("bv-6", "011111".parse().unwrap());
    assert_eq!(bench.circuit().n_qubits(), 7);
    assert_eq!(bench.correct().outputs()[0].width(), 7);
    assert!(
        bench.correct().outputs()[0].bit(6),
        "ancilla bit must be set"
    );
}
