//! Cross-validation of the stochastic execution stack against exact
//! density-matrix evolution: the Monte-Carlo trajectory executor and the
//! composed readout channel must converge to the closed-form answers.

use qnoise::{
    CorrelatedReadout, DeviceModel, Executor, FlipPair, GateNoise, NoisyExecutor, ReadoutModel,
    TensorReadout,
};
use qsim::{BitString, Circuit, DensityMatrix, Distribution, KrausChannel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Evolves a circuit under per-gate single-qubit depolarizing noise,
/// exactly, on the density matrix.
fn exact_noisy_density(circuit: &Circuit, p1q: f64) -> DensityMatrix {
    let mut rho = DensityMatrix::zero(circuit.n_qubits());
    let ch = KrausChannel::depolarizing(p1q);
    for g in circuit.gates() {
        rho.apply_gate(g);
        if !g.is_two_qubit() {
            rho.apply_channel(&ch, g.qubits()[0]);
        }
    }
    rho
}

#[test]
fn trajectories_converge_to_density_matrix() {
    // Single-qubit gates only, so the trajectory model (insert X/Y/Z with
    // probability p after each gate) is exactly the depolarizing channel.
    let mut c = Circuit::new(2);
    c.h(0).rx(1, 0.9).rz(0, 0.4).ry(1, -1.2).h(1);
    let p1q = 0.08;

    let exact = exact_noisy_density(&c, p1q);

    let readout = CorrelatedReadout::from_tensor(TensorReadout::uniform(2, FlipPair::IDEAL));
    let gate_noise = GateNoise::uniform(2, p1q, 0.0);
    let exec = NoisyExecutor::new(readout, gate_noise).with_max_trajectories(u64::MAX);
    let mut rng = StdRng::seed_from_u64(1234);
    let shots = 400_000;
    let log = exec.run(&c, shots, &mut rng);

    for s in BitString::all(2) {
        let expect = exact.probability_of(s);
        let got = log.frequency(&s);
        assert!(
            (expect - got).abs() < 0.004,
            "state {s}: exact {expect} vs sampled {got}"
        );
    }
}

#[test]
fn trajectories_with_readout_converge() {
    let mut c = Circuit::new(2);
    c.h(0).ry(1, 0.7).rz(0, 1.1);
    let p1q = 0.05;
    let pairs = vec![FlipPair::new(0.03, 0.12), FlipPair::new(0.06, 0.20)];

    // Exact: density diagonal pushed through the readout channel.
    let rho = exact_noisy_density(&c, p1q);
    let born = Distribution::from_probabilities(2, rho.probabilities());
    let tensor = TensorReadout::new(pairs.clone());
    let exact = tensor.apply_to_distribution(&born);

    let exec = NoisyExecutor::new(
        CorrelatedReadout::from_tensor(TensorReadout::new(pairs)),
        GateNoise::uniform(2, p1q, 0.0),
    )
    .with_max_trajectories(u64::MAX);
    let mut rng = StdRng::seed_from_u64(77);
    let log = exec.run(&c, 400_000, &mut rng);
    for s in BitString::all(2) {
        assert!(
            (exact.probability_of(s) - log.frequency(&s)).abs() < 0.004,
            "state {s}: exact {} vs sampled {}",
            exact.probability_of(s),
            log.frequency(&s)
        );
    }
}

#[test]
fn t1_composition_matches_kraus_damping() {
    // The readout model's FlipPair::with_t1_decay must equal "amplitude
    // damping, then asymmetric discriminator flip" computed on the density
    // matrix.
    let t1 = 60.0;
    let t_meas = 8.0;
    let gamma = 1.0 - (-t_meas / t1f(t1)).exp();
    fn t1f(x: f64) -> f64 {
        x
    }
    let assignment = FlipPair::new(0.03, 0.07);
    let effective = assignment.with_t1_decay(t1, t_meas);

    // Exact: |1><1| under damping, then the classical flip channel.
    let mut rho = DensityMatrix::basis("1".parse().unwrap());
    rho.apply_channel(&KrausChannel::amplitude_damping(gamma), 0);
    let p = rho.probabilities();
    // Discriminator: observed 0 with prob (1-p01) from true 0, p10 from true 1.
    let read0 = p[0] * (1.0 - assignment.p01) + p[1] * assignment.p10;
    assert!(
        (read0 - effective.p10).abs() < 1e-12,
        "composed channel {read0} vs effective pair {}",
        effective.p10
    );
}

#[test]
fn readout_only_executor_is_unbiased_for_superpositions() {
    // Readout noise applied shot-by-shot must equal the exact channel
    // applied to the Born distribution, including for superposed states.
    let dev = DeviceModel::ibmqx4();
    let exec = NoisyExecutor::readout_only(&dev);
    let c = Circuit::uniform_superposition(5);
    let exact = exec.exact_readout_distribution(&c);
    let mut rng = StdRng::seed_from_u64(3);
    let log = exec.run(&c, 300_000, &mut rng);
    let mut worst: f64 = 0.0;
    for s in BitString::all(5) {
        worst = worst.max((exact.probability_of(s) - log.frequency(&s)).abs());
    }
    assert!(worst < 0.004, "worst deviation {worst}");
}

#[test]
fn two_qubit_fault_insertion_preserves_distribution_support() {
    // With maximal 2q noise the output must stay a valid distribution and
    // cover states unreachable without faults.
    let mut c = Circuit::new(2);
    c.cx(0, 1); // from |00> the ideal output is always 00
    let exec = NoisyExecutor::new(
        CorrelatedReadout::from_tensor(TensorReadout::uniform(2, FlipPair::IDEAL)),
        GateNoise::uniform(2, 0.0, 0.9),
    )
    .with_max_trajectories(u64::MAX);
    let mut rng = StdRng::seed_from_u64(5);
    let log = exec.run(&c, 50_000, &mut rng);
    assert_eq!(log.total(), 50_000);
    // Faults populate other basis states.
    assert!(log.distinct() > 1, "faults never fired");
    // And the no-fault component keeps 00 dominant or at least present.
    assert!(log.get(&BitString::zeros(2)) > 0);
}
