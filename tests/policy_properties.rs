//! Property-based tests over the measurement policies and inversion
//! machinery, spanning invmeas + qnoise + qsim.

use invmeas::{
    AdaptiveInvertMeasure, Baseline, InversionString, MeasurementPolicy, RbmsTable,
    StaticInvertMeasure,
};
use proptest::prelude::*;
use qnoise::{CorrelatedReadout, FlipPair, GateNoise, NoisyExecutor, ReadoutModel, TensorReadout};
use qsim::{BitString, Circuit};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_bitstring(width: usize) -> impl Strategy<Value = BitString> {
    (0u64..(1u64 << width)).prop_map(move |v| BitString::from_value(v, width))
}

fn arb_flip_pair() -> impl Strategy<Value = FlipPair> {
    (0.0..0.4f64, 0.0..0.4f64).prop_map(|(a, b)| FlipPair::new(a, b))
}

fn arb_readout(width: usize) -> impl Strategy<Value = CorrelatedReadout> {
    proptest::collection::vec(arb_flip_pair(), width)
        .prop_map(|pairs| CorrelatedReadout::from_tensor(TensorReadout::new(pairs)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inversion is an involution on outcomes: measuring under `m` and
    /// correcting by `m` is the identity relabeling.
    #[test]
    fn inversion_correction_roundtrip(mask in arb_bitstring(5), outcome in arb_bitstring(5)) {
        let inv = InversionString::from_mask(mask);
        let mut measured = qsim::Counts::new(5);
        measured.record(inv.measured_state(outcome));
        let corrected = inv.correct(&measured);
        prop_assert_eq!(corrected.get(&outcome), 1);
    }

    /// The targeted inversion always maps the prediction onto the target
    /// state, whatever they are.
    #[test]
    fn targeting_always_lands(pred in arb_bitstring(6), strongest in arb_bitstring(6)) {
        let inv = InversionString::targeting(pred, strongest);
        prop_assert_eq!(inv.measured_state(pred), strongest);
    }

    /// Every policy preserves the trial budget exactly on arbitrary
    /// readout channels.
    #[test]
    fn policies_preserve_budget(
        readout in arb_readout(4),
        shots in 1u64..600,
        target in arb_bitstring(4),
    ) {
        let exec = NoisyExecutor::new(readout.clone(), GateNoise::ideal(4));
        let circuit = Circuit::basis_state_preparation(target);
        let mut rng = StdRng::seed_from_u64(1);
        let profile = RbmsTable::exact(&readout);
        let policies: [&dyn MeasurementPolicy; 3] = [
            &Baseline,
            &StaticInvertMeasure::four_mode(4),
            &AdaptiveInvertMeasure::new(profile.clone()),
        ];
        for policy in policies {
            let log = policy.execute(&circuit, shots, &exec, &mut rng);
            prop_assert_eq!(log.total(), shots, "{} broke the budget", policy.name());
        }
    }

    /// The exact success probability of the SIM aggregate equals the mean
    /// of the per-mode success probabilities of the measured states.
    #[test]
    fn sim_success_is_mode_average(
        readout in arb_readout(4),
        target in arb_bitstring(4),
    ) {
        let strings = InversionString::sim_four(4);
        let expected: f64 = strings
            .iter()
            .map(|inv| readout.success_probability(inv.measured_state(target)))
            .sum::<f64>() / 4.0;
        // Estimate empirically with a decent budget.
        let exec = NoisyExecutor::new(readout, GateNoise::ideal(4));
        let circuit = Circuit::basis_state_preparation(target);
        let mut rng = StdRng::seed_from_u64(2);
        let log = StaticInvertMeasure::four_mode(4).execute(&circuit, 20_000, &exec, &mut rng);
        let measured = log.frequency(&target);
        prop_assert!(
            (measured - expected).abs() < 0.03,
            "SIM aggregate {} vs expected mode average {}", measured, expected
        );
    }

    /// AIM's candidate prediction never exceeds k and never invents
    /// unobserved states.
    #[test]
    fn aim_candidates_are_observed(
        strengths in proptest::collection::vec(0.05f64..1.0, 16),
        observed in proptest::collection::vec(arb_bitstring(4), 1..10),
    ) {
        let profile = RbmsTable::from_strengths(4, strengths);
        let aim = AdaptiveInvertMeasure::new(profile);
        let mut canary = qsim::Counts::new(4);
        for s in &observed {
            canary.record(*s);
        }
        let candidates = aim.predict_candidates(&canary);
        prop_assert!(candidates.len() <= 4);
        for c in &candidates {
            prop_assert!(observed.contains(c), "candidate {} never observed", c);
        }
    }

    /// Readout channels are proper stochastic maps: rows sum to one for
    /// arbitrary parameters (checked through the public confusion API).
    #[test]
    fn readout_rows_are_stochastic(readout in arb_readout(4), ideal in arb_bitstring(4)) {
        let total: f64 = BitString::all(4)
            .map(|obs| readout.confusion(ideal, obs))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "row sums to {}", total);
    }

    /// XOR-relabeling a distribution never changes its mass and the exact
    /// SIM mixture is again a distribution.
    #[test]
    fn exact_sim_mixture_is_distribution(
        readout in arb_readout(4),
        target in arb_bitstring(4),
    ) {
        let born = qsim::Distribution::point(target);
        let parts: Vec<qsim::Distribution> = InversionString::sim_four(4)
            .into_iter()
            .map(|inv| {
                readout
                    .apply_to_distribution(&born.xor_relabeled(inv.mask()))
                    .xor_relabeled(inv.mask())
            })
            .collect();
        let refs: Vec<(&qsim::Distribution, f64)> = parts.iter().map(|d| (d, 1.0)).collect();
        let merged = qsim::Distribution::mixture(&refs);
        let total: f64 = merged.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
