//! Randomized property tests over the measurement policies and inversion
//! machinery, spanning invmeas + qnoise + qsim.
//!
//! Cases come from fixed-seed [`StdRng`] streams so failures are exactly
//! reproducible; assertion messages carry the case index.

use invmeas::{
    AdaptiveInvertMeasure, Baseline, InversionString, MeasurementPolicy, RbmsTable,
    StaticInvertMeasure,
};
use qnoise::{CorrelatedReadout, FlipPair, GateNoise, NoisyExecutor, ReadoutModel, TensorReadout};
use qsim::{BitString, Circuit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

fn random_bitstring(width: usize, rng: &mut StdRng) -> BitString {
    BitString::from_value(rng.gen_range(0u64..(1u64 << width)), width)
}

fn random_readout(width: usize, rng: &mut StdRng) -> CorrelatedReadout {
    let pairs = (0..width)
        .map(|_| FlipPair::new(rng.gen_range(0.0..0.4f64), rng.gen_range(0.0..0.4f64)))
        .collect();
    CorrelatedReadout::from_tensor(TensorReadout::new(pairs))
}

/// Inversion is an involution on outcomes: measuring under `m` and
/// correcting by `m` is the identity relabeling.
#[test]
fn inversion_correction_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x901);
    for case in 0..CASES {
        let mask = random_bitstring(5, &mut rng);
        let outcome = random_bitstring(5, &mut rng);
        let inv = InversionString::from_mask(mask);
        let mut measured = qsim::Counts::new(5);
        measured.record(inv.measured_state(outcome));
        let corrected = inv.correct(&measured);
        assert_eq!(corrected.get(&outcome), 1, "case {case}");
    }
}

/// The targeted inversion always maps the prediction onto the target
/// state, whatever they are.
#[test]
fn targeting_always_lands() {
    let mut rng = StdRng::seed_from_u64(0x902);
    for case in 0..CASES {
        let pred = random_bitstring(6, &mut rng);
        let strongest = random_bitstring(6, &mut rng);
        let inv = InversionString::targeting(pred, strongest);
        assert_eq!(inv.measured_state(pred), strongest, "case {case}");
    }
}

/// Every policy preserves the trial budget exactly on arbitrary readout
/// channels.
#[test]
fn policies_preserve_budget() {
    let mut rng = StdRng::seed_from_u64(0x903);
    for case in 0..CASES {
        let readout = random_readout(4, &mut rng);
        let shots = rng.gen_range(1u64..600);
        let target = random_bitstring(4, &mut rng);
        let exec = NoisyExecutor::new(readout.clone(), GateNoise::ideal(4));
        let circuit = Circuit::basis_state_preparation(target);
        let mut policy_rng = StdRng::seed_from_u64(1);
        let profile = RbmsTable::exact(&readout);
        let policies: [&dyn MeasurementPolicy; 3] = [
            &Baseline,
            &StaticInvertMeasure::four_mode(4),
            &AdaptiveInvertMeasure::new(profile.clone()),
        ];
        for policy in policies {
            let log = policy.execute(&circuit, shots, &exec, &mut policy_rng);
            assert_eq!(
                log.total(),
                shots,
                "case {case}: {} broke the budget",
                policy.name()
            );
        }
    }
}

/// The exact success probability of the SIM aggregate equals the mean of
/// the per-mode success probabilities of the measured states.
#[test]
fn sim_success_is_mode_average() {
    let mut rng = StdRng::seed_from_u64(0x904);
    // Fewer cases: each one runs a 20k-shot experiment.
    for case in 0..12 {
        let readout = random_readout(4, &mut rng);
        let target = random_bitstring(4, &mut rng);
        let strings = InversionString::sim_four(4);
        let expected: f64 = strings
            .iter()
            .map(|inv| readout.success_probability(inv.measured_state(target)))
            .sum::<f64>()
            / 4.0;
        // Estimate empirically with a decent budget.
        let exec = NoisyExecutor::new(readout, GateNoise::ideal(4));
        let circuit = Circuit::basis_state_preparation(target);
        let mut policy_rng = StdRng::seed_from_u64(2);
        let log =
            StaticInvertMeasure::four_mode(4).execute(&circuit, 20_000, &exec, &mut policy_rng);
        let measured = log.frequency(&target);
        assert!(
            (measured - expected).abs() < 0.03,
            "case {case}: SIM aggregate {measured} vs expected mode average {expected}"
        );
    }
}

/// AIM's candidate prediction never exceeds k and never invents
/// unobserved states.
#[test]
fn aim_candidates_are_observed() {
    let mut rng = StdRng::seed_from_u64(0x905);
    for case in 0..CASES {
        let strengths: Vec<f64> = (0..16).map(|_| rng.gen_range(0.05f64..1.0)).collect();
        let n_obs = rng.gen_range(1usize..10);
        let observed: Vec<BitString> = (0..n_obs).map(|_| random_bitstring(4, &mut rng)).collect();
        let profile = RbmsTable::from_strengths(4, strengths);
        let aim = AdaptiveInvertMeasure::new(profile);
        let mut canary = qsim::Counts::new(4);
        for s in &observed {
            canary.record(*s);
        }
        let candidates = aim.predict_candidates(&canary);
        assert!(candidates.len() <= 4, "case {case}");
        for c in &candidates {
            assert!(
                observed.contains(c),
                "case {case}: candidate {c} never observed"
            );
        }
    }
}

/// Readout channels are proper stochastic maps: rows sum to one for
/// arbitrary parameters (checked through the public confusion API).
#[test]
fn readout_rows_are_stochastic() {
    let mut rng = StdRng::seed_from_u64(0x906);
    for case in 0..CASES {
        let readout = random_readout(4, &mut rng);
        let ideal = random_bitstring(4, &mut rng);
        let total: f64 = BitString::all(4)
            .map(|obs| readout.confusion(ideal, obs))
            .sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "case {case}: row sums to {total}"
        );
    }
}

/// XOR-relabeling a distribution never changes its mass and the exact
/// SIM mixture is again a distribution.
#[test]
fn exact_sim_mixture_is_distribution() {
    let mut rng = StdRng::seed_from_u64(0x907);
    for case in 0..CASES {
        let readout = random_readout(4, &mut rng);
        let target = random_bitstring(4, &mut rng);
        let born = qsim::Distribution::point(target);
        let parts: Vec<qsim::Distribution> = InversionString::sim_four(4)
            .into_iter()
            .map(|inv| {
                readout
                    .apply_to_distribution(&born.xor_relabeled(inv.mask()))
                    .xor_relabeled(inv.mask())
            })
            .collect();
        let refs: Vec<(&qsim::Distribution, f64)> = parts.iter().map(|d| (d, 1.0)).collect();
        let merged = qsim::Distribution::mixture(&refs);
        let total: f64 = merged.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "case {case}");
    }
}
