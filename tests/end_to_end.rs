//! End-to-end integration: full stack (workload -> device noise -> policy
//! -> metrics) across crates, checking the paper's qualitative claims hold
//! on every machine model.

use invmeas::{AdaptiveInvertMeasure, Baseline, MeasurementPolicy, RbmsTable, StaticInvertMeasure};
use qmetrics::{ist, pst};
use qnoise::{DeviceModel, NoisyExecutor};
use qworkloads::Benchmark;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHOTS: u64 = 6_000;

fn profile_for(dev: &DeviceModel, exec: &NoisyExecutor, rng: &mut StdRng) -> RbmsTable {
    if dev.n_qubits() <= 5 {
        RbmsTable::brute_force(exec, 2_000, rng)
    } else {
        RbmsTable::awct(exec, 4, 2, 4_000, rng)
    }
}

#[test]
fn sim_and_aim_beat_baseline_on_hard_bv_across_machines() {
    for (dev, secret) in [
        (DeviceModel::ibmqx2(), "1111"),
        (DeviceModel::ibmqx4(), "1111"),
    ] {
        let exec = NoisyExecutor::from_device(&dev);
        let mut rng = StdRng::seed_from_u64(101);
        let bench = Benchmark::bv("bv-4B", secret.parse().unwrap());
        let profile = profile_for(&dev, &exec, &mut rng);

        let base = pst(
            &Baseline.execute(bench.circuit(), SHOTS, &exec, &mut rng),
            bench.correct(),
        );
        let sim = pst(
            &StaticInvertMeasure::four_mode(5).execute(bench.circuit(), SHOTS, &exec, &mut rng),
            bench.correct(),
        );
        let aim = pst(
            &AdaptiveInvertMeasure::new(profile).execute(bench.circuit(), SHOTS, &exec, &mut rng),
            bench.correct(),
        );
        assert!(
            sim > base,
            "{}: SIM {sim} should beat baseline {base}",
            dev.name()
        );
        assert!(aim > sim, "{}: AIM {aim} should beat SIM {sim}", dev.name());
    }
}

#[test]
fn aim_beats_sim_on_melbourne_bv6() {
    let machine = DeviceModel::ibmq_melbourne();
    let dev = machine.best_qubits_subdevice(7);
    let exec = NoisyExecutor::from_device(&dev);
    let mut rng = StdRng::seed_from_u64(7);
    let bench = Benchmark::bv("bv-6", "011111".parse().unwrap());
    let profile = profile_for(&dev, &exec, &mut rng);

    let base = pst(
        &Baseline.execute(bench.circuit(), SHOTS, &exec, &mut rng),
        bench.correct(),
    );
    let aim = pst(
        &AdaptiveInvertMeasure::new(profile).execute(bench.circuit(), SHOTS, &exec, &mut rng),
        bench.correct(),
    );
    assert!(
        aim > base,
        "melbourne bv-6: AIM {aim} should beat baseline {base}"
    );
}

#[test]
fn ideal_machine_policies_are_statistically_equal() {
    // On a noiseless machine all three policies must deliver PST = 1 for a
    // deterministic workload — mitigation costs nothing when unneeded.
    let dev = DeviceModel::ideal(5);
    let exec = NoisyExecutor::from_device(&dev);
    let mut rng = StdRng::seed_from_u64(17);
    let bench = Benchmark::bv("bv-4A", "0111".parse().unwrap());
    let profile = RbmsTable::exact(&dev.readout());

    for policy in [
        Box::new(Baseline) as Box<dyn MeasurementPolicy>,
        Box::new(StaticInvertMeasure::four_mode(5)),
        Box::new(AdaptiveInvertMeasure::new(profile)),
    ] {
        let log = policy.execute(bench.circuit(), 2_000, &exec, &mut rng);
        let p = pst(&log, bench.correct());
        assert!(
            (p - 1.0).abs() < 1e-9,
            "{} on ideal machine: PST = {p}",
            policy.name()
        );
    }
}

#[test]
fn sim_unmasks_qaoa_answer() {
    // A QAOA instance whose optimal cut is high-weight: under the
    // melbourne readout bias its low-weight complement cut outranks it
    // (masking), and SIM recovers both the answer's PST and its rank
    // against the strongest wrong output. Masking is a pure readout
    // phenomenon, so the readout-only executor isolates it; the budget
    // is large enough that the exact-channel gains (ΔPST ≈ +0.007,
    // ΔIST ≈ +0.09 on this instance) sit many sigma above sampling
    // noise for any seed.
    let dev = DeviceModel::ibmq_melbourne().best_qubits_subdevice(6);
    let exec = NoisyExecutor::readout_only(&dev);
    let mut rng = StdRng::seed_from_u64(17);
    let bench = Benchmark::qaoa("graph-D", "101011".parse().unwrap(), 2);
    let answer = qmetrics::CorrectSet::single("101011".parse().unwrap());
    let shots = 400_000;

    let base_log = Baseline.execute(bench.circuit(), shots, &exec, &mut rng);
    let sim_log =
        StaticInvertMeasure::four_mode(6).execute(bench.circuit(), shots, &exec, &mut rng);

    let base_pst = pst(&base_log, &answer);
    let sim_pst = pst(&sim_log, &answer);
    let base_ist = ist(&base_log, &answer);
    let sim_ist = ist(&sim_log, &answer);
    assert!(
        base_ist < 1.0,
        "masking premise: complement should outrank the answer at baseline, IST {base_ist}"
    );
    assert!(
        sim_pst > base_pst,
        "SIM PST {sim_pst} should beat baseline {base_pst}"
    );
    assert!(
        sim_ist > base_ist,
        "SIM IST {sim_ist} should beat baseline {base_ist}"
    );
}

#[test]
fn unfolding_and_aim_both_mitigate_but_differently() {
    // The matrix-inversion baseline (related work) also recovers PST on a
    // pure-readout workload; AIM additionally works shot-by-shot without
    // post-processing the distribution.
    let dev = DeviceModel::ibmqx2();
    let exec = NoisyExecutor::readout_only(&dev);
    let mut rng = StdRng::seed_from_u64(23);
    let target: qsim::BitString = "11111".parse().unwrap();
    let circuit = qsim::Circuit::basis_state_preparation(target);

    let observed = Baseline.execute(&circuit, 16_000, &exec, &mut rng);
    let base_pst = observed.frequency(&target);

    let cm = invmeas::ConfusionMatrix::from_model(&dev.readout());
    let unfolded_pst = cm.unfold(&observed).probability_of(target);

    let profile = RbmsTable::exact(&dev.readout());
    let aim_log = AdaptiveInvertMeasure::new(profile).execute(&circuit, 16_000, &exec, &mut rng);
    let aim_pst = aim_log.frequency(&target);

    assert!(
        unfolded_pst > base_pst + 0.2,
        "unfolding: {unfolded_pst} vs {base_pst}"
    );
    assert!(aim_pst > base_pst + 0.2, "AIM: {aim_pst} vs {base_pst}");
}
