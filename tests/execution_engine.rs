//! Integration tests for the batched shot-execution engine: alias-table
//! sampling, exact-channel shot synthesis, and parallel circuit sweeps.
//!
//! These pin the engine's two contracts across crate boundaries:
//!
//! 1. **Statistical equivalence** — every fast path (alias table, shot
//!    synthesis, dense accumulation) draws from the same distribution as
//!    the straightforward per-shot reference, verified on the paper's
//!    device models at tight frequency tolerances.
//! 2. **Determinism** — batched sweeps are bitwise reproducible per seed
//!    and independent of the worker-thread count.

use invmeas::runner::{PolicyChoice, Runner};
use invmeas::RbmsTable;
use qnoise::{DeviceModel, Executor, NoisyExecutor, ReadoutModel};
use qsim::{sampler, AliasSampler, BitString, Circuit, Distribution, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Alias-table draws match linear-scan Born sampling on a structured
/// state: same support, frequencies within statistical tolerance.
#[test]
fn alias_table_matches_linear_scan() {
    let mut circuit = Circuit::new(3);
    circuit.h(0).cx(0, 1).ry(2, 0.7);
    let psi = StateVector::from_circuit(&circuit);
    let probs = psi.probabilities();
    let sampler = psi.sampler();

    let shots = 120_000usize;
    let mut rng_a = StdRng::seed_from_u64(11);
    let mut rng_b = StdRng::seed_from_u64(12);
    let mut freq_alias = [0u64; 8];
    let mut freq_scan = [0u64; 8];
    for _ in 0..shots {
        freq_alias[sampler.sample(&mut rng_a)] += 1;
        freq_scan[psi.sample(&mut rng_b).index()] += 1;
    }
    for (i, &p) in probs.iter().enumerate() {
        let fa = freq_alias[i] as f64 / shots as f64;
        let fs = freq_scan[i] as f64 / shots as f64;
        // ~6 sigma for a binomial proportion at this budget.
        let tol = 6.0 * (p.max(1e-12) * (1.0 - p) / shots as f64).sqrt() + 1e-9;
        assert!((fa - p).abs() < tol, "alias state {i}: {fa} vs {p}");
        assert!((fs - p).abs() < tol, "scan state {i}: {fs} vs {p}");
        if p == 0.0 {
            assert_eq!(freq_alias[i], 0, "alias sampled off-support state {i}");
        }
    }
}

/// Synthesized shot logs match per-shot corruption on ibmqx2: same
/// marginal frequencies for every observable outcome.
#[test]
fn synthesis_matches_per_shot_on_ibmqx2() {
    let dev = DeviceModel::ibmqx2();
    let circuit = Circuit::basis_state_preparation("10110".parse().unwrap());
    let shots = 80_000u64;

    let synth_exec = NoisyExecutor::from_device(&dev).with_shot_synthesis(true);
    let per_shot_exec = NoisyExecutor::from_device(&dev).with_shot_synthesis(false);
    let mut rng_a = StdRng::seed_from_u64(21);
    let mut rng_b = StdRng::seed_from_u64(22);
    let synth = synth_exec.run(&circuit, shots, &mut rng_a);
    let per_shot = per_shot_exec.run(&circuit, shots, &mut rng_b);

    assert_eq!(synth.total(), shots);
    assert_eq!(per_shot.total(), shots);
    for s in BitString::all(5) {
        let a = synth.frequency(&s);
        let b = per_shot.frequency(&s);
        assert!(
            (a - b).abs() < 0.012,
            "state {s}: synthesized {a} vs per-shot {b}"
        );
    }
}

/// The synthesized log's frequencies converge on the *exact* channel
/// output: Born distribution pushed through the ibmqx4 readout channel.
#[test]
fn synthesis_converges_to_exact_channel() {
    let dev = DeviceModel::ibmqx4();
    let target: BitString = "11011".parse().unwrap();
    let circuit = Circuit::basis_state_preparation(target);
    let exact = dev
        .readout()
        .apply_to_distribution(&Distribution::point(target));

    let exec = NoisyExecutor::from_device(&dev).with_shot_synthesis(true);
    let shots = 200_000u64;
    let mut rng = StdRng::seed_from_u64(31);
    let log = exec.run(&circuit, shots, &mut rng);

    for s in BitString::all(5) {
        let p = exact.probability_of(s);
        let f = log.frequency(&s);
        let tol = 6.0 * (p.max(1e-12) * (1.0 - p) / shots as f64).sqrt() + 1e-9;
        assert!((f - p).abs() < tol, "state {s}: {f} vs exact {p}");
    }
}

/// Batched sweeps are bitwise deterministic per seed and independent of
/// the worker-thread count, end to end through brute-force RBMS
/// characterization.
#[test]
fn brute_force_characterization_thread_invariant() {
    let dev = DeviceModel::ibmqx4();
    let table_with = |threads: usize, seed: u64| {
        let exec = NoisyExecutor::from_device(&dev).with_threads(threads);
        let mut rng = StdRng::seed_from_u64(seed);
        RbmsTable::brute_force(&exec, 400, &mut rng)
    };
    let serial = table_with(1, 7);
    assert_eq!(serial, table_with(4, 7), "4 threads diverged from serial");
    assert_eq!(serial, table_with(16, 7), "16 threads diverged from serial");
    assert_eq!(serial, table_with(1, 7), "same seed not reproducible");
    assert_ne!(serial, table_with(1, 8), "different seed gave same table");
}

/// Full policy runs through the Runner are thread-invariant too (SIM
/// groups and AIM canary + targeted batches all route through
/// `run_groups`).
#[test]
fn policy_runs_thread_invariant() {
    let answer = BitString::ones(5);
    let circuit = Circuit::basis_state_preparation(answer);
    for policy in [PolicyChoice::Baseline, PolicyChoice::Sim, PolicyChoice::Aim] {
        let run = |threads: usize| {
            let mut runner = Runner::new(DeviceModel::ibmqx2())
                .with_seed(13)
                .with_threads(threads)
                .with_profile_shots(256);
            runner.run(policy, &circuit, 1_500)
        };
        assert_eq!(run(1), run(8), "{policy:?} diverged across thread counts");
    }
}

/// Edge cases: zero shots, a single possible outcome, and fewer shots
/// than outcomes all behave.
#[test]
fn execution_edge_cases() {
    let dev = DeviceModel::ibmqx4();
    let exec = NoisyExecutor::from_device(&dev);
    let mut rng = StdRng::seed_from_u64(41);

    // Zero shots: empty log, correct width.
    let c = Circuit::uniform_superposition(5);
    let empty = exec.run(&c, 0, &mut rng);
    assert_eq!(empty.total(), 0);
    assert_eq!(empty.width(), 5);

    // Zero shots through the batch API.
    let logs = exec.run_batch(&[c.clone(), c.clone()], 0, &mut rng);
    assert_eq!(logs.len(), 2);
    assert!(logs.iter().all(|l| l.total() == 0));

    // Single possible outcome (ideal device, basis prep): point mass.
    let ideal = NoisyExecutor::from_device(&DeviceModel::ideal(4));
    let target: BitString = "0101".parse().unwrap();
    let log = ideal.run(&Circuit::basis_state_preparation(target), 500, &mut rng);
    assert_eq!(log.get(&target), 500);
    assert_eq!(log.distinct(), 1);

    // Fewer shots than outcomes: totals still exact.
    let few = exec.run(&c, 7, &mut rng);
    assert_eq!(few.total(), 7);
    assert!(few.distinct() <= 7);
}

/// Multinomial synthesis degenerates gracefully when shots are scarcer
/// than outcomes and when the distribution is a point mass.
#[test]
fn multinomial_edge_behavior() {
    let mut rng = StdRng::seed_from_u64(51);

    // 3 shots over 32 outcomes: totals exact, all on-support.
    let probs = vec![1.0 / 32.0; 32];
    let counts = sampler::multinomial(&probs, 3, &mut rng);
    assert_eq!(counts.iter().sum::<u64>(), 3);

    // Point mass: everything lands on the one outcome.
    let mut point = vec![0.0; 16];
    point[9] = 1.0;
    let counts = sampler::multinomial(&point, 1000, &mut rng);
    assert_eq!(counts[9], 1000);
    assert_eq!(counts.iter().sum::<u64>(), 1000);

    // Alias sampler over a point mass never leaves the support.
    let alias = AliasSampler::new(&point);
    for _ in 0..100 {
        assert_eq!(alias.sample(&mut rng), 9);
    }
}

/// `run_groups` honors per-circuit budgets and stays deterministic when
/// budgets differ across the batch.
#[test]
fn run_groups_mixed_budgets_deterministic() {
    let dev = DeviceModel::ibmqx2();
    let circuits: Vec<Circuit> = BitString::all(5)
        .take(6)
        .map(Circuit::basis_state_preparation)
        .collect();
    let budgets: Vec<u64> = (0..6).map(|i| 100 + 37 * i).collect();

    let run = |threads: usize| {
        let exec = NoisyExecutor::from_device(&dev).with_threads(threads);
        let mut rng = StdRng::seed_from_u64(61);
        exec.run_groups(&circuits, &budgets, &mut rng)
    };
    let serial = run(1);
    for (log, &budget) in serial.iter().zip(&budgets) {
        assert_eq!(log.total(), budget);
    }
    assert_eq!(serial, run(3));
    assert_eq!(serial, run(8));
}
