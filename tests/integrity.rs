//! Cross-crate integrity and recovery: journaled characterization
//! survives scripted kills bit-identically, and damaged profiles are
//! quarantined rather than silently loaded (DESIGN.md §13).

use invmeas::profile_io::quarantine_profile;
use invmeas::{characterize_journaled, CharSpec, ProfileError, ProfileMeta, RbmsTable};
use invmeas_faults::{FaultPlan, NoFaults};
use qnoise::{DeviceModel, NoisyExecutor};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("invmeas-integrity-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn specs_for(dev: &DeviceModel) -> Vec<CharSpec> {
    let n = dev.n_qubits();
    vec![
        CharSpec::brute(dev.name(), n, 200, 0xC0FFEE),
        CharSpec::esct(dev.name(), n, 2_000, 0xC0FFEE),
        CharSpec::awct(dev.name(), n, 4.min(n), 2.min(n - 1), 1_500, 0xC0FFEE),
    ]
}

fn kill_plan(arrival: u64) -> FaultPlan {
    FaultPlan::from_text(&format!(
        "faultplan v1\nseed 1\njournal-write {arrival} panic scripted kill\n"
    ))
    .unwrap()
}

/// A run killed mid-journal resumes to the same profile an uninterrupted
/// run produces — for every characterization method, and regardless of
/// the executor thread count on either side of the crash.
#[test]
fn killed_journaled_runs_resume_bit_identically_across_methods() {
    let dev = DeviceModel::ibmqx2();
    let dir = scratch_dir("resume");
    for (i, spec) in specs_for(&dev).into_iter().enumerate() {
        // Uninterrupted journaled reference on one thread.
        let exec = NoisyExecutor::from_device(&dev).with_threads(1);
        let clean = dir.join(format!("clean-{i}.journal"));
        let (baseline, stats) =
            characterize_journaled(&exec, &spec, Some(&clean), &NoFaults).unwrap();
        assert!(
            !stats.resumed(),
            "{:?}: fresh run must not resume",
            spec.method
        );
        assert!(
            stats.checkpoints_written >= 2,
            "{:?}: needs ≥2 units",
            spec.method
        );

        // Crash at the second checkpoint, then resume on four threads.
        let crash = dir.join(format!("crash-{i}.journal"));
        let exec4 = NoisyExecutor::from_device(&dev).with_threads(4);
        let plan = kill_plan(2);
        let died = catch_unwind(AssertUnwindSafe(|| {
            characterize_journaled(&exec4, &spec, Some(&crash), &plan)
        }));
        assert!(died.is_err(), "{:?}: scripted panic must fire", spec.method);
        assert!(
            crash.exists(),
            "{:?}: journal must survive the kill",
            spec.method
        );

        let (resumed, stats) =
            characterize_journaled(&exec4, &spec, Some(&crash), &NoFaults).unwrap();
        assert_eq!(
            stats.resumed_units, 1,
            "{:?}: one checkpoint survived",
            spec.method
        );
        assert_eq!(
            resumed.to_text(),
            baseline.to_text(),
            "{:?}: resumed run must be bit-identical",
            spec.method
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Thread counts above the machine's core count route through the same
/// persistent worker pool, and a kill-and-resume at eight threads still
/// lands byte-identical to a one-thread uninterrupted profile.
#[test]
fn eight_thread_resume_matches_one_thread_profile() {
    let dev = DeviceModel::ibmqx2();
    let dir = scratch_dir("resume8");
    let spec = CharSpec::brute(dev.name(), dev.n_qubits(), 250, 0xBEEF);

    let exec1 = NoisyExecutor::from_device(&dev).with_threads(1);
    let clean = dir.join("clean.journal");
    let (baseline, _) = characterize_journaled(&exec1, &spec, Some(&clean), &NoFaults).unwrap();

    let exec8 = NoisyExecutor::from_device(&dev).with_threads(8);
    let crash = dir.join("crash.journal");
    let died = catch_unwind(AssertUnwindSafe(|| {
        characterize_journaled(&exec8, &spec, Some(&crash), &kill_plan(2))
    }));
    assert!(died.is_err(), "scripted panic must fire");

    let (resumed, stats) = characterize_journaled(&exec8, &spec, Some(&crash), &NoFaults).unwrap();
    assert_eq!(stats.resumed_units, 1, "one checkpoint survived the kill");
    assert_eq!(
        resumed.to_text(),
        baseline.to_text(),
        "8-thread resumed profile must be byte-identical to the 1-thread run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A torn (half-written) checkpoint line is discarded on resume and the
/// final profile still matches the uninterrupted run.
#[test]
fn torn_checkpoint_is_discarded_and_recomputed() {
    let dev = DeviceModel::ibmqx4();
    let dir = scratch_dir("torn");
    let spec = CharSpec::brute(dev.name(), dev.n_qubits(), 300, 7);
    let exec = NoisyExecutor::from_device(&dev).with_threads(2);

    let clean = dir.join("clean.journal");
    let (baseline, _) = characterize_journaled(&exec, &spec, Some(&clean), &NoFaults).unwrap();

    let torn = dir.join("torn.journal");
    let plan = FaultPlan::from_text("faultplan v1\nseed 1\njournal-write 3 torn\n").unwrap();
    let err = characterize_journaled(&exec, &spec, Some(&torn), &plan);
    assert!(err.is_err(), "a torn append reports an I/O failure");

    let (resumed, stats) = characterize_journaled(&exec, &spec, Some(&torn), &NoFaults).unwrap();
    assert_eq!(stats.resumed_units, 2, "the two intact checkpoints replay");
    assert_eq!(resumed.to_text(), baseline.to_text());
    std::fs::remove_dir_all(&dir).ok();
}

fn flip_one_byte(path: &Path) {
    let mut bytes = std::fs::read(path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(path, bytes).unwrap();
}

/// End-to-end damage handling: a v2 profile with a flipped bit fails its
/// checksum on load, and quarantining preserves the damaged bytes under a
/// new name instead of deleting the evidence.
#[test]
fn flipped_bit_is_caught_by_checksum_and_quarantined() {
    let dev = DeviceModel::ibmqx2();
    let dir = scratch_dir("quarantine");
    let exec = NoisyExecutor::readout_only(&dev);
    let spec = CharSpec::brute(dev.name(), dev.n_qubits(), 400, 3);
    let (table, _) = characterize_journaled(&exec, &spec, None, &NoFaults).unwrap();

    let path = dir.join("profile.rbms");
    let meta = ProfileMeta {
        device: dev.name().to_string(),
        method: "brute".into(),
        seed: 3,
        window: 0,
    };
    table.save_v2_with(&path, &meta, &NoFaults).unwrap();

    // Sanity: the pristine file loads and carries its metadata.
    let (_, loaded_meta) = RbmsTable::load_with_meta(&path).unwrap();
    assert_eq!(loaded_meta.unwrap().device, dev.name());

    flip_one_byte(&path);
    let damaged = std::fs::read(&path).unwrap();
    let err = RbmsTable::load_with_meta(&path).unwrap_err();
    assert!(
        matches!(
            err,
            ProfileError::Checksum { .. } | ProfileError::Parse { .. }
        ),
        "a flipped bit must be rejected, got {err}"
    );

    let moved = quarantine_profile(&path).unwrap();
    assert!(
        !path.exists(),
        "the damaged file is moved, not left in place"
    );
    assert!(moved.to_string_lossy().contains(".quarantined"));
    assert_eq!(
        std::fs::read(&moved).unwrap(),
        damaged,
        "quarantine preserves the damaged bytes for inspection"
    );

    // A second quarantine at the same path picks a fresh name.
    table.save_v2_with(&path, &meta, &NoFaults).unwrap();
    flip_one_byte(&path);
    let moved2 = quarantine_profile(&path).unwrap();
    assert_ne!(
        moved, moved2,
        "quarantine never overwrites earlier evidence"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Journaled characterization agrees with the exact readout channel — the
/// chunked estimator is statistically sound, not just deterministic.
#[test]
fn journaled_estimates_track_the_exact_channel() {
    let dev = DeviceModel::ibmqx2();
    let exec = NoisyExecutor::readout_only(&dev);
    let exact = RbmsTable::exact(&dev.readout());
    let spec = CharSpec::brute(dev.name(), dev.n_qubits(), 4_000, 9);
    let (est, _) = characterize_journaled(&exec, &spec, None, &NoFaults).unwrap();
    let mse = est.mse_vs(&exact);
    assert!(mse < 0.002, "journaled brute MSE vs exact = {mse}");
}
