//! Integration of the mapping compiler with noise, workloads, and
//! mitigation: routed circuits keep their semantics, the allocation policy
//! measurably improves reliability, and invert-and-measure composes with
//! routing.

use invmeas::{Baseline, InversionString, MeasurementPolicy};
use qmapper::{allocate, route, route_auto, Placement};
use qnoise::{DeviceModel, Executor, NoisyExecutor};
use qsim::{BitString, Counts, StateVector};
use qworkloads::{suite_q14, Benchmark};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn every_q14_benchmark_routes_and_stays_correct() {
    let dev = DeviceModel::ibmq_melbourne();
    for bench in suite_q14() {
        let routed = route_auto(bench.circuit(), &dev)
            .unwrap_or_else(|e| panic!("{} failed to route: {e}", bench.name()));
        // Ideal-simulate the physical circuit; the logical marginal must
        // put the same mass on the correct answers as the logical circuit.
        let psi_log = StateVector::from_circuit(bench.circuit());
        let ideal_pst: f64 = bench
            .correct()
            .outputs()
            .iter()
            .map(|&s| psi_log.probability_of(s))
            .sum();
        let psi_phys = StateVector::from_circuit(routed.circuit());
        let mut routed_pst = 0.0;
        for (idx, &p) in psi_phys.probabilities().iter().enumerate() {
            let phys = BitString::from_value(idx as u64, 14);
            if bench.correct().contains(&routed.logical_outcome(phys)) {
                routed_pst += p;
            }
        }
        assert!(
            (ideal_pst - routed_pst).abs() < 1e-6,
            "{}: ideal {ideal_pst} vs routed {routed_pst}",
            bench.name()
        );
    }
}

#[test]
fn variability_aware_allocation_beats_worst_allocation() {
    let dev = DeviceModel::ibmq_melbourne();
    let bench = Benchmark::bv("bv-4A", "0111".parse().unwrap());
    let exec = NoisyExecutor::from_device(&dev);
    let mut rng = StdRng::seed_from_u64(11);
    let shots = 12_000;

    let run_with = |placement: &Placement, rng: &mut StdRng| {
        let routed = route(bench.circuit(), &dev, placement).expect("routable");
        let log = exec.run(routed.circuit(), shots, rng);
        let logical = routed.logical_counts(&log);
        qmetrics::pst(&logical, bench.correct())
    };

    let aware = allocate(&dev, 5).unwrap();
    // A deliberately bad allocation: the five worst qubits (including q6's
    // 31% readout error), if connected; q4..q8 is a connected stretch of
    // poor qubits.
    let bad = Placement::new(vec![4, 5, 6, 7, 8]);
    let pst_aware = run_with(&aware, &mut rng);
    let pst_bad = run_with(&bad, &mut rng);
    assert!(
        pst_aware > pst_bad + 0.1,
        "aware {pst_aware} should clearly beat bad {pst_bad}"
    );
}

#[test]
fn inversion_composes_with_routing() {
    // Applying a logical inversion string through the router's output
    // layout and XOR-correcting the folded counts must equal the plain
    // logical pipeline on an ideal device.
    let dev = DeviceModel::ideal(6);
    // Give the ideal device a line coupling so routing actually moves
    // qubits around.
    let line = DeviceModel::from_parts(
        "ideal-line",
        (0..6).map(|q| *dev.qubit(q)).collect(),
        (0..5).map(|i| (i, i + 1)).collect(),
        0.0,
        Vec::new(),
        0.0,
        Vec::new(),
    );
    let bench = Benchmark::bv("bv-3", "101".parse().unwrap());
    let routed = route_auto(bench.circuit(), &line).unwrap();
    assert!(routed.swap_count() > 0, "want a routing-nontrivial case");

    let exec = NoisyExecutor::from_device(&line);
    let mut rng = StdRng::seed_from_u64(2);
    let inv = InversionString::from_mask("1010".parse().unwrap());

    // Physical-level inversion on the output layout.
    let mut phys = routed.circuit().clone();
    for logical in inv.mask().iter_ones() {
        phys.x(routed.output_qubit(logical));
    }
    let log = exec.run(&phys, 500, &mut rng);
    let corrected = inv.correct(&routed.logical_counts(&log));
    // Noise-free: every trial yields the expected output.
    assert_eq!(
        corrected.get(&bench.correct().outputs()[0]),
        500,
        "inversion through routing failed"
    );
}

#[test]
fn routed_counts_widths_are_logical() {
    let dev = DeviceModel::ibmq_melbourne();
    let bench = Benchmark::bv("bv-4A", "0111".parse().unwrap());
    let routed = route_auto(bench.circuit(), &dev).unwrap();
    let mut physical = Counts::new(14);
    physical.record(BitString::zeros(14));
    let logical = routed.logical_counts(&physical);
    assert_eq!(logical.width(), 5);
    assert_eq!(logical.total(), 1);
}

#[test]
fn swap_overhead_reported_against_baseline_policy() {
    // Routing-induced SWAPs degrade PST; verify the effect is visible and
    // bounded so the paper's "minimum number of SWAPs" goal is meaningful.
    let dev = DeviceModel::ibmq_melbourne();
    let bench = Benchmark::qaoa("qaoa-6", "101011".parse().unwrap(), 1);
    let exec = NoisyExecutor::from_device(&dev);
    let mut rng = StdRng::seed_from_u64(21);

    let routed = route_auto(bench.circuit(), &dev).unwrap();
    assert!(routed.swap_count() > 0);
    let log = exec.run(routed.circuit(), 8_000, &mut rng);
    let pst_routed = qmetrics::pst(&routed.logical_counts(&log), bench.correct());

    // The unrouted circuit on a 6-qubit subdevice (pretending all-to-all).
    let sub = dev.best_qubits_subdevice(6);
    let exec_sub = NoisyExecutor::from_device(&sub);
    let log = Baseline.execute(bench.circuit(), 8_000, &exec_sub, &mut rng);
    let pst_free = qmetrics::pst(&log, bench.correct());

    assert!(
        pst_routed <= pst_free + 0.02,
        "routing should not beat connectivity-free execution: {pst_routed} vs {pst_free}"
    );
    assert!(
        pst_routed > pst_free * 0.3,
        "routing overhead implausibly large: {pst_routed} vs {pst_free}"
    );
}
