//! Variant-amortization accounting: inversion variants of one base circuit
//! must cost one statevector simulation, not one per variant.
//!
//! The global [`qsim::simulation_count`] counter is process-wide, so every
//! assertion lives in a single `#[test]` (tests inside one binary run in
//! parallel; separate binaries run sequentially). Each section measures a
//! counter delta around one workload.

use invmeas::{AdaptiveInvertMeasure, MeasurementPolicy, RbmsTable, StaticInvertMeasure};
use qnoise::{DeviceModel, Executor, NoisyExecutor};
use qsim::{simulation_count, BitString, Circuit};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn inversion_variants_share_one_simulation() {
    let dev = DeviceModel::ibmqx4();
    let n = dev.n_qubits();
    let executor = NoisyExecutor::readout_only(&dev);
    let mut rng = StdRng::seed_from_u64(0xA407);

    // A genuinely entangling base circuit: the trailing-X strip cannot
    // reduce it to a point mass, so it needs exactly one real simulation.
    let mut circuit = Circuit::new(n);
    circuit.h(0);
    for q in 0..n - 1 {
        circuit.cx(q, q + 1);
    }
    circuit.rz(n - 1, 0.3);

    // SIM four-mode: four inversion variants of one base circuit, one
    // statevector simulation total (the paper's headline amortization).
    let before = simulation_count();
    let sim = StaticInvertMeasure::four_mode(n);
    let merged = sim.execute(&circuit, 4_000, &executor, &mut rng);
    assert_eq!(merged.total(), 4_000);
    assert_eq!(
        simulation_count() - before,
        1,
        "SIM four-mode readout-only run must simulate the base circuit exactly once"
    );

    // RBMS brute force: every circuit is a pure X-layer basis preparation,
    // which the trailing-X split resolves to a point mass — zero simulations.
    let before = simulation_count();
    let table = RbmsTable::brute_force(&executor, 256, &mut rng);
    assert_eq!(table.width(), n);
    assert_eq!(
        simulation_count() - before,
        0,
        "basis-state sweeps must never touch the statevector engine"
    );

    // AIM window: canary group (4 variants) plus targeted group (k variants),
    // both over the same base circuit — two simulations total.
    let before = simulation_count();
    let strengths = BitString::all(n).map(|s| 1.0 + s.index() as f64).collect();
    let aim = AdaptiveInvertMeasure::new(RbmsTable::from_strengths(n, strengths));
    let merged = aim.execute(&circuit, 4_000, &executor, &mut rng);
    assert_eq!(merged.total(), 4_000);
    assert_eq!(
        simulation_count() - before,
        2,
        "readout-only AIM window = one canary + one targeted simulation"
    );

    // Single basis-state run through the executor: point-mass fast path.
    let before = simulation_count();
    let prep = Circuit::basis_state_preparation("10110".parse().unwrap());
    let log = executor.run(&prep, 1_000, &mut rng);
    assert_eq!(log.total(), 1_000);
    assert_eq!(
        simulation_count() - before,
        0,
        "basis-state preparation must use the point-mass fast path"
    );
}
