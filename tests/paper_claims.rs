//! Quantitative paper-claim checks: the reproduction's *shapes* must match
//! the paper — who wins, in which direction, and roughly by how much.

use invmeas::RbmsTable;
use qmetrics::average_by_hamming_weight;
use qnoise::{DeviceModel, ReadoutModel};
use qsim::BitString;

/// §3.1 / Figure 4: the probability of successful measurement is strongly
/// inversely correlated with Hamming weight on ibmqx2 (paper: −0.93).
#[test]
fn ibmqx2_weight_correlation_matches_paper() {
    let table = RbmsTable::exact(&DeviceModel::ibmqx2().readout());
    let r = table.hamming_correlation();
    assert!(
        (-1.0..=-0.85).contains(&r),
        "ibmqx2 weight correlation = {r}, paper reports -0.93"
    );
}

/// Figure 4: relative BMS of the all-ones state on ibmqx2 is ~0.38.
#[test]
fn ibmqx2_all_ones_relative_strength() {
    let table = RbmsTable::exact(&DeviceModel::ibmqx2().readout());
    let rel = table.relative();
    let ones = rel[BitString::ones(5).index()];
    assert!(
        (0.25..=0.50).contains(&ones),
        "relative BMS of 11111 = {ones}, paper reports 0.38"
    );
}

/// Figure 5: on melbourne the per-weight-class average falls monotonically
/// from 1.0 toward ~0.45 at weight 10.
#[test]
fn melbourne_weight_classes_fall_monotonically() {
    let dev = DeviceModel::ibmq_melbourne().subdevice(&[0, 1, 2, 3, 4, 5, 7, 8, 9, 10]);
    let table = RbmsTable::exact(&dev.readout());
    let classes = average_by_hamming_weight(10, &table.relative());
    for w in 1..classes.len() {
        assert!(
            classes[w] < classes[w - 1],
            "class averages not monotone at weight {w}: {classes:?}"
        );
    }
    let tail = classes[10];
    assert!(
        (0.30..=0.60).contains(&tail),
        "weight-10 class average = {tail}, paper reports ~0.45"
    );
}

/// Figure 1: direct measurement of 11111 is far weaker than 00000, and
/// invert-and-measure recovers most of the loss.
#[test]
fn fig1_invert_and_measure_recovery() {
    let readout = DeviceModel::ibmqx4().readout();
    let zeros = readout.success_probability(BitString::zeros(5));
    let ones = readout.success_probability(BitString::ones(5));
    assert!(zeros > ones + 0.2, "bias too weak: {zeros} vs {ones}");
    // Inverting 11111 measures 00000 physically: the recovered fidelity is
    // the all-zeros strength (gate errors on the X layer are ~1%).
    assert!(zeros > 0.7, "recovered strength should approach {zeros}");
}

/// §6.1: ibmqx4's bias is arbitrary — the Hamming-weight correlation is
/// materially weaker than ibmqx2's, and the strength ordering is
/// non-monotone.
#[test]
fn ibmqx4_bias_is_arbitrary_but_repeatable() {
    let qx2 = RbmsTable::exact(&DeviceModel::ibmqx2().readout());
    let qx4 = RbmsTable::exact(&DeviceModel::ibmqx4().readout());
    assert!(qx4.hamming_correlation() - qx2.hamming_correlation() > 0.05);

    // Repeatable across calibration windows (paper: 100 cycles, 35 days).
    let drift = qnoise::CalibrationDrift::new(DeviceModel::ibmqx4(), 0.1);
    let t1 = RbmsTable::exact(&drift.window(3).readout());
    let t2 = RbmsTable::exact(&drift.window(77).readout());
    let corr = qmetrics::pearson_correlation(&t1.relative(), &t2.relative());
    assert!(corr > 0.95, "bias not repeatable across windows: {corr}");
}

/// Table 1: the three machines' assignment-error statistics match the
/// paper's reported min/avg/max.
#[test]
fn table1_statistics() {
    let cases = [
        (DeviceModel::ibmqx2(), 0.012, 0.038, 0.128),
        (DeviceModel::ibmqx4(), 0.034, 0.082, 0.207),
        (DeviceModel::ibmq_melbourne(), 0.022, 0.0812, 0.31),
    ];
    for (dev, min, avg, max) in cases {
        let (m, a, x) = dev.assignment_error_stats();
        assert!((m - min).abs() < 0.002, "{}: min {m} vs {min}", dev.name());
        assert!((a - avg).abs() < 0.005, "{}: avg {a} vs {avg}", dev.name());
        assert!((x - max).abs() < 0.002, "{}: max {x} vs {max}", dev.name());
    }
}

/// §3.2 / Figure 6: GHZ measurement asymmetry — the all-ones branch loses
/// several times more probability than the all-zeros branch.
#[test]
fn ghz_branch_asymmetry() {
    use qnoise::{Executor, NoisyExecutor};
    use rand::SeedableRng;
    let dev = DeviceModel::ibmq_melbourne().best_qubits_subdevice(5);
    let exec = NoisyExecutor::from_device(&dev);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let log = exec.run(&qworkloads::ghz_circuit(5), 16_000, &mut rng);
    let p0 = log.frequency(&BitString::zeros(5));
    let p1 = log.frequency(&BitString::ones(5));
    let loss_ratio = (0.5 - p1) / (0.5 - p0);
    // Direction and magnitude-order of the paper's claim. (The paper's own
    // Figure 5 per-qubit bias cannot produce its Figure 6 4x asymmetry under
    // any independent readout model; see EXPERIMENTS.md.)
    assert!(
        loss_ratio > 1.5,
        "all-ones branch should lose much more: p0={p0} p1={p1} ratio={loss_ratio}"
    );
    assert!(
        p0 > p1 + 0.05,
        "all-zeros branch must dominate: {p0} vs {p1}"
    );
}

/// Appendix A: ESCT reproduces the direct characterization within the
/// paper's 5% MSE bound, and AWCT uses exponentially fewer trials.
#[test]
fn appendix_a_characterization_bounds() {
    use qnoise::NoisyExecutor;
    use rand::SeedableRng;
    let dev = DeviceModel::ibmqx4();
    let exec = NoisyExecutor::readout_only(&dev);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let direct = RbmsTable::brute_force(&exec, 8_000, &mut rng);
    let esct = RbmsTable::esct(&exec, 256_000, &mut rng);
    let awct = RbmsTable::awct(&exec, 3, 2, 85_000, &mut rng);
    assert!(
        esct.mse_vs(&direct) < 0.05,
        "ESCT MSE {}",
        esct.mse_vs(&direct)
    );
    assert!(
        awct.mse_vs(&direct) < 0.05,
        "AWCT MSE {}",
        awct.mse_vs(&direct)
    );
    assert!(awct.trials_used() < direct.trials_used());
}
