//! Property-based tests for the noise substrate.

use proptest::prelude::*;
use qnoise::{
    CalibrationDrift, CorrelatedReadout, Crosstalk, DeviceModel, Executor, FlipPair, GateNoise,
    NoisyExecutor, ReadoutModel, TensorReadout,
};
use qsim::{BitString, Circuit, Distribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_flip_pair() -> impl Strategy<Value = FlipPair> {
    (0.0..0.5f64, 0.0..0.5f64).prop_map(|(a, b)| FlipPair::new(a, b))
}

fn arb_tensor(width: usize) -> impl Strategy<Value = TensorReadout> {
    proptest::collection::vec(arb_flip_pair(), width).prop_map(TensorReadout::new)
}

fn arb_correlated(width: usize) -> impl Strategy<Value = CorrelatedReadout> {
    (
        arb_tensor(width),
        proptest::collection::vec(
            ((0..width, 0..width).prop_filter("distinct", |(a, b)| a != b), 0.0..0.3f64),
            0..3,
        ),
    )
        .prop_map(|(base, xts)| {
            CorrelatedReadout::new(
                base,
                xts.into_iter()
                    .map(|((s, t), e)| Crosstalk::new(s, t, e))
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every readout channel is a proper stochastic map.
    #[test]
    fn confusion_rows_sum_to_one(r in arb_correlated(4), ideal in 0u64..16) {
        let ideal = BitString::from_value(ideal, 4);
        let total: f64 = BitString::all(4).map(|o| r.confusion(ideal, o)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Pushing any distribution through a channel yields a distribution,
    /// and the tensor fast path matches the generic dense path.
    #[test]
    fn distribution_push_is_stochastic(
        t in arb_tensor(3),
        weights in proptest::collection::vec(0.0..1.0f64, 8),
    ) {
        let sum: f64 = weights.iter().sum();
        prop_assume!(sum > 1e-6);
        let probs: Vec<f64> = weights.iter().map(|w| w / sum).collect();
        let d = Distribution::from_probabilities(3, probs);
        let fast = t.apply_to_distribution(&d);
        prop_assert!((fast.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Dense reference via confusion sums.
        for obs in BitString::all(3) {
            let expect: f64 = BitString::all(3)
                .map(|i| d.probability_of(i) * t.confusion(i, obs))
                .sum();
            prop_assert!((fast.probability_of(obs) - expect).abs() < 1e-9);
        }
    }

    /// Success probability never increases when any single error rate
    /// grows (monotonicity of the tensor channel).
    #[test]
    fn success_monotone_in_error(pairs in proptest::collection::vec(arb_flip_pair(), 3),
                                 bump in 0.0..0.4f64,
                                 which in 0usize..3,
                                 state in 0u64..8) {
        let s = BitString::from_value(state, 3);
        let base = TensorReadout::new(pairs.clone());
        let mut worse_pairs = pairs;
        let p = worse_pairs[which];
        worse_pairs[which] = FlipPair::new(
            (p.p01 + if s.bit(which) { 0.0 } else { bump }).min(1.0),
            (p.p10 + if s.bit(which) { bump } else { 0.0 }).min(1.0),
        );
        let worse = TensorReadout::new(worse_pairs);
        prop_assert!(worse.success_probability(s) <= base.success_probability(s) + 1e-12);
    }

    /// The executor's trial accounting is exact for any shots/trajectory
    /// cap combination.
    #[test]
    fn executor_budget_exact(shots in 0u64..500, cap in 1u64..64, seed in any::<u64>()) {
        let dev = DeviceModel::ibmqx4();
        let exec = NoisyExecutor::from_device(&dev).with_max_trajectories(cap);
        let c = Circuit::uniform_superposition(5);
        let mut rng = StdRng::seed_from_u64(seed);
        let log = exec.run(&c, shots, &mut rng);
        prop_assert_eq!(log.total(), shots);
    }

    /// Gate-noise trajectories always contain the original gates in order.
    #[test]
    fn trajectories_preserve_program(seed in any::<u64>(), p in 0.0..0.9f64) {
        let noise = GateNoise::uniform(3, p, p);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(1, 0.3).cx(1, 2).h(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let (traj, faults) = noise.sample_trajectory(&c, &mut rng);
        let mut it = traj.gates().iter();
        for g in c.gates() {
            prop_assert!(it.any(|t| t == g), "missing {}", g);
        }
        prop_assert!(traj.len() >= c.len());
        prop_assert!(traj.len() <= c.len() + 2 * faults);
    }

    /// Calibration drift stays within its amplitude and is deterministic.
    #[test]
    fn drift_bounded_and_deterministic(window in 0u64..200, amp in 0.01..0.5f64) {
        let nominal = DeviceModel::ibmqx2();
        let drift = CalibrationDrift::new(nominal.clone(), amp);
        let a = drift.window(window);
        let b = drift.window(window);
        prop_assert_eq!(&a, &b);
        for q in 0..nominal.n_qubits() {
            let n = nominal.qubit(q).assignment.p10;
            let d = a.qubit(q).assignment.p10;
            prop_assert!((d / n - 1.0).abs() <= amp + 1e-9);
        }
    }

    /// T1 composition is monotone in the measurement window and reduces to
    /// the assignment pair at zero duration.
    #[test]
    fn t1_composition_monotone(pair in arb_flip_pair(), t1 in 5.0..200.0f64) {
        let at_zero = pair.with_t1_decay(t1, 0.0);
        prop_assert!((at_zero.p10 - pair.p10).abs() < 1e-12);
        let mut last = pair.p10;
        for k in 1..6 {
            let t = k as f64 * 2.0;
            let eff = pair.with_t1_decay(t1, t).p10;
            prop_assert!(eff >= last - 1e-12, "p10 decreased: {} -> {}", last, eff);
            last = eff;
        }
    }
}
