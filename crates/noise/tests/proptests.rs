//! Randomized property tests for the noise substrate.
//!
//! Cases are drawn from fixed-seed [`StdRng`] streams so every failure is
//! reproducible; assertion messages carry the case index.

use qnoise::{
    CalibrationDrift, CorrelatedReadout, Crosstalk, DeviceModel, Executor, FlipPair, GateNoise,
    NoisyExecutor, ReadoutModel, TensorReadout,
};
use qsim::{BitString, Circuit, Distribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 48;

fn random_flip_pair(rng: &mut StdRng) -> FlipPair {
    FlipPair::new(rng.gen_range(0.0..0.5f64), rng.gen_range(0.0..0.5f64))
}

fn random_tensor(width: usize, rng: &mut StdRng) -> TensorReadout {
    TensorReadout::new((0..width).map(|_| random_flip_pair(rng)).collect())
}

fn random_correlated(width: usize, rng: &mut StdRng) -> CorrelatedReadout {
    let base = random_tensor(width, rng);
    let n_xt = rng.gen_range(0..3usize);
    let xts = (0..n_xt)
        .map(|_| {
            let s = rng.gen_range(0..width);
            let mut t = rng.gen_range(0..width - 1);
            if t >= s {
                t += 1;
            }
            Crosstalk::new(s, t, rng.gen_range(0.0..0.3f64))
        })
        .collect();
    CorrelatedReadout::new(base, xts)
}

/// Every readout channel is a proper stochastic map.
#[test]
fn confusion_rows_sum_to_one() {
    let mut rng = StdRng::seed_from_u64(0x401);
    for case in 0..CASES {
        let r = random_correlated(4, &mut rng);
        let ideal = BitString::from_value(rng.gen_range(0u64..16), 4);
        let total: f64 = BitString::all(4).map(|o| r.confusion(ideal, o)).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "case {case}: row sums to {total}"
        );
    }
}

/// Pushing any distribution through a channel yields a distribution,
/// and the tensor fast path matches the generic dense path.
#[test]
fn distribution_push_is_stochastic() {
    let mut rng = StdRng::seed_from_u64(0x402);
    let mut done = 0;
    while done < CASES {
        let t = random_tensor(3, &mut rng);
        let weights: Vec<f64> = (0..8).map(|_| rng.gen_range(0.0..1.0f64)).collect();
        let sum: f64 = weights.iter().sum();
        if sum <= 1e-6 {
            continue;
        }
        done += 1;
        let probs: Vec<f64> = weights.iter().map(|w| w / sum).collect();
        let d = Distribution::from_probabilities(3, probs);
        let fast = t.apply_to_distribution(&d);
        assert!((fast.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Dense reference via confusion sums.
        for obs in BitString::all(3) {
            let expect: f64 = BitString::all(3)
                .map(|i| d.probability_of(i) * t.confusion(i, obs))
                .sum();
            assert!(
                (fast.probability_of(obs) - expect).abs() < 1e-9,
                "case {done}: {} vs {expect}",
                fast.probability_of(obs)
            );
        }
    }
}

/// Success probability never increases when any single error rate grows
/// (monotonicity of the tensor channel).
#[test]
fn success_monotone_in_error() {
    let mut rng = StdRng::seed_from_u64(0x403);
    for case in 0..CASES {
        let pairs: Vec<FlipPair> = (0..3).map(|_| random_flip_pair(&mut rng)).collect();
        let bump = rng.gen_range(0.0..0.4f64);
        let which = rng.gen_range(0..3usize);
        let s = BitString::from_value(rng.gen_range(0u64..8), 3);
        let base = TensorReadout::new(pairs.clone());
        let mut worse_pairs = pairs;
        let p = worse_pairs[which];
        worse_pairs[which] = FlipPair::new(
            (p.p01 + if s.bit(which) { 0.0 } else { bump }).min(1.0),
            (p.p10 + if s.bit(which) { bump } else { 0.0 }).min(1.0),
        );
        let worse = TensorReadout::new(worse_pairs);
        assert!(
            worse.success_probability(s) <= base.success_probability(s) + 1e-12,
            "case {case}"
        );
    }
}

/// The executor's trial accounting is exact for any shots/trajectory cap
/// combination.
#[test]
fn executor_budget_exact() {
    let mut rng = StdRng::seed_from_u64(0x404);
    for case in 0..CASES {
        let shots = rng.gen_range(0u64..500);
        let cap = rng.gen_range(1u64..64);
        let dev = DeviceModel::ibmqx4();
        let exec = NoisyExecutor::from_device(&dev).with_max_trajectories(cap);
        let c = Circuit::uniform_superposition(5);
        let log = exec.run(&c, shots, &mut rng);
        assert_eq!(log.total(), shots, "case {case}");
    }
}

/// Gate-noise trajectories always contain the original gates in order.
#[test]
fn trajectories_preserve_program() {
    let mut rng = StdRng::seed_from_u64(0x405);
    for case in 0..CASES {
        let p = rng.gen_range(0.0..0.9f64);
        let noise = GateNoise::uniform(3, p, p);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(1, 0.3).cx(1, 2).h(2);
        let (traj, faults) = noise.sample_trajectory(&c, &mut rng);
        let mut it = traj.gates().iter();
        for g in c.gates() {
            assert!(it.any(|t| t == g), "case {case}: missing {g}");
        }
        assert!(traj.len() >= c.len(), "case {case}");
        assert!(traj.len() <= c.len() + 2 * faults, "case {case}");
    }
}

/// Calibration drift stays within its amplitude and is deterministic.
#[test]
fn drift_bounded_and_deterministic() {
    let mut rng = StdRng::seed_from_u64(0x406);
    for case in 0..CASES {
        let window = rng.gen_range(0u64..200);
        let amp = rng.gen_range(0.01..0.5f64);
        let nominal = DeviceModel::ibmqx2();
        let drift = CalibrationDrift::new(nominal.clone(), amp);
        let a = drift.window(window);
        let b = drift.window(window);
        assert_eq!(&a, &b, "case {case}");
        for q in 0..nominal.n_qubits() {
            let n = nominal.qubit(q).assignment.p10;
            let d = a.qubit(q).assignment.p10;
            assert!((d / n - 1.0).abs() <= amp + 1e-9, "case {case}");
        }
    }
}

/// T1 composition is monotone in the measurement window and reduces to
/// the assignment pair at zero duration.
#[test]
fn t1_composition_monotone() {
    let mut rng = StdRng::seed_from_u64(0x407);
    for case in 0..CASES {
        let pair = random_flip_pair(&mut rng);
        let t1 = rng.gen_range(5.0..200.0f64);
        let at_zero = pair.with_t1_decay(t1, 0.0);
        assert!((at_zero.p10 - pair.p10).abs() < 1e-12, "case {case}");
        let mut last = pair.p10;
        for k in 1..6 {
            let t = k as f64 * 2.0;
            let eff = pair.with_t1_decay(t1, t).p10;
            assert!(
                eff >= last - 1e-12,
                "case {case}: p10 decreased: {last} -> {eff}"
            );
            last = eff;
        }
    }
}
