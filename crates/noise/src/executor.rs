//! Shot-based circuit execution under noise — the NISQ trial loop.
//!
//! The paper's computing model (§2.2, Figure 3a) is: initialize, execute the
//! program, read the qubits, log the output; repeat for thousands of trials.
//! An [`Executor`] is exactly that loop. [`NoisyExecutor`] layers the two
//! error sources the paper distinguishes:
//!
//! * **gate errors** — Monte-Carlo Pauli trajectories sampled per group of
//!   shots ([`GateNoise`]);
//! * **measurement errors** — every sampled outcome is pushed through the
//!   device's readout channel ([`ReadoutModel`]).

use crate::correlated::CorrelatedReadout;
use crate::device::DeviceModel;
use crate::gate_noise::GateNoise;
use crate::readout::ReadoutModel;
use qsim::{Circuit, Counts, Distribution, StateVector};
use rand::RngCore;

/// A shot-based circuit runner.
///
/// The trait is object-safe so measurement policies (in the `invmeas`
/// crate) can be written against `&dyn Executor`.
pub trait Executor {
    /// The register width of circuits this executor accepts.
    fn n_qubits(&self) -> usize;

    /// Runs `circuit` for `shots` trials and returns the output log.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `circuit.n_qubits() != self.n_qubits()`.
    fn run(&self, circuit: &Circuit, shots: u64, rng: &mut dyn RngCore) -> Counts;
}

/// A noise-free executor: samples directly from the Born distribution.
///
/// # Examples
///
/// ```
/// use qnoise::{Executor, IdealExecutor};
/// use qsim::{BitString, Circuit};
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(3);
/// c.x(0).x(2);
/// let exec = IdealExecutor::new(3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let log = exec.run(&c, 100, &mut rng);
/// assert_eq!(log.get(&"101".parse()?), 100);
/// # Ok::<(), qsim::ParseBitStringError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdealExecutor {
    n_qubits: usize,
}

impl IdealExecutor {
    /// Creates an ideal executor over `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        IdealExecutor { n_qubits }
    }
}

impl Executor for IdealExecutor {
    fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    fn run(&self, circuit: &Circuit, shots: u64, rng: &mut dyn RngCore) -> Counts {
        assert_eq!(circuit.n_qubits(), self.n_qubits, "circuit width mismatch");
        let psi = StateVector::from_circuit(circuit);
        let mut counts = Counts::new(self.n_qubits);
        for _ in 0..shots {
            counts.record(psi.sample(rng));
        }
        counts
    }
}

/// Executes circuits under a device's gate and readout noise.
#[derive(Debug, Clone)]
pub struct NoisyExecutor {
    readout: CorrelatedReadout,
    gate_noise: GateNoise,
    max_trajectories: u64,
}

impl NoisyExecutor {
    /// Default cap on distinct gate-fault trajectories per `run` call.
    ///
    /// Shots beyond the cap are distributed across trajectories; this bounds
    /// simulation cost for large registers while keeping per-shot readout
    /// noise independent.
    pub const DEFAULT_MAX_TRAJECTORIES: u64 = 4096;

    /// Creates an executor from explicit noise components.
    ///
    /// # Panics
    ///
    /// Panics if the readout and gate-noise models cover different register
    /// widths.
    pub fn new(readout: CorrelatedReadout, gate_noise: GateNoise) -> Self {
        assert_eq!(
            readout.n_qubits(),
            gate_noise.n_qubits(),
            "readout and gate-noise widths differ"
        );
        NoisyExecutor {
            readout,
            gate_noise,
            max_trajectories: Self::DEFAULT_MAX_TRAJECTORIES,
        }
    }

    /// Creates an executor with the device's full noise model.
    pub fn from_device(device: &DeviceModel) -> Self {
        NoisyExecutor::new(device.readout(), device.gate_noise())
    }

    /// Creates an executor with the device's readout noise only (gate noise
    /// disabled) — useful for isolating measurement-error effects, as the
    /// paper's characterization experiments do.
    pub fn readout_only(device: &DeviceModel) -> Self {
        NoisyExecutor::new(device.readout(), GateNoise::ideal(device.n_qubits()))
    }

    /// Overrides the trajectory cap.
    ///
    /// # Panics
    ///
    /// Panics if `max` is 0.
    #[must_use]
    pub fn with_max_trajectories(mut self, max: u64) -> Self {
        assert!(max >= 1, "need at least one trajectory");
        self.max_trajectories = max;
        self
    }

    /// The readout channel in use.
    pub fn readout(&self) -> &CorrelatedReadout {
        &self.readout
    }

    /// The gate-noise model in use.
    pub fn gate_noise(&self) -> &GateNoise {
        &self.gate_noise
    }

    /// Parallel variant of [`Executor::run`]: splits the shot budget across
    /// `threads` worker threads (crossbeam scoped threads), each with an
    /// independent RNG stream seeded deterministically from `rng`. For the
    /// same `rng` state and `threads` count the merged log is reproducible;
    /// different thread counts yield different (equally valid) samples.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or the circuit width mismatches.
    pub fn run_parallel(
        &self,
        circuit: &Circuit,
        shots: u64,
        threads: usize,
        rng: &mut dyn RngCore,
    ) -> Counts {
        assert!(threads >= 1, "need at least one thread");
        assert_eq!(circuit.n_qubits(), self.n_qubits(), "circuit width mismatch");
        if threads == 1 || shots < threads as u64 {
            return self.run(circuit, shots, rng);
        }
        // Deterministic per-worker seeds drawn from the caller's stream.
        let seeds: Vec<u64> = (0..threads).map(|_| rng.next_u64()).collect();
        let threads_u = threads as u64;
        let base = shots / threads_u;
        let extra = shots % threads_u;
        let logs = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .iter()
                .enumerate()
                .map(|(t, &seed)| {
                    let worker_shots = base + u64::from((t as u64) < extra);
                    scope.spawn(move |_| {
                        use rand::SeedableRng;
                        let mut worker_rng = rand::rngs::StdRng::seed_from_u64(seed);
                        self.run(circuit, worker_shots, &mut worker_rng)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect::<Vec<Counts>>()
        })
        .expect("crossbeam scope panicked");
        let mut merged = Counts::new(self.n_qubits());
        for log in &logs {
            merged.merge(log);
        }
        merged
    }

    /// The exact output distribution of `circuit` under readout noise only
    /// (gate noise is ignored). Cost is `O(k · 2^n)` where `k` is the number
    /// of basis states with non-zero Born probability, so this is cheap for
    /// structured outputs and small registers.
    ///
    /// # Panics
    ///
    /// Panics if the circuit width mismatches or `n_qubits > 14`.
    pub fn exact_readout_distribution(&self, circuit: &Circuit) -> Distribution {
        assert_eq!(circuit.n_qubits(), self.n_qubits(), "circuit width mismatch");
        let born = Distribution::from_probabilities(
            circuit.n_qubits(),
            StateVector::from_circuit(circuit).probabilities(),
        );
        self.readout.apply_to_distribution(&born)
    }
}

impl Executor for NoisyExecutor {
    fn n_qubits(&self) -> usize {
        self.readout.n_qubits()
    }

    fn run(&self, circuit: &Circuit, shots: u64, rng: &mut dyn RngCore) -> Counts {
        assert_eq!(circuit.n_qubits(), self.n_qubits(), "circuit width mismatch");
        let mut counts = Counts::new(self.n_qubits());
        if shots == 0 {
            return counts;
        }
        let ideal_psi = StateVector::from_circuit(circuit);
        if self.gate_noise.is_ideal() {
            for _ in 0..shots {
                let outcome = ideal_psi.sample(rng);
                counts.record(self.readout.corrupt(outcome, rng));
            }
            return counts;
        }
        // Gate noise: split shots across Monte-Carlo fault trajectories.
        let n_traj = shots.min(self.max_trajectories);
        let base = shots / n_traj;
        let extra = shots % n_traj;
        for t in 0..n_traj {
            let traj_shots = base + u64::from(t < extra);
            let (traj_circuit, faults) = self.gate_noise.sample_trajectory(circuit, rng);
            let psi;
            let state = if faults == 0 {
                &ideal_psi
            } else {
                psi = StateVector::from_circuit(&traj_circuit);
                &psi
            };
            for _ in 0..traj_shots {
                let outcome = state.sample(rng);
                counts.record(self.readout.corrupt(outcome, rng));
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::BitString;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn ideal_executor_reproduces_circuit_output() {
        let exec = IdealExecutor::new(2);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let log = exec.run(&c, 5000, &mut rng);
        assert_eq!(log.total(), 5000);
        let f00 = log.frequency(&bs("00"));
        assert!((f00 - 0.5).abs() < 0.03, "f00 = {f00}");
        assert_eq!(log.get(&bs("01")), 0);
    }

    #[test]
    fn readout_only_executor_matches_exact_distribution() {
        let dev = DeviceModel::ibmqx4();
        let exec = NoisyExecutor::readout_only(&dev);
        let c = Circuit::basis_state_preparation(bs("11010"));
        let exact = exec.exact_readout_distribution(&c);
        let mut rng = StdRng::seed_from_u64(21);
        let log = exec.run(&c, 60_000, &mut rng);
        for s in BitString::all(5) {
            assert!(
                (log.frequency(&s) - exact.probability_of(s)).abs() < 0.012,
                "{s}: {} vs {}",
                log.frequency(&s),
                exact.probability_of(s)
            );
        }
    }

    #[test]
    fn gate_noise_reduces_success() {
        let dev = DeviceModel::ibmqx2();
        let mut ghz = Circuit::new(5);
        ghz.h(0);
        for q in 0..4 {
            ghz.cx(q, q + 1);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let noisy = NoisyExecutor::from_device(&dev);
        let readout_only = NoisyExecutor::readout_only(&dev);
        let full = noisy.run(&ghz, 8000, &mut rng);
        let ro = readout_only.run(&ghz, 8000, &mut rng);
        let ok = |log: &Counts| {
            log.frequency(&BitString::zeros(5)) + log.frequency(&BitString::ones(5))
        };
        assert!(
            ok(&full) < ok(&ro),
            "gate noise should lower success: {} vs {}",
            ok(&full),
            ok(&ro)
        );
        // But not destroy the signal entirely.
        assert!(ok(&full) > 0.3);
    }

    #[test]
    fn trajectory_cap_respected_and_totals_exact() {
        let dev = DeviceModel::ibmqx4();
        let exec = NoisyExecutor::from_device(&dev).with_max_trajectories(7);
        let c = Circuit::uniform_superposition(5);
        let mut rng = StdRng::seed_from_u64(9);
        let log = exec.run(&c, 1000, &mut rng);
        assert_eq!(log.total(), 1000);
        let log = exec.run(&c, 3, &mut rng);
        assert_eq!(log.total(), 3);
        let log = exec.run(&c, 0, &mut rng);
        assert_eq!(log.total(), 0);
    }

    #[test]
    fn ideal_device_full_stack_is_error_free() {
        let dev = DeviceModel::ideal(4);
        let exec = NoisyExecutor::from_device(&dev);
        let c = Circuit::basis_state_preparation(bs("1011"));
        let mut rng = StdRng::seed_from_u64(2);
        let log = exec.run(&c, 500, &mut rng);
        assert_eq!(log.get(&bs("1011")), 500);
    }

    #[test]
    fn invert_and_measure_effect_visible() {
        // The heart of the paper: measuring 11111 through the inverted mode
        // (X on every qubit, then XOR-correct) succeeds more often than
        // measuring it directly on a biased machine.
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let mut rng = StdRng::seed_from_u64(17);
        let ones = BitString::ones(5);

        let direct = Circuit::basis_state_preparation(ones);
        let direct_log = exec.run(&direct, 16_000, &mut rng);
        let pst_direct = direct_log.frequency(&ones);

        let inverted = direct.with_premeasure_inversion(ones);
        let inv_log = exec.run(&inverted, 16_000, &mut rng).xor_corrected(ones);
        let pst_inverted = inv_log.frequency(&ones);

        assert!(
            pst_inverted > pst_direct + 0.1,
            "inversion should help: direct {pst_direct}, inverted {pst_inverted}"
        );
    }

    #[test]
    fn parallel_run_matches_serial_statistics() {
        let dev = DeviceModel::ibmqx4();
        let exec = NoisyExecutor::from_device(&dev);
        let mut c = Circuit::new(5);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).cx(3, 4);
        let shots = 40_000;
        let mut rng = StdRng::seed_from_u64(88);
        let serial = exec.run(&c, shots, &mut rng);
        let mut rng = StdRng::seed_from_u64(88);
        let parallel = exec.run_parallel(&c, shots, 4, &mut rng);
        assert_eq!(parallel.total(), shots);
        // Same device physics: the two logs agree statistically.
        for s in [BitString::zeros(5), BitString::ones(5)] {
            assert!(
                (serial.frequency(&s) - parallel.frequency(&s)).abs() < 0.015,
                "{s}: serial {} vs parallel {}",
                serial.frequency(&s),
                parallel.frequency(&s)
            );
        }
    }

    #[test]
    fn parallel_run_is_deterministic_per_seed_and_thread_count() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let c = Circuit::uniform_superposition(5);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            exec.run_parallel(&c, 5_000, 3, &mut rng)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn parallel_run_with_tiny_budgets() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let c = Circuit::new(5);
        let mut rng = StdRng::seed_from_u64(0);
        // Fewer shots than threads falls back to serial.
        assert_eq!(exec.run_parallel(&c, 2, 8, &mut rng).total(), 2);
        assert_eq!(exec.run_parallel(&c, 0, 4, &mut rng).total(), 0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_circuit_panics() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::from_device(&dev);
        let c = Circuit::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        exec.run(&c, 1, &mut rng);
    }
}
