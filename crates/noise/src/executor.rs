//! Shot-based circuit execution under noise — the NISQ trial loop.
//!
//! The paper's computing model (§2.2, Figure 3a) is: initialize, execute the
//! program, read the qubits, log the output; repeat for thousands of trials.
//! An [`Executor`] is exactly that loop. [`NoisyExecutor`] layers the two
//! error sources the paper distinguishes:
//!
//! * **gate errors** — Monte-Carlo Pauli trajectories sampled per group of
//!   shots ([`GateNoise`]);
//! * **measurement errors** — every sampled outcome is pushed through the
//!   device's readout channel ([`ReadoutModel`]).
//!
//! ## The batched execution engine
//!
//! Characterization and policy evaluation run *sweeps*: `2^n` basis-state
//! preparations for a brute-force RBMS table, `k` inversion modes per SIM
//! group run, one canary plus `k` targeted groups per AIM window. Three
//! mechanisms keep those sweeps cheap:
//!
//! 1. **O(1) sampling** — each statevector builds one
//!    [`qsim::AliasSampler`] over its Born distribution, so a shot costs a
//!    table lookup instead of an `O(2^n)` CDF scan.
//! 2. **Shot synthesis** — when gate noise is off, the Born distribution is
//!    pushed through the readout channel *once*
//!    ([`NoisyExecutor::exact_readout_distribution`]) and the entire trial
//!    log is drawn as one multinomial sample
//!    ([`qsim::Counts::synthesize_from`]); cost is independent of the shot
//!    count. A cost model picks between this and the per-shot path (see
//!    [`NoisyExecutor::with_shot_synthesis`]).
//! 3. **Parallel sweeps** — [`Executor::run_groups`] runs many circuits at
//!    once; [`NoisyExecutor`] distributes them over a thread pool
//!    ([`NoisyExecutor::with_threads`]).
//! 4. **Inversion-variant amortization** — circuits in a sweep that differ
//!    only by a trailing X layer (every Invert-and-Measure group, every
//!    basis-state preparation) share one base simulation: the X layer is a
//!    pure basis permutation, so each variant's Born distribution is an XOR
//!    relabeling of the base's ([`qsim::StateVector::probabilities_xor`]).
//!    [`NoisyExecutor`]'s `run_groups` memoizes bases per sweep; single
//!    `run` calls apply the same trailing-X split, so the memo changes
//!    nothing but the simulation count. Exact only in the readout-only
//!    regime — with gate noise on, trailing X gates are fault sites and
//!    variants are simulated in full.
//!
//! ### Determinism contract
//!
//! For a fixed RNG seed and configuration, every path is reproducible.
//! `run_groups`/`run_batch` draw one sub-seed per circuit *sequentially*
//! from the caller's RNG before any work is dispatched, so their results
//! are bitwise identical **regardless of the thread count** (and identical
//! to the serial default implementation). The synthesis and per-shot paths
//! consume the RNG stream differently, so toggling
//! [`NoisyExecutor::with_shot_synthesis`] changes the sampled log — but
//! both are exact samples of the same law, and each is deterministic per
//! seed.

use crate::correlated::CorrelatedReadout;
use crate::device::DeviceModel;
use crate::gate_noise::GateNoise;
use crate::readout::ReadoutModel;
use invmeas_faults::{Fault, FaultInjector, FaultSite, NoFaults};
use qsim::{BitString, Circuit, Counts, Distribution, Gate, StateVector};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Widest register the dense per-basis-state count accumulator is used for;
/// beyond this the per-shot paths fall back to hash-map logging.
const MAX_DENSE_WIDTH: usize = 26;

/// A shot-based circuit runner.
///
/// The trait is object-safe so measurement policies (in the `invmeas`
/// crate) can be written against `&dyn Executor`.
pub trait Executor {
    /// The register width of circuits this executor accepts.
    fn n_qubits(&self) -> usize;

    /// Runs `circuit` for `shots` trials and returns the output log.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `circuit.n_qubits() != self.n_qubits()`.
    fn run(&self, circuit: &Circuit, shots: u64, rng: &mut dyn RngCore) -> Counts;

    /// Runs each circuit for its own shot budget and returns one log per
    /// circuit — the engine entry point for characterization sweeps and
    /// grouped policy runs.
    ///
    /// One sub-seed per circuit is drawn sequentially from `rng` up front,
    /// and circuit `i` is executed against `StdRng::seed_from_u64(seed_i)`.
    /// Implementations that parallelize (see [`NoisyExecutor`]) MUST keep
    /// this scheme so results are bitwise independent of the worker count.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `circuits.len() != shots.len()` or any
    /// circuit width mismatches.
    fn run_groups(
        &self,
        circuits: &[Circuit],
        shots: &[u64],
        rng: &mut dyn RngCore,
    ) -> Vec<Counts> {
        assert_eq!(
            circuits.len(),
            shots.len(),
            "one shot budget per circuit required"
        );
        circuits
            .iter()
            .zip(shots)
            .map(|(c, &s)| {
                let mut circuit_rng = StdRng::seed_from_u64(rng.next_u64());
                self.run(c, s, &mut circuit_rng)
            })
            .collect()
    }

    /// Runs every circuit for the same number of shots — the uniform-budget
    /// convenience form of [`Executor::run_groups`].
    fn run_batch(
        &self,
        circuits: &[Circuit],
        shots_each: u64,
        rng: &mut dyn RngCore,
    ) -> Vec<Counts> {
        let shots = vec![shots_each; circuits.len()];
        self.run_groups(circuits, &shots, rng)
    }
}

/// Registers at or above this size run their statevector evolution on the
/// executor's worker pool ([`NoisyExecutor::with_threads`]); below it the
/// thread spawn/barrier overhead outweighs the kernel work.
pub const THREADED_SIM_MIN_QUBITS: usize = 15;

/// Draws `shots` outcomes from a Born distribution via a one-time alias
/// table, accumulating densely when the register is small enough.
fn sample_born_counts(n: usize, born: &[f64], shots: u64, rng: &mut dyn RngCore) -> Counts {
    let mut counts = Counts::new(n);
    if shots == 0 {
        return counts;
    }
    let sampler = qsim::AliasSampler::new(born);
    if n <= MAX_DENSE_WIDTH {
        let mut dense = vec![0u64; 1usize << n];
        for _ in 0..shots {
            dense[sampler.sample(rng)] += 1;
        }
        return Counts::from_dense(n, &dense);
    }
    for _ in 0..shots {
        counts.record(BitString::from_value(sampler.sample(rng) as u64, n));
    }
    counts
}

/// A noise-free executor: samples directly from the Born distribution.
///
/// # Examples
///
/// ```
/// use qnoise::{Executor, IdealExecutor};
/// use qsim::{BitString, Circuit};
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(3);
/// c.x(0).x(2);
/// let exec = IdealExecutor::new(3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let log = exec.run(&c, 100, &mut rng);
/// assert_eq!(log.get(&"101".parse()?), 100);
/// # Ok::<(), qsim::ParseBitStringError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdealExecutor {
    n_qubits: usize,
}

impl IdealExecutor {
    /// Creates an ideal executor over `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        IdealExecutor { n_qubits }
    }
}

impl Executor for IdealExecutor {
    fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    fn run(&self, circuit: &Circuit, shots: u64, rng: &mut dyn RngCore) -> Counts {
        assert_eq!(circuit.n_qubits(), self.n_qubits, "circuit width mismatch");
        if shots == 0 {
            return Counts::new(self.n_qubits);
        }
        // `born_probabilities` strips the trailing X layer and permutes,
        // so inversion variants and basis-state preparations skip most (or
        // all) of the statevector work.
        let born = StateVector::born_probabilities(circuit);
        sample_born_counts(self.n_qubits, &born, shots, rng)
    }
}

/// Executes circuits under a device's gate and readout noise.
#[derive(Debug, Clone)]
pub struct NoisyExecutor {
    readout: CorrelatedReadout,
    gate_noise: GateNoise,
    max_trajectories: u64,
    threads: usize,
    shot_synthesis: bool,
    faults: Arc<dyn FaultInjector>,
}

impl NoisyExecutor {
    /// Default cap on distinct gate-fault trajectories per `run` call.
    ///
    /// Shots beyond the cap are distributed across trajectories; this bounds
    /// simulation cost for large registers while keeping per-shot readout
    /// noise independent.
    pub const DEFAULT_MAX_TRAJECTORIES: u64 = 4096;

    /// Creates an executor from explicit noise components.
    ///
    /// # Panics
    ///
    /// Panics if the readout and gate-noise models cover different register
    /// widths.
    pub fn new(readout: CorrelatedReadout, gate_noise: GateNoise) -> Self {
        assert_eq!(
            readout.n_qubits(),
            gate_noise.n_qubits(),
            "readout and gate-noise widths differ"
        );
        NoisyExecutor {
            readout,
            gate_noise,
            max_trajectories: Self::DEFAULT_MAX_TRAJECTORIES,
            threads: 1,
            shot_synthesis: true,
            faults: Arc::new(NoFaults),
        }
    }

    /// Creates an executor with the device's full noise model.
    pub fn from_device(device: &DeviceModel) -> Self {
        NoisyExecutor::new(device.readout(), device.gate_noise())
    }

    /// Creates an executor with the device's readout noise only (gate noise
    /// disabled) — useful for isolating measurement-error effects, as the
    /// paper's characterization experiments do.
    pub fn readout_only(device: &DeviceModel) -> Self {
        NoisyExecutor::new(device.readout(), GateNoise::ideal(device.n_qubits()))
    }

    /// Overrides the trajectory cap.
    ///
    /// # Panics
    ///
    /// Panics if `max` is 0.
    #[must_use]
    pub fn with_max_trajectories(mut self, max: u64) -> Self {
        assert!(max >= 1, "need at least one trajectory");
        self.max_trajectories = max;
        self
    }

    /// Sets the worker-thread count used by [`Executor::run_groups`] /
    /// [`Executor::run_batch`]. The default is 1 (serial). Results are
    /// bitwise identical for every thread count.
    ///
    /// Workers come from the persistent process-global pool
    /// (`qsim::pool`), so a whole characterization job reuses one set of
    /// parked threads across every batch instead of spawning per call —
    /// and large single-circuit evolutions (≥ [`THREADED_SIM_MIN_QUBITS`]
    /// qubits) share the same pool for their kernel sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        self.threads = threads;
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enables or disables the multinomial shot-synthesis fast path
    /// (enabled by default).
    ///
    /// When enabled and gate noise is off, [`Executor::run`] composes the
    /// Born distribution with the readout channel once and synthesizes the
    /// whole log in time independent of the shot count, provided the
    /// composition is cheaper than per-shot sampling (cost model:
    /// `support · 2^n ≤ shots · n`, and `n ≤ 14` for the dense channel).
    /// Disabling forces the per-shot path — useful for statistical
    /// equivalence tests and benchmarking the engine against itself.
    #[must_use]
    pub fn with_shot_synthesis(mut self, enabled: bool) -> Self {
        self.shot_synthesis = enabled;
        self
    }

    /// Installs a fault injector consulted once per batch-level execution
    /// call ([`Executor::run`], [`Executor::run_groups`], and
    /// [`NoisyExecutor::run_parallel`] each register exactly one arrival at
    /// [`FaultSite::Exec`], never one per worker thread, so a scripted
    /// plan replays identically under any thread count). The executor
    /// applies `Latency` (stall) and `Panic` faults; other kinds are
    /// ignored here because shot execution is infallible by design.
    ///
    /// The default is [`NoFaults`], whose check inlines to `None`.
    #[must_use]
    pub fn with_faults(mut self, faults: Arc<dyn FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// One arrival at the [`FaultSite::Exec`] site: stalls on `Latency`,
    /// panics on `Panic`, ignores fault kinds execution cannot express.
    fn check_exec_fault(&self) {
        if let Some(f) = self.faults.check(FaultSite::Exec) {
            f.apply_latency();
            if let Fault::Panic(m) = f {
                panic!("{m}");
            }
        }
    }

    /// The readout channel in use.
    pub fn readout(&self) -> &CorrelatedReadout {
        &self.readout
    }

    /// The gate-noise model in use.
    pub fn gate_noise(&self) -> &GateNoise {
        &self.gate_noise
    }

    /// Parallel variant of [`Executor::run`]: splits the shot budget across
    /// `threads` worker threads (std scoped threads), each with an
    /// independent RNG stream seeded deterministically from `rng`. For the
    /// same `rng` state and `threads` count the merged log is reproducible;
    /// different thread counts yield different (equally valid) samples.
    ///
    /// Prefer [`Executor::run_groups`] when the sweep has many circuits:
    /// its results do not depend on the thread count at all.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or the circuit width mismatches.
    pub fn run_parallel(
        &self,
        circuit: &Circuit,
        shots: u64,
        threads: usize,
        rng: &mut dyn RngCore,
    ) -> Counts {
        assert!(threads >= 1, "need at least one thread");
        assert_eq!(
            circuit.n_qubits(),
            self.n_qubits(),
            "circuit width mismatch"
        );
        // One fault arrival per call, checked before any split so the
        // site's arrival count is independent of `threads`.
        self.check_exec_fault();
        if threads == 1 || shots < threads as u64 {
            return self.run_with_born(circuit, None, shots, rng);
        }
        // Deterministic per-worker seeds drawn from the caller's stream.
        let seeds: Vec<u64> = (0..threads).map(|_| rng.next_u64()).collect();
        let threads_u = threads as u64;
        let base = shots / threads_u;
        let extra = shots % threads_u;
        let logs: Vec<Counts> = std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .iter()
                .enumerate()
                .map(|(t, &seed)| {
                    let worker_shots = base + u64::from((t as u64) < extra);
                    scope.spawn(move || {
                        let mut worker_rng = StdRng::seed_from_u64(seed);
                        self.run_with_born(circuit, None, worker_shots, &mut worker_rng)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let mut merged = Counts::new(self.n_qubits());
        for log in &logs {
            merged.merge(log);
        }
        merged
    }

    /// The exact output distribution of `circuit` under readout noise only
    /// (gate noise is ignored). Cost is `O(k · 2^n)` where `k` is the number
    /// of basis states with non-zero Born probability, so this is cheap for
    /// structured outputs and small registers.
    ///
    /// # Panics
    ///
    /// Panics if the circuit width mismatches or `n_qubits > 14`.
    pub fn exact_readout_distribution(&self, circuit: &Circuit) -> Distribution {
        assert_eq!(
            circuit.n_qubits(),
            self.n_qubits(),
            "circuit width mismatch"
        );
        let born = Distribution::from_probabilities(
            circuit.n_qubits(),
            StateVector::born_probabilities(circuit),
        );
        self.readout.apply_to_distribution(&born)
    }

    /// The worker-thread count to use for a single statevector evolution:
    /// the configured pool for large registers, serial otherwise.
    fn sim_threads(&self) -> usize {
        if self.n_qubits() >= THREADED_SIM_MIN_QUBITS {
            self.threads
        } else {
            1
        }
    }

    /// Computes the Born distribution of every circuit in a sweep,
    /// simulating each distinct *base* (the circuit prefix left after
    /// [`Circuit::trailing_x_split`]) exactly once and deriving each
    /// trailing-X variant by XOR permutation.
    ///
    /// This is exact in the readout-only regime — a noiseless trailing X
    /// layer is a pure basis permutation — and is bitwise identical to
    /// computing [`StateVector::born_probabilities`] per circuit, since
    /// that entry point performs the same split-and-permute. Returns `None`
    /// per circuit when gate noise is on (trailing X gates can then fault,
    /// so variants must be simulated in full).
    fn memoized_borns(&self, circuits: &[Circuit]) -> Vec<Option<Arc<Vec<f64>>>> {
        if !self.gate_noise.is_ideal() {
            return vec![None; circuits.len()];
        }
        let n = self.n_qubits();
        let sim_threads = self.sim_threads();
        // `Gate` has no `Hash`/`Eq` (float angles), so bases are matched by
        // linear slice scan — sweeps share a handful of bases at most.
        let mut bases: Vec<(&[Gate], Arc<Vec<f64>>)> = Vec::new();
        circuits
            .iter()
            .map(|c| {
                let (prefix, mask) = c.trailing_x_split();
                let base = match bases.iter().find(|(p, _)| *p == prefix) {
                    Some((_, b)) => Arc::clone(b),
                    None => {
                        let b: Arc<Vec<f64>> = Arc::new(if prefix.is_empty() {
                            let mut probs = vec![0.0; 1usize << n];
                            probs[0] = 1.0;
                            probs
                        } else {
                            let sv = StateVector::from_gates_threaded(n, prefix, sim_threads);
                            let probs = sv.probabilities_threaded(sim_threads);
                            sv.recycle();
                            probs
                        });
                        bases.push((prefix, Arc::clone(&b)));
                        b
                    }
                };
                let m = mask.index();
                if m == 0 {
                    Some(base)
                } else {
                    let mut probs = vec![0.0; base.len()];
                    for (i, &p) in base.iter().enumerate() {
                        probs[i ^ m] = p;
                    }
                    Some(Arc::new(probs))
                }
            })
            .collect()
    }

    /// Whether synthesizing the log beats sampling `shots` outcomes one by
    /// one: composing the channel costs `O(support · 2^n)`, the per-shot
    /// path roughly `O(shots · n)` after its alias table is built.
    fn synthesis_pays_off(&self, born: &[f64], shots: u64) -> bool {
        if !self.shot_synthesis || self.n_qubits() > 14 {
            return false;
        }
        let support = born.iter().filter(|&&p| p > 0.0).count();
        let compose_cost = support as u128 * born.len() as u128;
        compose_cost <= shots as u128 * self.n_qubits().max(1) as u128
    }

    /// Per-shot sampling + readout corruption from a fixed state, densely
    /// accumulated.
    fn corrupt_shots_dense(
        &self,
        sampler: &qsim::AliasSampler,
        shots: u64,
        dense: &mut [u64],
        counts: &mut Counts,
        rng: &mut dyn RngCore,
    ) {
        let n = self.n_qubits();
        for _ in 0..shots {
            let ideal = BitString::from_value(sampler.sample(rng) as u64, n);
            let observed = self.readout.corrupt(ideal, rng);
            if n <= MAX_DENSE_WIDTH {
                dense[observed.index()] += 1;
            } else {
                counts.record(observed);
            }
        }
    }

    /// The shared core of [`Executor::run`] and [`Executor::run_groups`]:
    /// runs one circuit, optionally against a pre-computed Born
    /// distribution (from the variant-amortization memo).
    ///
    /// In the readout-only regime only the Born distribution is needed —
    /// both the synthesis and per-shot paths sample from it — so a memoized
    /// `born` skips circuit evolution entirely and the result is bitwise
    /// identical to the unmemoized path (which derives the same vector via
    /// [`StateVector::born_probabilities`]). With gate noise on, `born` is
    /// ignored and full Monte-Carlo trajectory simulation runs.
    fn run_with_born(
        &self,
        circuit: &Circuit,
        born: Option<&[f64]>,
        shots: u64,
        rng: &mut dyn RngCore,
    ) -> Counts {
        assert_eq!(
            circuit.n_qubits(),
            self.n_qubits(),
            "circuit width mismatch"
        );
        let n = self.n_qubits();
        if shots == 0 {
            return Counts::new(n);
        }
        if self.gate_noise.is_ideal() {
            let born_owned;
            let born = match born {
                Some(b) => b,
                None => {
                    born_owned =
                        StateVector::born_probabilities_threaded(circuit, self.sim_threads());
                    &born_owned[..]
                }
            };
            if self.synthesis_pays_off(born, shots) {
                // Exact-channel shot synthesis: one channel composition, one
                // multinomial draw, cost independent of `shots`.
                let observed = self
                    .readout
                    .apply_to_distribution(&Distribution::from_probabilities(n, born.to_vec()));
                return Counts::synthesize_from(&observed, shots, rng);
            }
            let sampler = qsim::AliasSampler::new(born);
            let mut dense = vec![0u64; if n <= MAX_DENSE_WIDTH { 1usize << n } else { 0 }];
            let mut counts = Counts::new(n);
            self.corrupt_shots_dense(&sampler, shots, &mut dense, &mut counts, rng);
            return if n <= MAX_DENSE_WIDTH {
                Counts::from_dense(n, &dense)
            } else {
                counts
            };
        }
        // Gate noise: split shots across Monte-Carlo fault trajectories.
        // Trailing X gates are themselves fault sites here, so no variant
        // shortcut applies; the base state is still evolved fused.
        let ideal_psi = StateVector::from_circuit(circuit);
        let n_traj = shots.min(self.max_trajectories);
        let base = shots / n_traj;
        let extra = shots % n_traj;
        let ideal_sampler = ideal_psi.sampler();
        // The alias table owns its weights; the amplitude buffer can go
        // back to the arena for the trajectory states to reuse.
        ideal_psi.recycle();
        let mut dense = vec![0u64; if n <= MAX_DENSE_WIDTH { 1usize << n } else { 0 }];
        let mut counts = Counts::new(n);
        for t in 0..n_traj {
            let traj_shots = base + u64::from(t < extra);
            let (traj_circuit, faults) = self.gate_noise.sample_trajectory(circuit, rng);
            let sampler;
            let active = if faults == 0 {
                &ideal_sampler
            } else {
                let traj_psi = StateVector::from_circuit(&traj_circuit);
                sampler = traj_psi.sampler();
                traj_psi.recycle();
                &sampler
            };
            self.corrupt_shots_dense(active, traj_shots, &mut dense, &mut counts, rng);
        }
        if n <= MAX_DENSE_WIDTH {
            Counts::from_dense(n, &dense)
        } else {
            counts
        }
    }
}

impl Executor for NoisyExecutor {
    fn n_qubits(&self) -> usize {
        self.readout.n_qubits()
    }

    fn run(&self, circuit: &Circuit, shots: u64, rng: &mut dyn RngCore) -> Counts {
        self.check_exec_fault();
        self.run_with_born(circuit, None, shots, rng)
    }

    fn run_groups(
        &self,
        circuits: &[Circuit],
        shots: &[u64],
        rng: &mut dyn RngCore,
    ) -> Vec<Counts> {
        assert_eq!(
            circuits.len(),
            shots.len(),
            "one shot budget per circuit required"
        );
        // One fault arrival for the whole sweep, not one per circuit or
        // per worker: the scripted sequence must not depend on sweep
        // decomposition or the thread pool.
        self.check_exec_fault();
        // One seed per circuit, drawn sequentially before any dispatch: the
        // output is bitwise independent of the worker count and identical
        // to the serial default implementation.
        let seeds: Vec<u64> = circuits.iter().map(|_| rng.next_u64()).collect();
        // Variant amortization: every distinct base circuit in the sweep is
        // simulated exactly once (on the caller thread, threaded for large
        // registers); trailing-X variants reuse it by XOR permutation.
        let borns = self.memoized_borns(circuits);
        let threads = self.threads.min(circuits.len()).max(1);
        if threads == 1 {
            return circuits
                .iter()
                .zip(shots)
                .zip(&seeds)
                .zip(&borns)
                .map(|(((c, &s), &seed), born)| {
                    let mut circuit_rng = StdRng::seed_from_u64(seed);
                    self.run_with_born(c, born.as_ref().map(|b| &b[..]), s, &mut circuit_rng)
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Counts>>> = circuits.iter().map(|_| Mutex::new(None)).collect();
        // Circuit-granularity parallelism on the persistent pool: workers
        // pull circuit indices from a shared cursor, so a whole
        // characterization sweep reuses one set of parked threads (and
        // each worker's thread-local statevector arena stays warm across
        // the batch). Which worker runs which circuit is irrelevant to the
        // output — every circuit's RNG is seeded from `seeds[i]`.
        qsim::pool::run(threads, &|_| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= circuits.len() {
                break;
            }
            let mut circuit_rng = StdRng::seed_from_u64(seeds[i]);
            let log = self.run_with_born(
                &circuits[i],
                borns[i].as_ref().map(|b| &b[..]),
                shots[i],
                &mut circuit_rng,
            );
            *slots[i].lock().expect("result slot poisoned") = Some(log);
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("every index was claimed by a worker")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::BitString;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn ideal_executor_reproduces_circuit_output() {
        let exec = IdealExecutor::new(2);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let log = exec.run(&c, 5000, &mut rng);
        assert_eq!(log.total(), 5000);
        let f00 = log.frequency(&bs("00"));
        assert!((f00 - 0.5).abs() < 0.03, "f00 = {f00}");
        assert_eq!(log.get(&bs("01")), 0);
    }

    #[test]
    fn readout_only_executor_matches_exact_distribution() {
        let dev = DeviceModel::ibmqx4();
        let exec = NoisyExecutor::readout_only(&dev);
        let c = Circuit::basis_state_preparation(bs("11010"));
        let exact = exec.exact_readout_distribution(&c);
        let mut rng = StdRng::seed_from_u64(21);
        let log = exec.run(&c, 60_000, &mut rng);
        for s in BitString::all(5) {
            assert!(
                (log.frequency(&s) - exact.probability_of(s)).abs() < 0.012,
                "{s}: {} vs {}",
                log.frequency(&s),
                exact.probability_of(s)
            );
        }
    }

    #[test]
    fn synthesis_and_per_shot_paths_agree_statistically() {
        let dev = DeviceModel::ibmqx2();
        let synth = NoisyExecutor::readout_only(&dev);
        let per_shot = NoisyExecutor::readout_only(&dev).with_shot_synthesis(false);
        let c = Circuit::basis_state_preparation(bs("10110"));
        let shots = 60_000u64;
        let a = synth.run(&c, shots, &mut StdRng::seed_from_u64(4));
        let b = per_shot.run(&c, shots, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.total(), shots);
        assert_eq!(b.total(), shots);
        for s in BitString::all(5) {
            assert!(
                (a.frequency(&s) - b.frequency(&s)).abs() < 0.012,
                "{s}: synth {} vs per-shot {}",
                a.frequency(&s),
                b.frequency(&s)
            );
        }
    }

    #[test]
    fn gate_noise_reduces_success() {
        let dev = DeviceModel::ibmqx2();
        let mut ghz = Circuit::new(5);
        ghz.h(0);
        for q in 0..4 {
            ghz.cx(q, q + 1);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let noisy = NoisyExecutor::from_device(&dev);
        let readout_only = NoisyExecutor::readout_only(&dev);
        let full = noisy.run(&ghz, 8000, &mut rng);
        let ro = readout_only.run(&ghz, 8000, &mut rng);
        let ok =
            |log: &Counts| log.frequency(&BitString::zeros(5)) + log.frequency(&BitString::ones(5));
        assert!(
            ok(&full) < ok(&ro),
            "gate noise should lower success: {} vs {}",
            ok(&full),
            ok(&ro)
        );
        // But not destroy the signal entirely.
        assert!(ok(&full) > 0.3);
    }

    #[test]
    fn trajectory_cap_respected_and_totals_exact() {
        let dev = DeviceModel::ibmqx4();
        let exec = NoisyExecutor::from_device(&dev).with_max_trajectories(7);
        let c = Circuit::uniform_superposition(5);
        let mut rng = StdRng::seed_from_u64(9);
        let log = exec.run(&c, 1000, &mut rng);
        assert_eq!(log.total(), 1000);
        let log = exec.run(&c, 3, &mut rng);
        assert_eq!(log.total(), 3);
        let log = exec.run(&c, 0, &mut rng);
        assert_eq!(log.total(), 0);
    }

    #[test]
    fn ideal_device_full_stack_is_error_free() {
        let dev = DeviceModel::ideal(4);
        let exec = NoisyExecutor::from_device(&dev);
        let c = Circuit::basis_state_preparation(bs("1011"));
        let mut rng = StdRng::seed_from_u64(2);
        let log = exec.run(&c, 500, &mut rng);
        assert_eq!(log.get(&bs("1011")), 500);
    }

    #[test]
    fn invert_and_measure_effect_visible() {
        // The heart of the paper: measuring 11111 through the inverted mode
        // (X on every qubit, then XOR-correct) succeeds more often than
        // measuring it directly on a biased machine.
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let mut rng = StdRng::seed_from_u64(17);
        let ones = BitString::ones(5);

        let direct = Circuit::basis_state_preparation(ones);
        let direct_log = exec.run(&direct, 16_000, &mut rng);
        let pst_direct = direct_log.frequency(&ones);

        let inverted = direct.with_premeasure_inversion(ones);
        let inv_log = exec.run(&inverted, 16_000, &mut rng).xor_corrected(ones);
        let pst_inverted = inv_log.frequency(&ones);

        assert!(
            pst_inverted > pst_direct + 0.1,
            "inversion should help: direct {pst_direct}, inverted {pst_inverted}"
        );
    }

    #[test]
    fn parallel_run_matches_serial_statistics() {
        let dev = DeviceModel::ibmqx4();
        let exec = NoisyExecutor::from_device(&dev);
        let mut c = Circuit::new(5);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).cx(3, 4);
        let shots = 40_000;
        let mut rng = StdRng::seed_from_u64(88);
        let serial = exec.run(&c, shots, &mut rng);
        let mut rng = StdRng::seed_from_u64(88);
        let parallel = exec.run_parallel(&c, shots, 4, &mut rng);
        assert_eq!(parallel.total(), shots);
        // Same device physics: the two logs agree statistically.
        for s in [BitString::zeros(5), BitString::ones(5)] {
            assert!(
                (serial.frequency(&s) - parallel.frequency(&s)).abs() < 0.015,
                "{s}: serial {} vs parallel {}",
                serial.frequency(&s),
                parallel.frequency(&s)
            );
        }
    }

    #[test]
    fn parallel_run_is_deterministic_per_seed_and_thread_count() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let c = Circuit::uniform_superposition(5);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            exec.run_parallel(&c, 5_000, 3, &mut rng)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn parallel_run_with_tiny_budgets() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let c = Circuit::new(5);
        let mut rng = StdRng::seed_from_u64(0);
        // Fewer shots than threads falls back to serial.
        assert_eq!(exec.run_parallel(&c, 2, 8, &mut rng).total(), 2);
        assert_eq!(exec.run_parallel(&c, 0, 4, &mut rng).total(), 0);
    }

    #[test]
    fn run_groups_is_independent_of_thread_count() {
        let dev = DeviceModel::ibmqx4();
        let circuits: Vec<Circuit> = BitString::all(5)
            .map(Circuit::basis_state_preparation)
            .collect();
        let shots: Vec<u64> = (0..circuits.len() as u64).map(|i| 50 + 17 * i).collect();
        let sweep = |threads: usize| {
            let exec = NoisyExecutor::from_device(&dev).with_threads(threads);
            let mut rng = StdRng::seed_from_u64(0xAB);
            exec.run_groups(&circuits, &shots, &mut rng)
        };
        let serial = sweep(1);
        for threads in [2, 3, 8] {
            assert_eq!(serial, sweep(threads), "thread count {threads} diverged");
        }
        for (log, &s) in serial.iter().zip(&shots) {
            assert_eq!(log.total(), s);
        }
    }

    #[test]
    fn run_batch_uniform_budget() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev).with_threads(4);
        let circuits: Vec<Circuit> = ["00000", "11111", "10101"]
            .iter()
            .map(|s| Circuit::basis_state_preparation(bs(s)))
            .collect();
        let mut rng = StdRng::seed_from_u64(7);
        let logs = exec.run_batch(&circuits, 300, &mut rng);
        assert_eq!(logs.len(), 3);
        for log in &logs {
            assert_eq!(log.total(), 300);
        }
        // Each log is dominated by its own prepared state.
        assert_eq!(logs[0].mode(), Some(bs("00000")));
        assert_eq!(logs[1].mode(), Some(bs("11111")));
    }

    #[test]
    fn run_groups_empty_and_zero_shot_edges() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev).with_threads(2);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(exec.run_groups(&[], &[], &mut rng).is_empty());
        let c = Circuit::new(5);
        let logs = exec.run_groups(std::slice::from_ref(&c), &[0], &mut rng);
        assert_eq!(logs[0].total(), 0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_circuit_panics() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::from_device(&dev);
        let c = Circuit::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        exec.run(&c, 1, &mut rng);
    }
}
