//! Parameterized models of the paper's three evaluation machines.
//!
//! The reproduction has no access to the 2019 IBM cloud devices, so each
//! machine is modeled by the physical parameters that produce its published
//! behaviour (DESIGN.md §2 documents this substitution):
//!
//! * per-qubit discriminator ("assignment") error pairs, calibrated so the
//!   min/avg/max readout error match the paper's **Table 1**;
//! * per-qubit T1 times and a measurement-window duration, whose composed
//!   relaxation produces the Hamming-weight bias of **Figures 4 and 5**;
//! * readout crosstalk terms on ibmqx4 producing the repeatable *arbitrary*
//!   bias of **Figure 11**, including one exceptional qubit (q0) whose
//!   strongest value is 1 rather than 0;
//! * depolarizing gate-error rates in the paper's reported ranges
//!   (0.1–0.3 % single-qubit, 2–5 % two-qubit).
//!
//! Absolute numbers will not match the authors' testbed; the calibration
//! targets the *shapes* the paper reports.

use crate::correlated::{CorrelatedReadout, Crosstalk};
use crate::gate_noise::GateNoise;
use crate::readout::FlipPair;
use crate::tensor::TensorReadout;

/// Calibration data for one physical qubit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QubitSpec {
    /// Relaxation time constant in microseconds.
    pub t1_us: f64,
    /// Discriminator-only assignment error (excludes relaxation during the
    /// measurement window). Its [`FlipPair::mean_error`] is the quantity IBM
    /// reports as "readout error" (paper Table 1).
    pub assignment: FlipPair,
    /// Depolarizing error probability of single-qubit gates on this qubit.
    pub gate_error_1q: f64,
}

/// A complete NISQ machine model.
///
/// # Examples
///
/// ```
/// use qnoise::DeviceModel;
///
/// let dev = DeviceModel::ibmqx4();
/// assert_eq!(dev.n_qubits(), 5);
/// let (min, avg, max) = dev.assignment_error_stats();
/// assert!(min < avg && avg < max);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    name: String,
    qubits: Vec<QubitSpec>,
    coupling: Vec<(usize, usize)>,
    gate_error_2q: f64,
    edge_errors: Vec<(usize, usize, f64)>,
    meas_duration_us: f64,
    crosstalk: Vec<Crosstalk>,
}

impl DeviceModel {
    /// Builds a device from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is empty, any coupling/crosstalk index is out of
    /// range, or rates are outside `[0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        name: impl Into<String>,
        qubits: Vec<QubitSpec>,
        coupling: Vec<(usize, usize)>,
        gate_error_2q: f64,
        edge_errors: Vec<(usize, usize, f64)>,
        meas_duration_us: f64,
        crosstalk: Vec<Crosstalk>,
    ) -> Self {
        assert!(!qubits.is_empty(), "device needs at least one qubit");
        let n = qubits.len();
        assert!(
            (0.0..=1.0).contains(&gate_error_2q),
            "2q error rate out of range"
        );
        assert!(
            meas_duration_us >= 0.0,
            "measurement duration must be non-negative"
        );
        for &(a, b) in &coupling {
            assert!(a < n && b < n && a != b, "bad coupling edge ({a}, {b})");
        }
        for &(a, b, p) in &edge_errors {
            assert!(a < n && b < n && a != b, "bad edge-error edge ({a}, {b})");
            assert!((0.0..=1.0).contains(&p), "edge error rate out of range");
        }
        for c in &crosstalk {
            assert!(c.source < n && c.target < n, "crosstalk out of range");
        }
        DeviceModel {
            name: name.into(),
            qubits,
            coupling,
            gate_error_2q,
            edge_errors,
            meas_duration_us,
            crosstalk,
        }
    }

    /// A noiseless `n`-qubit machine (useful as the "ideal quantum
    /// computer" reference in the figures).
    pub fn ideal(n_qubits: usize) -> Self {
        DeviceModel::from_parts(
            format!("ideal-{n_qubits}"),
            vec![
                QubitSpec {
                    t1_us: 1e12,
                    assignment: FlipPair::IDEAL,
                    gate_error_1q: 0.0,
                };
                n_qubits
            ],
            Vec::new(),
            0.0,
            Vec::new(),
            0.0,
            Vec::new(),
        )
    }

    /// Model of **ibmqx2** (IBM-Q5 "Yorktown"): the most reliable of the
    /// three machines, with readout errors 1.2 % / 3.8 % / 12.8 %
    /// (min/avg/max, Table 1) and a strong Hamming-weight bias
    /// (relative BMS of `11111` ≈ 0.38, Figure 4).
    pub fn ibmqx2() -> Self {
        let t1 = [55.0, 60.0, 48.0, 65.0, 42.0];
        let assign = [
            (0.008, 0.016),
            (0.012, 0.022),
            (0.018, 0.030),
            (0.010, 0.020),
            (0.085, 0.171),
        ];
        let qubits = t1
            .iter()
            .zip(assign)
            .map(|(&t1_us, (p01, p10))| QubitSpec {
                t1_us,
                assignment: FlipPair::new(p01, p10),
                gate_error_1q: 0.0015,
            })
            .collect();
        DeviceModel::from_parts(
            "ibmqx2",
            qubits,
            vec![(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)],
            0.025,
            vec![(2, 4, 0.035)],
            10.0,
            Vec::new(),
        )
    }

    /// Model of **ibmqx4** (IBM-Q5 "Tenerife"): readout errors
    /// 3.4 % / 8.2 % / 20.7 % (Table 1) and *arbitrary* state-dependent bias
    /// (Figure 11) produced by heterogeneous qubits, readout crosstalk, and
    /// one exceptional qubit (q0: long T1, inverted assignment asymmetry)
    /// whose reliable value is 1.
    pub fn ibmqx4() -> Self {
        let specs = [
            // (t1_us, p01, p10, 1q error)
            (120.0, 0.062, 0.006, 0.0020),
            (55.0, 0.030, 0.100, 0.0025),
            (30.0, 0.060, 0.060, 0.0030),
            (65.0, 0.020, 0.072, 0.0020),
            (50.0, 0.080, 0.334, 0.0030),
        ];
        let qubits = specs
            .iter()
            .map(|&(t1_us, p01, p10, g1)| QubitSpec {
                t1_us,
                assignment: FlipPair::new(p01, p10),
                gate_error_1q: g1,
            })
            .collect();
        DeviceModel::from_parts(
            "ibmqx4",
            qubits,
            vec![(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (2, 4)],
            0.045,
            vec![(2, 4, 0.06), (3, 4, 0.055)],
            6.0,
            vec![
                Crosstalk::new(1, 0, 0.06),
                Crosstalk::new(2, 4, 0.08),
                Crosstalk::new(3, 2, 0.05),
                Crosstalk::new(3, 0, 0.04),
            ],
        )
    }

    /// Model of **ibmq-melbourne** (IBM-Q14): readout errors
    /// 2.2 % / 8.1 % / 31 % (Table 1); the larger register shows the clean
    /// inverse relation between Hamming weight and measurement strength of
    /// Figure 5.
    pub fn ibmq_melbourne() -> Self {
        // Mean assignment errors (%), calibrated to Table 1 (avg 8.12, min
        // 2.2 on q1, max 31 on q6).
        let mean_err = [
            3.0, 2.2, 5.5, 4.0, 8.0, 6.5, 31.0, 5.0, 7.0, 9.5, 4.5, 12.0, 6.0, 9.5,
        ];
        let t1 = [
            58.0, 72.0, 55.0, 64.0, 48.0, 61.0, 38.0, 66.0, 52.0, 44.0, 70.0, 41.0, 63.0, 50.0,
        ];
        let qubits = mean_err
            .iter()
            .zip(t1)
            .map(|(&e_pct, t1_us)| {
                let e = e_pct / 100.0;
                QubitSpec {
                    t1_us,
                    // Asymmetric split: p01 = 0.7 e, p10 = 1.3 e keeps the
                    // mean at e while favouring 1 -> 0 errors.
                    assignment: FlipPair::new(0.7 * e, 1.3 * e),
                    gate_error_1q: 0.002,
                }
            })
            .collect();
        // Ladder topology approximating the melbourne coupling map.
        let mut coupling: Vec<(usize, usize)> = (0..6).map(|i| (i, i + 1)).collect();
        coupling.extend((7..13).map(|i| (i, i + 1)));
        coupling.extend((0..7).map(|i| (i, 13 - i)));
        DeviceModel::from_parts(
            "ibmq-melbourne",
            qubits,
            coupling,
            0.035,
            vec![(5, 6, 0.055), (6, 7, 0.05), (11, 12, 0.045)],
            1.5,
            vec![Crosstalk::new(5, 6, 0.01), Crosstalk::new(11, 10, 0.008)],
        )
    }

    /// Resolves a built-in model by name: `ibmqx2`, `ibmqx4`,
    /// `ibmq-melbourne` (or `ibmq_melbourne`), and `ideal-N` for a
    /// noiseless N-qubit reference (1 ≤ N ≤ 20). Returns `None` for
    /// anything else — callers own the error message.
    pub fn by_name(name: &str) -> Option<DeviceModel> {
        match name {
            "ibmqx2" => Some(DeviceModel::ibmqx2()),
            "ibmqx4" => Some(DeviceModel::ibmqx4()),
            "ibmq-melbourne" | "ibmq_melbourne" => Some(DeviceModel::ibmq_melbourne()),
            other => other
                .strip_prefix("ideal-")
                .and_then(|n| n.parse::<usize>().ok())
                .filter(|&n| (1..=20).contains(&n))
                .map(DeviceModel::ideal),
        }
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// The calibration of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn qubit(&self, q: usize) -> &QubitSpec {
        &self.qubits[q]
    }

    /// The two-qubit coupling map.
    pub fn coupling(&self) -> &[(usize, usize)] {
        &self.coupling
    }

    /// The duration of the measurement window in microseconds.
    pub fn meas_duration_us(&self) -> f64 {
        self.meas_duration_us
    }

    /// Min, mean, and max per-qubit assignment error — the numbers the
    /// paper's **Table 1** reports.
    pub fn assignment_error_stats(&self) -> (f64, f64, f64) {
        let errs: Vec<f64> = self
            .qubits
            .iter()
            .map(|q| q.assignment.mean_error())
            .collect();
        let min = errs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = errs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let avg = errs.iter().sum::<f64>() / errs.len() as f64;
        (min, avg, max)
    }

    /// Effective per-qubit readout pairs: assignment error composed with T1
    /// relaxation over the measurement window. This is the total
    /// state-dependent error an experimenter observes.
    pub fn effective_pairs(&self) -> Vec<FlipPair> {
        self.qubits
            .iter()
            .map(|q| q.assignment.with_t1_decay(q.t1_us, self.meas_duration_us))
            .collect()
    }

    /// The full readout channel: effective per-qubit pairs plus crosstalk.
    pub fn readout(&self) -> CorrelatedReadout {
        CorrelatedReadout::new(
            TensorReadout::new(self.effective_pairs()),
            self.crosstalk.clone(),
        )
    }

    /// The depolarizing gate-noise model.
    pub fn gate_noise(&self) -> GateNoise {
        let mut gn = GateNoise::new(
            self.qubits.iter().map(|q| q.gate_error_1q).collect(),
            self.gate_error_2q,
        );
        for &(a, b, p) in &self.edge_errors {
            gn.set_edge_error(a, b, p);
        }
        gn
    }

    /// Restricts the model to a subset of qubits, remapping indices to
    /// `0..qubits.len()` in the order given. Coupling edges, edge-specific
    /// error rates, and crosstalk terms that are not fully contained in the
    /// subset are dropped.
    ///
    /// This models allocating a small benchmark onto specific physical
    /// qubits of a larger machine (the paper's "optimal qubit allocation").
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is empty, contains duplicates, or references a
    /// qubit outside the device.
    pub fn subdevice(&self, qubits: &[usize]) -> DeviceModel {
        assert!(!qubits.is_empty(), "subdevice needs at least one qubit");
        let n = self.n_qubits();
        let mut remap = vec![usize::MAX; n];
        for (new, &old) in qubits.iter().enumerate() {
            assert!(old < n, "qubit {old} outside device");
            assert!(remap[old] == usize::MAX, "duplicate qubit {old}");
            remap[old] = new;
        }
        let specs = qubits.iter().map(|&q| self.qubits[q]).collect();
        let coupling = self
            .coupling
            .iter()
            .filter(|&&(a, b)| remap[a] != usize::MAX && remap[b] != usize::MAX)
            .map(|&(a, b)| (remap[a], remap[b]))
            .collect();
        let edge_errors = self
            .edge_errors
            .iter()
            .filter(|&&(a, b, _)| remap[a] != usize::MAX && remap[b] != usize::MAX)
            .map(|&(a, b, p)| (remap[a], remap[b], p))
            .collect();
        let crosstalk = self
            .crosstalk
            .iter()
            .filter(|c| remap[c.source] != usize::MAX && remap[c.target] != usize::MAX)
            .map(|c| Crosstalk::new(remap[c.source], remap[c.target], c.extra))
            .collect();
        DeviceModel::from_parts(
            format!("{}[{} qubits]", self.name, qubits.len()),
            specs,
            coupling,
            self.gate_error_2q,
            edge_errors,
            self.meas_duration_us,
            crosstalk,
        )
    }

    /// The best `k` qubits by effective mean readout error, as a subdevice —
    /// a simple variability-aware allocation (the paper's baseline compiler
    /// maps benchmarks onto the strongest qubits).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds the device size.
    pub fn best_qubits_subdevice(&self, k: usize) -> DeviceModel {
        assert!(k >= 1 && k <= self.n_qubits(), "bad subdevice size {k}");
        let pairs = self.effective_pairs();
        let mut order: Vec<usize> = (0..self.n_qubits()).collect();
        order.sort_by(|&a, &b| {
            pairs[a]
                .mean_error()
                .partial_cmp(&pairs[b].mean_error())
                .expect("error rates are finite")
        });
        let mut chosen: Vec<usize> = order.into_iter().take(k).collect();
        chosen.sort_unstable();
        self.subdevice(&chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readout::ReadoutModel;
    use qsim::BitString;

    #[test]
    fn table1_ibmqx2_stats() {
        let (min, avg, max) = DeviceModel::ibmqx2().assignment_error_stats();
        assert!((min - 0.012).abs() < 1e-9, "min = {min}");
        assert!((avg - 0.038).abs() < 0.004, "avg = {avg}");
        assert!((max - 0.128).abs() < 1e-9, "max = {max}");
    }

    #[test]
    fn table1_ibmqx4_stats() {
        let (min, avg, max) = DeviceModel::ibmqx4().assignment_error_stats();
        assert!((min - 0.034).abs() < 1e-9, "min = {min}");
        assert!((avg - 0.082).abs() < 0.004, "avg = {avg}");
        assert!((max - 0.207).abs() < 1e-9, "max = {max}");
    }

    #[test]
    fn table1_melbourne_stats() {
        let dev = DeviceModel::ibmq_melbourne();
        assert_eq!(dev.n_qubits(), 14);
        let (min, avg, max) = dev.assignment_error_stats();
        assert!((min - 0.022).abs() < 1e-9, "min = {min}");
        assert!((avg - 0.0812).abs() < 0.002, "avg = {avg}");
        assert!((max - 0.31).abs() < 1e-9, "max = {max}");
    }

    #[test]
    fn ibmqx2_all_ones_relative_bms_near_paper() {
        // Figure 4: relative BMS of 11111 on ibmqx2 is ~0.38.
        let r = DeviceModel::ibmqx2().readout();
        let strong = r.success_probability(BitString::zeros(5));
        let weak = r.success_probability(BitString::ones(5));
        let rel = weak / strong;
        assert!(
            (0.25..=0.50).contains(&rel),
            "relative BMS of 11111 = {rel}, expected near 0.38"
        );
    }

    #[test]
    fn ibmqx2_bias_is_monotone_in_weight_on_average() {
        let r = DeviceModel::ibmqx2().readout();
        // Average BMS per Hamming-weight class decreases.
        let mut class_avg = [(0.0, 0u32); 6];
        for s in BitString::all(5) {
            let e = &mut class_avg[s.hamming_weight() as usize];
            e.0 += r.success_probability(s);
            e.1 += 1;
        }
        let avgs: Vec<f64> = class_avg.iter().map(|&(sum, n)| sum / n as f64).collect();
        for w in 1..avgs.len() {
            assert!(
                avgs[w] < avgs[w - 1],
                "BMS class averages not decreasing: {avgs:?}"
            );
        }
    }

    #[test]
    fn ibmqx4_bias_is_arbitrary() {
        // Figure 11: on ibmqx4 the BMS is NOT monotone in Hamming weight —
        // some weight-1 state is weaker than some weight-2 state.
        let r = DeviceModel::ibmqx4().readout();
        let weakest_w1 = BitString::all(5)
            .filter(|s| s.hamming_weight() == 1)
            .map(|s| r.success_probability(s))
            .fold(f64::INFINITY, f64::min);
        let strongest_w2 = BitString::all(5)
            .filter(|s| s.hamming_weight() == 2)
            .map(|s| r.success_probability(s))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            weakest_w1 < strongest_w2,
            "expected arbitrary bias: weakest w1 {weakest_w1} vs strongest w2 {strongest_w2}"
        );
    }

    #[test]
    fn ibmqx4_strongest_state_is_not_all_zeros() {
        let r = DeviceModel::ibmqx4().readout();
        let zeros = r.success_probability(BitString::zeros(5));
        let best = BitString::all(5)
            .map(|s| (r.success_probability(s), s))
            .fold((f64::NEG_INFINITY, BitString::zeros(5)), |acc, x| {
                if x.0 > acc.0 {
                    x
                } else {
                    acc
                }
            });
        assert!(
            best.0 > zeros,
            "expected a state stronger than 00000 on ibmqx4, best = {} ({})",
            best.1,
            best.0
        );
    }

    #[test]
    fn melbourne_ten_qubit_relative_bms_matches_fig5() {
        // Figure 5: on melbourne, relative BMS at weight 10 (of 10 qubits)
        // is ~0.45.
        let dev = DeviceModel::ibmq_melbourne().subdevice(&[0, 1, 2, 3, 4, 5, 7, 8, 9, 10]);
        let r = dev.readout();
        let strong = r.success_probability(BitString::zeros(10));
        let weak = r.success_probability(BitString::ones(10));
        let rel = weak / strong;
        assert!(
            (0.30..=0.60).contains(&rel),
            "relative BMS at weight 10 = {rel}, expected near 0.45"
        );
    }

    #[test]
    fn ideal_device_is_noise_free() {
        let dev = DeviceModel::ideal(4);
        assert!(dev.gate_noise().is_ideal());
        let r = dev.readout();
        for s in BitString::all(4) {
            assert_eq!(r.success_probability(s), 1.0);
        }
    }

    #[test]
    fn subdevice_remaps() {
        let dev = DeviceModel::ibmqx4();
        let sub = dev.subdevice(&[2, 4]);
        assert_eq!(sub.n_qubits(), 2);
        assert_eq!(sub.qubit(0).assignment, dev.qubit(2).assignment);
        assert_eq!(sub.qubit(1).assignment, dev.qubit(4).assignment);
        // The (2,4) coupling edge survives remapped to (0,1).
        assert!(sub.coupling().contains(&(0, 1)));
        // Crosstalk 2 -> 4 survives as 0 -> 1.
        assert_eq!(sub.readout().crosstalk().len(), 1);
    }

    #[test]
    fn best_qubits_picks_lowest_error() {
        let dev = DeviceModel::ibmq_melbourne();
        let sub = dev.best_qubits_subdevice(5);
        assert_eq!(sub.n_qubits(), 5);
        // The worst qubit (q6, 31% assignment) must not be selected.
        let worst = dev.qubit(6).assignment;
        for q in 0..5 {
            assert_ne!(sub.qubit(q).assignment, worst);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn subdevice_rejects_duplicates() {
        DeviceModel::ibmqx2().subdevice(&[0, 0]);
    }
}
