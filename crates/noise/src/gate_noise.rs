//! Depolarizing gate noise via Monte-Carlo Pauli trajectories.
//!
//! Every gate on NISQ hardware is imperfect: single-qubit gates err at
//! 0.1–0.3 %, two-qubit gates at 2–5 % (paper §2.3). The standard stochastic
//! model inserts a uniformly random non-identity Pauli on the gate's qubits
//! with the gate's error probability. Sampling one such "fault pattern" per
//! trajectory and simulating the faulted circuit reproduces the NISQ trial
//! model shot by shot.

use qsim::{Circuit, Gate};
use rand::{Rng, RngCore};
use std::collections::HashMap;

/// Per-gate depolarizing error rates for a device.
///
/// # Examples
///
/// ```
/// use qnoise::GateNoise;
/// use qsim::Gate;
///
/// let noise = GateNoise::uniform(5, 0.002, 0.03);
/// assert_eq!(noise.gate_error(&Gate::X(1)), 0.002);
/// assert_eq!(noise.gate_error(&Gate::Cx { control: 0, target: 1 }), 0.03);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GateNoise {
    p1q: Vec<f64>,
    p2q_default: f64,
    p2q_edges: HashMap<(usize, usize), f64>,
}

impl GateNoise {
    /// Creates a noise model with per-qubit single-qubit error rates and a
    /// default two-qubit rate.
    ///
    /// # Panics
    ///
    /// Panics if `p1q` is empty or any rate is outside `[0, 1]`.
    pub fn new(p1q: Vec<f64>, p2q_default: f64) -> Self {
        assert!(!p1q.is_empty(), "need at least one qubit");
        for &p in &p1q {
            assert!((0.0..=1.0).contains(&p), "1q error rate {p} out of range");
        }
        assert!(
            (0.0..=1.0).contains(&p2q_default),
            "2q error rate {p2q_default} out of range"
        );
        GateNoise {
            p1q,
            p2q_default,
            p2q_edges: HashMap::new(),
        }
    }

    /// Uniform rates across all qubits.
    pub fn uniform(n_qubits: usize, p1q: f64, p2q: f64) -> Self {
        GateNoise::new(vec![p1q; n_qubits], p2q)
    }

    /// A noiseless model.
    pub fn ideal(n_qubits: usize) -> Self {
        GateNoise::uniform(n_qubits, 0.0, 0.0)
    }

    /// Overrides the two-qubit error rate on a specific (unordered) edge.
    ///
    /// # Panics
    ///
    /// Panics if the rate is outside `[0, 1]` or the qubits coincide.
    pub fn set_edge_error(&mut self, a: usize, b: usize, p: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&p), "2q error rate {p} out of range");
        assert_ne!(a, b, "edge endpoints must differ");
        self.p2q_edges.insert((a.min(b), a.max(b)), p);
        self
    }

    /// The number of qubits covered.
    pub fn n_qubits(&self) -> usize {
        self.p1q.len()
    }

    /// The error probability of a specific gate instance.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit outside the model.
    pub fn gate_error(&self, gate: &Gate) -> f64 {
        let qs = gate.qubits();
        for &q in &qs {
            assert!(q < self.n_qubits(), "gate {gate} outside noise model");
        }
        if gate.is_two_qubit() {
            let key = (qs[0].min(qs[1]), qs[0].max(qs[1]));
            self.p2q_edges
                .get(&key)
                .copied()
                .unwrap_or(self.p2q_default)
        } else {
            self.p1q[qs[0]]
        }
    }

    /// Whether every error rate is zero.
    pub fn is_ideal(&self) -> bool {
        self.p1q.iter().all(|&p| p == 0.0)
            && self.p2q_default == 0.0
            && self.p2q_edges.values().all(|&p| p == 0.0)
    }

    /// The probability that an execution of `circuit` suffers *no* gate
    /// fault — the fraction of trajectories that follow the ideal circuit.
    pub fn fault_free_probability(&self, circuit: &Circuit) -> f64 {
        circuit
            .gates()
            .iter()
            .map(|g| 1.0 - self.gate_error(g))
            .product()
    }

    /// Samples a faulted copy of `circuit`: after each gate, with the gate's
    /// error probability, a uniformly random non-identity Pauli is inserted
    /// on the gate's qubit(s).
    ///
    /// Returns the trajectory circuit and the number of faults inserted.
    /// With zero faults the returned circuit equals the input.
    pub fn sample_trajectory(&self, circuit: &Circuit, rng: &mut dyn RngCore) -> (Circuit, usize) {
        let mut out = Circuit::new(circuit.n_qubits());
        let mut faults = 0;
        for g in circuit.gates() {
            out.push(*g);
            let p = self.gate_error(g);
            if p > 0.0 && rng.gen::<f64>() < p {
                faults += 1;
                let qs = g.qubits();
                if qs.len() == 1 {
                    out.push(random_pauli(qs[0], rng));
                } else {
                    // Uniform over the 15 non-identity two-qubit Paulis:
                    // pick (P_a, P_b) from {I,X,Y,Z}² minus (I,I).
                    let k = rng.gen_range(1..16u8);
                    let (pa, pb) = (k & 0b11, (k >> 2) & 0b11);
                    if let Some(g) = pauli_from_code(pa, qs[0]) {
                        out.push(g);
                    }
                    if let Some(g) = pauli_from_code(pb, qs[1]) {
                        out.push(g);
                    }
                }
            }
        }
        (out, faults)
    }
}

fn random_pauli(q: usize, rng: &mut dyn RngCore) -> Gate {
    match rng.gen_range(0..3u8) {
        0 => Gate::X(q),
        1 => Gate::Y(q),
        _ => Gate::Z(q),
    }
}

fn pauli_from_code(code: u8, q: usize) -> Option<Gate> {
    match code {
        0 => None,
        1 => Some(Gate::X(q)),
        2 => Some(Gate::Y(q)),
        _ => Some(Gate::Z(q)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rates_lookup() {
        let mut n = GateNoise::new(vec![0.001, 0.002, 0.003], 0.04);
        n.set_edge_error(2, 0, 0.08);
        assert_eq!(n.gate_error(&Gate::H(1)), 0.002);
        assert_eq!(
            n.gate_error(&Gate::Cx {
                control: 0,
                target: 1
            }),
            0.04
        );
        // Edge lookup is unordered.
        assert_eq!(
            n.gate_error(&Gate::Cx {
                control: 0,
                target: 2
            }),
            0.08
        );
        assert_eq!(
            n.gate_error(&Gate::Cx {
                control: 2,
                target: 0
            }),
            0.08
        );
    }

    #[test]
    fn ideal_model_inserts_nothing() {
        let n = GateNoise::ideal(3);
        assert!(n.is_ideal());
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let (traj, faults) = n.sample_trajectory(&c, &mut rng);
            assert_eq!(faults, 0);
            assert_eq!(traj, c);
        }
    }

    #[test]
    fn fault_free_probability_is_product() {
        let n = GateNoise::uniform(2, 0.1, 0.2);
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1);
        let expect = 0.9 * 0.9 * 0.8;
        assert!((n.fault_free_probability(&c) - expect).abs() < 1e-12);
    }

    #[test]
    fn fault_rate_matches_probability() {
        let n = GateNoise::uniform(1, 0.3, 0.0);
        let mut c = Circuit::new(1);
        c.x(0);
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 20_000;
        let mut faulted = 0;
        for _ in 0..trials {
            let (_, f) = n.sample_trajectory(&c, &mut rng);
            if f > 0 {
                faulted += 1;
            }
        }
        let rate = faulted as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn trajectory_keeps_original_gates_in_order() {
        let n = GateNoise::uniform(2, 0.5, 0.5);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).x(1);
        let mut rng = StdRng::seed_from_u64(1);
        let (traj, _) = n.sample_trajectory(&c, &mut rng);
        // Original gates appear as a subsequence.
        let mut it = traj.gates().iter();
        for g in c.gates() {
            assert!(it.any(|t| t == g), "missing {g}");
        }
    }

    #[test]
    fn two_qubit_fault_never_inserts_double_identity() {
        let n = GateNoise::uniform(2, 0.0, 1.0);
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let (traj, faults) = n.sample_trajectory(&c, &mut rng);
            assert_eq!(faults, 1);
            // With error probability 1 a Pauli must always be appended.
            assert!(traj.len() >= 2, "fault inserted no Pauli");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rate_panics() {
        GateNoise::uniform(2, 1.5, 0.0);
    }
}
