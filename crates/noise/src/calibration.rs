//! Readout calibration: estimating a machine's flip pairs from trials.
//!
//! IBM's calibration cycle measures each qubit's assignment error by
//! preparing `|0⟩` and `|1⟩` and counting misreads; the published Table 1
//! numbers come from exactly this procedure. [`calibrate_readout`]
//! simulates it against any executor: 2 circuits (all-zeros, all-ones),
//! `shots` trials each, per-qubit marginal error estimates. The estimates
//! feed the tensor unfolder and device diagnostics; comparing them with
//! the model's true pairs quantifies calibration shot noise.

use crate::executor::Executor;
use crate::readout::FlipPair;
use crate::tensor::TensorReadout;
use qsim::{BitString, Circuit};
use rand::RngCore;

/// Per-qubit readout calibration estimated from finite trials.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadoutCalibration {
    pairs: Vec<FlipPair>,
    shots_per_state: u64,
}

impl ReadoutCalibration {
    /// The estimated flip pairs.
    pub fn pairs(&self) -> &[FlipPair] {
        &self.pairs
    }

    /// The estimated pair of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn pair(&self, q: usize) -> FlipPair {
        self.pairs[q]
    }

    /// Trials spent per calibration circuit.
    pub fn shots_per_state(&self) -> u64 {
        self.shots_per_state
    }

    /// The estimated channel as a tensor readout model.
    pub fn to_tensor(&self) -> TensorReadout {
        TensorReadout::new(self.pairs.clone())
    }

    /// Min/avg/max of the per-qubit mean errors — the Table 1 statistic.
    pub fn error_stats(&self) -> (f64, f64, f64) {
        let errs: Vec<f64> = self.pairs.iter().map(|p| p.mean_error()).collect();
        qstats_min_avg_max(&errs)
    }
}

fn qstats_min_avg_max(values: &[f64]) -> (f64, f64, f64) {
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let avg = values.iter().sum::<f64>() / values.len() as f64;
    (min, avg, max)
}

/// Runs the two-circuit calibration procedure: prepare all-zeros and
/// all-ones, measure `shots` times each, and estimate each qubit's
/// `p01`/`p10` from the marginal misread rates.
///
/// The all-zeros/all-ones shortcut calibrates all qubits simultaneously
/// (2 circuits instead of `2n`); with independent readout it is exact, and
/// with crosstalk it measures each qubit in the worst-case neighbour
/// context — a conservative estimate.
///
/// # Panics
///
/// Panics if `shots` is 0.
pub fn calibrate_readout(
    executor: &dyn Executor,
    shots: u64,
    rng: &mut dyn RngCore,
) -> ReadoutCalibration {
    assert!(shots > 0, "need at least one calibration shot");
    let n = executor.n_qubits();
    let zeros_log = executor.run(&Circuit::new(n), shots, rng);
    let ones_log = executor.run(
        &Circuit::basis_state_preparation(BitString::ones(n)),
        shots,
        rng,
    );
    let pairs = (0..n)
        .map(|q| {
            let p01 = zeros_log.marginalize(&[q]).frequency(&ones_bit());
            let p10 = ones_log.marginalize(&[q]).frequency(&zero_bit());
            FlipPair::new(p01, p10)
        })
        .collect();
    ReadoutCalibration {
        pairs,
        shots_per_state: shots,
    }
}

fn ones_bit() -> BitString {
    BitString::ones(1)
}

fn zero_bit() -> BitString {
    BitString::zeros(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use crate::executor::NoisyExecutor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[allow(clippy::needless_range_loop)] // q indexes two parallel tables
    fn calibration_recovers_effective_pairs() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let mut rng = StdRng::seed_from_u64(1);
        let cal = calibrate_readout(&exec, 40_000, &mut rng);
        let truth = dev.effective_pairs();
        for q in 0..5 {
            assert!(
                (cal.pair(q).p01 - truth[q].p01).abs() < 0.01,
                "q{q} p01: {} vs {}",
                cal.pair(q).p01,
                truth[q].p01
            );
            assert!(
                (cal.pair(q).p10 - truth[q].p10).abs() < 0.01,
                "q{q} p10: {} vs {}",
                cal.pair(q).p10,
                truth[q].p10
            );
        }
    }

    #[test]
    fn calibration_stats_track_table1_effective_errors() {
        let dev = DeviceModel::ibmq_melbourne();
        let exec = NoisyExecutor::readout_only(&dev);
        let mut rng = StdRng::seed_from_u64(2);
        let cal = calibrate_readout(&exec, 20_000, &mut rng);
        let eff: Vec<f64> = dev
            .effective_pairs()
            .iter()
            .map(|p| p.mean_error())
            .collect();
        let (tmin, tavg, tmax) = qstats_min_avg_max(&eff);
        let (min, avg, max) = cal.error_stats();
        assert!((avg - tavg).abs() < 0.01, "avg {avg} vs {tavg}");
        assert!((min - tmin).abs() < 0.01);
        assert!((max - tmax).abs() < 0.02);
    }

    #[test]
    fn calibration_on_crosstalk_machine_is_conservative() {
        // With all-ones preparation every crosstalk source is active, so
        // the estimated p10 of a crosstalk target is at least the base
        // effective value.
        let dev = DeviceModel::ibmqx4();
        let exec = NoisyExecutor::readout_only(&dev);
        let mut rng = StdRng::seed_from_u64(3);
        let cal = calibrate_readout(&exec, 60_000, &mut rng);
        let base = dev.effective_pairs();
        // Qubit 4 is a crosstalk target (from qubit 2).
        assert!(
            cal.pair(4).p10 > base[4].p10 + 0.03,
            "crosstalk should inflate q4's calibrated p10: {} vs base {}",
            cal.pair(4).p10,
            base[4].p10
        );
    }

    #[test]
    fn calibrated_tensor_feeds_unfolding() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let mut rng = StdRng::seed_from_u64(4);
        let cal = calibrate_readout(&exec, 30_000, &mut rng);
        let tensor = cal.to_tensor();
        assert_eq!(crate::readout::ReadoutModel::n_qubits(&tensor), 5);
        // The calibrated model's all-ones success probability is close to
        // the true channel's.
        let truth = dev.readout();
        let target = BitString::ones(5);
        let est = crate::readout::ReadoutModel::success_probability(&tensor, target);
        let true_p = crate::readout::ReadoutModel::success_probability(&truth, target);
        assert!((est - true_p).abs() < 0.03, "{est} vs {true_p}");
    }

    #[test]
    fn ideal_machine_calibrates_to_zero() {
        let dev = DeviceModel::ideal(3);
        let exec = NoisyExecutor::from_device(&dev);
        let mut rng = StdRng::seed_from_u64(5);
        let cal = calibrate_readout(&exec, 1000, &mut rng);
        for q in 0..3 {
            assert_eq!(cal.pair(q), FlipPair::IDEAL);
        }
        let (min, avg, max) = cal.error_stats();
        assert_eq!((min, avg, max), (0.0, 0.0, 0.0));
    }
}
