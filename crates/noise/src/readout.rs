//! The readout-error channel abstraction.
//!
//! Measurement on NISQ hardware is a classical channel layered on top of the
//! ideal Born-rule outcome: the device projects the register onto a basis
//! state, and the *readout chain* (relaxation during the measurement window,
//! discriminator error, amplifier crosstalk) then reports a possibly
//! different classical string. A [`ReadoutModel`] captures exactly that
//! channel: a conditional distribution `P(observed | ideal)`.
//!
//! The paper's core observation — measurement error is biased by the state
//! being measured — is a statement about this channel: its diagonal,
//! `P(s | s)`, is the *Basis Measurement Strength* (BMS) of state `s`, and
//! on real machines it decreases with the Hamming weight of `s`.

use qsim::{BitString, Counts, Distribution};
use rand::RngCore;
use std::fmt;

/// A classical noise channel applied to measurement outcomes.
///
/// Implementations must define a proper stochastic channel: for every ideal
/// state, the observation probabilities over all `2^n` outcomes sum to 1.
/// The property-based tests in this crate enforce this for the provided
/// models.
pub trait ReadoutModel: fmt::Debug {
    /// The register width the channel acts on.
    fn n_qubits(&self) -> usize;

    /// Samples an observed outcome for a given ideal measurement result.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `ideal.width() != self.n_qubits()`.
    fn corrupt(&self, ideal: BitString, rng: &mut dyn RngCore) -> BitString;

    /// The exact conditional probability `P(observed | ideal)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the widths do not match `n_qubits()`.
    fn confusion(&self, ideal: BitString, observed: BitString) -> f64;

    /// The probability that `ideal` is read back correctly — the Basis
    /// Measurement Strength (BMS) of the state.
    fn success_probability(&self, ideal: BitString) -> f64 {
        self.confusion(ideal, ideal)
    }

    /// Pushes an exact distribution over ideal outcomes through the channel.
    ///
    /// The default implementation sums `P(obs|ideal) · p(ideal)` over all
    /// pairs and therefore costs `O(4^n)`; models with product structure
    /// override it with an `O(n·2^n)` routine.
    ///
    /// # Panics
    ///
    /// Panics if `d.width() != self.n_qubits()`, or (default implementation
    /// only) if `n_qubits() > 14`, where the dense quadratic sum becomes
    /// unreasonable.
    fn apply_to_distribution(&self, d: &Distribution) -> Distribution {
        let n = self.n_qubits();
        assert_eq!(d.width(), n, "distribution width mismatch");
        assert!(
            n <= 14,
            "dense O(4^n) channel application limited to 14 qubits"
        );
        let dim = 1usize << n;
        let mut out = vec![0.0; dim];
        for ideal_idx in 0..dim {
            let p = d.probabilities()[ideal_idx];
            if p == 0.0 {
                continue;
            }
            let ideal = BitString::from_value(ideal_idx as u64, n);
            for (obs_idx, out_p) in out.iter_mut().enumerate() {
                let obs = BitString::from_value(obs_idx as u64, n);
                *out_p += p * self.confusion(ideal, obs);
            }
        }
        Distribution::from_probabilities(n, out)
    }

    /// Corrupts every outcome of a log of ideal measurement results,
    /// producing the log an experimenter would actually see.
    ///
    /// # Panics
    ///
    /// Panics if `ideal.width() != self.n_qubits()`.
    fn corrupt_counts(&self, ideal: &Counts, rng: &mut dyn RngCore) -> Counts {
        assert_eq!(ideal.width(), self.n_qubits(), "counts width mismatch");
        let mut out = Counts::new(ideal.width());
        for (s, &n) in ideal.iter() {
            for _ in 0..n {
                out.record(self.corrupt(*s, rng));
            }
        }
        out
    }
}

/// A perfect readout chain: observations always equal the ideal outcome.
///
/// # Examples
///
/// ```
/// use qnoise::{IdealReadout, ReadoutModel};
/// use qsim::BitString;
///
/// let r = IdealReadout::new(5);
/// assert_eq!(r.success_probability(BitString::ones(5)), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdealReadout {
    n_qubits: usize,
}

impl IdealReadout {
    /// Creates an ideal readout over `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        IdealReadout { n_qubits }
    }
}

impl ReadoutModel for IdealReadout {
    fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    fn corrupt(&self, ideal: BitString, _rng: &mut dyn RngCore) -> BitString {
        assert_eq!(ideal.width(), self.n_qubits, "width mismatch");
        ideal
    }

    fn confusion(&self, ideal: BitString, observed: BitString) -> f64 {
        assert_eq!(ideal.width(), self.n_qubits, "width mismatch");
        assert_eq!(observed.width(), self.n_qubits, "width mismatch");
        if ideal == observed {
            1.0
        } else {
            0.0
        }
    }

    fn apply_to_distribution(&self, d: &Distribution) -> Distribution {
        assert_eq!(d.width(), self.n_qubits, "distribution width mismatch");
        d.clone()
    }
}

/// The asymmetric error pair of one qubit's readout: `p01 = P(read 1 | is 0)`
/// and `p10 = P(read 0 | is 1)`.
///
/// On superconducting hardware `p10 > p01` because the excited state relaxes
/// toward ground during the measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlipPair {
    /// Probability of reading 1 when the qubit is in state 0.
    pub p01: f64,
    /// Probability of reading 0 when the qubit is in state 1.
    pub p10: f64,
}

impl FlipPair {
    /// Creates a flip pair, validating both probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(p01: f64, p10: f64) -> Self {
        assert!((0.0..=1.0).contains(&p01), "p01 = {p01} out of range");
        assert!((0.0..=1.0).contains(&p10), "p10 = {p10} out of range");
        FlipPair { p01, p10 }
    }

    /// A symmetric flip pair.
    pub fn symmetric(p: f64) -> Self {
        FlipPair::new(p, p)
    }

    /// No error at all.
    pub const IDEAL: FlipPair = FlipPair { p01: 0.0, p10: 0.0 };

    /// The flip probability given the qubit's ideal value.
    #[inline]
    pub fn flip_probability(&self, ideal_bit: bool) -> f64 {
        if ideal_bit {
            self.p10
        } else {
            self.p01
        }
    }

    /// The mean assignment error `(p01 + p10) / 2` — the figure IBM reports
    /// as a qubit's "readout error" (paper Table 1).
    #[inline]
    pub fn mean_error(&self) -> f64 {
        0.5 * (self.p01 + self.p10)
    }

    /// Composes relaxation during the measurement window into this pair.
    ///
    /// A qubit in `|1⟩` decays to `|0⟩` with probability
    /// `p_decay = 1 − exp(−t_meas / T1)` *before* the discriminator acts, so
    /// the effective error becomes
    /// `p10' = p_decay · (1 − p01) + (1 − p_decay) · p10` (a decayed qubit is
    /// read as 0 unless the discriminator then mis-reads the relaxed 0), and
    /// `p01` is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `t_meas_us` is negative or `t1_us` is not positive.
    #[must_use]
    pub fn with_t1_decay(&self, t1_us: f64, t_meas_us: f64) -> FlipPair {
        assert!(
            t_meas_us >= 0.0,
            "measurement duration must be non-negative"
        );
        assert!(t1_us > 0.0, "T1 must be positive");
        let p_decay = 1.0 - (-t_meas_us / t1_us).exp();
        FlipPair::new(
            self.p01,
            p_decay * (1.0 - self.p01) + (1.0 - p_decay) * self.p10,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn ideal_readout_is_identity() {
        let r = IdealReadout::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        for v in 0..8u64 {
            let s = BitString::from_value(v, 3);
            assert_eq!(r.corrupt(s, &mut rng), s);
            assert_eq!(r.confusion(s, s), 1.0);
            assert_eq!(r.success_probability(s), 1.0);
        }
        assert_eq!(r.confusion(bs("000"), bs("001")), 0.0);
    }

    #[test]
    fn ideal_readout_preserves_distribution() {
        let d = Distribution::uniform(3);
        let r = IdealReadout::new(3);
        assert_eq!(r.apply_to_distribution(&d), d);
    }

    #[test]
    fn flip_pair_validation() {
        let p = FlipPair::new(0.01, 0.1);
        assert_eq!(p.flip_probability(false), 0.01);
        assert_eq!(p.flip_probability(true), 0.1);
        assert!((p.mean_error() - 0.055).abs() < 1e-12);
        assert!(std::panic::catch_unwind(|| FlipPair::new(1.5, 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| FlipPair::new(0.0, -0.1)).is_err());
    }

    #[test]
    fn t1_decay_composition() {
        // No decay window: unchanged.
        let p = FlipPair::new(0.02, 0.05);
        let same = p.with_t1_decay(50.0, 0.0);
        assert!((same.p10 - 0.05).abs() < 1e-12);
        // Long window: p10 approaches 1 - p01 (fully decayed, then the
        // discriminator can still flip the relaxed 0 into a 1).
        let decayed = p.with_t1_decay(1.0, 1000.0);
        assert!((decayed.p10 - 0.98).abs() < 1e-9);
        assert_eq!(decayed.p01, 0.02);
        // Moderate window increases p10 monotonically.
        let mid = p.with_t1_decay(60.0, 6.0);
        assert!(mid.p10 > 0.05 && mid.p10 < 0.98);
    }

    #[test]
    fn corrupt_counts_keeps_total() {
        let r = IdealReadout::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Counts::new(2);
        c.record_n(bs("01"), 10);
        c.record_n(bs("10"), 5);
        let out = r.corrupt_counts(&c, &mut rng);
        assert_eq!(out.total(), 15);
        assert_eq!(out.get(&bs("01")), 10);
    }
}
