//! Correlated readout error: crosstalk between qubits during measurement.
//!
//! On some machines (the paper singles out ibmqx4) the measurement strength
//! of a basis state is *not* a monotone function of its Hamming weight —
//! the bias is "arbitrary" yet repeatable (§6.1). Physically this arises
//! from readout crosstalk: an excited neighbour shifts a qubit's resonator
//! response and raises its misassignment probability. [`CorrelatedReadout`]
//! models exactly that: a tensor-product base channel plus pairwise terms
//! that add error to a target qubit whenever a source qubit's *ideal* value
//! is 1.
//!
//! Conditioned on the ideal state the per-qubit flips remain independent, so
//! exact success probabilities are still `O(n)` — which is what makes exact
//! RBMS computation feasible for the 14-qubit device model.

use crate::readout::{FlipPair, ReadoutModel};
use crate::tensor::TensorReadout;
use qsim::BitString;
use rand::{Rng, RngCore};

/// A pairwise readout-crosstalk term: when `source`'s ideal value is 1, the
/// flip probabilities of `target` increase by `extra`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crosstalk {
    /// The qubit whose excitation perturbs the neighbour's readout.
    pub source: usize,
    /// The qubit whose readout error increases.
    pub target: usize,
    /// Additional flip probability added to both error directions of
    /// `target` (clamped so the total stays ≤ 1).
    pub extra: f64,
}

impl Crosstalk {
    /// Creates a crosstalk term.
    ///
    /// # Panics
    ///
    /// Panics if `source == target` or `extra` is outside `[0, 1]`.
    pub fn new(source: usize, target: usize, extra: f64) -> Self {
        assert_ne!(source, target, "crosstalk source and target must differ");
        assert!((0.0..=1.0).contains(&extra), "extra = {extra} out of range");
        Crosstalk {
            source,
            target,
            extra,
        }
    }
}

/// A readout channel with per-qubit asymmetric error plus excited-neighbour
/// crosstalk.
///
/// # Examples
///
/// Crosstalk makes two states of equal Hamming weight differ in strength —
/// the "arbitrary bias" of ibmqx4:
///
/// ```
/// use qnoise::{CorrelatedReadout, Crosstalk, FlipPair, ReadoutModel, TensorReadout};
///
/// let base = TensorReadout::uniform(3, FlipPair::new(0.02, 0.05));
/// let r = CorrelatedReadout::new(base, vec![Crosstalk::new(0, 1, 0.20)]);
/// let with_source = r.success_probability("001".parse().unwrap());
/// let without = r.success_probability("100".parse().unwrap());
/// assert!(with_source < without); // same weight, different strength
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedReadout {
    base: TensorReadout,
    crosstalk: Vec<Crosstalk>,
}

impl CorrelatedReadout {
    /// Creates the channel from a base tensor channel and crosstalk terms.
    ///
    /// # Panics
    ///
    /// Panics if any crosstalk term references a qubit outside the base
    /// channel's register.
    pub fn new(base: TensorReadout, crosstalk: Vec<Crosstalk>) -> Self {
        let n = base.n_qubits();
        for c in &crosstalk {
            assert!(
                c.source < n && c.target < n,
                "crosstalk ({}, {}) out of range for {n} qubits",
                c.source,
                c.target
            );
        }
        CorrelatedReadout { base, crosstalk }
    }

    /// A channel with no crosstalk (equivalent to the base tensor channel).
    pub fn from_tensor(base: TensorReadout) -> Self {
        CorrelatedReadout {
            base,
            crosstalk: Vec::new(),
        }
    }

    /// The base per-qubit channel.
    pub fn base(&self) -> &TensorReadout {
        &self.base
    }

    /// The crosstalk terms.
    pub fn crosstalk(&self) -> &[Crosstalk] {
        &self.crosstalk
    }

    /// The effective flip pair of qubit `q` given the full ideal state
    /// (base error plus contributions from excited crosstalk sources).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or `ideal.width()` mismatches.
    pub fn effective_pair(&self, q: usize, ideal: BitString) -> FlipPair {
        assert_eq!(ideal.width(), self.n_qubits(), "width mismatch");
        let mut pair = self.base.pair(q);
        let mut extra = 0.0;
        for c in &self.crosstalk {
            if c.target == q && ideal.bit(c.source) {
                extra += c.extra;
            }
        }
        if extra > 0.0 {
            pair = FlipPair::new((pair.p01 + extra).min(1.0), (pair.p10 + extra).min(1.0));
        }
        pair
    }
}

impl ReadoutModel for CorrelatedReadout {
    fn n_qubits(&self) -> usize {
        self.base.n_qubits()
    }

    fn corrupt(&self, ideal: BitString, rng: &mut dyn RngCore) -> BitString {
        assert_eq!(ideal.width(), self.n_qubits(), "width mismatch");
        let mut out = ideal;
        for q in 0..self.n_qubits() {
            let p = self.effective_pair(q, ideal).flip_probability(ideal.bit(q));
            if p > 0.0 && rng.gen::<f64>() < p {
                out = out.with_flipped(q);
            }
        }
        out
    }

    fn confusion(&self, ideal: BitString, observed: BitString) -> f64 {
        assert_eq!(ideal.width(), self.n_qubits(), "width mismatch");
        assert_eq!(observed.width(), self.n_qubits(), "width mismatch");
        let mut p = 1.0;
        for q in 0..self.n_qubits() {
            let flip = self.effective_pair(q, ideal).flip_probability(ideal.bit(q));
            p *= if ideal.bit(q) == observed.bit(q) {
                1.0 - flip
            } else {
                flip
            };
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::Distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    fn sample_channel() -> CorrelatedReadout {
        let base = TensorReadout::new(vec![
            FlipPair::new(0.02, 0.08),
            FlipPair::new(0.01, 0.05),
            FlipPair::new(0.03, 0.10),
        ]);
        CorrelatedReadout::new(
            base,
            vec![Crosstalk::new(0, 1, 0.15), Crosstalk::new(2, 1, 0.05)],
        )
    }

    #[test]
    fn no_crosstalk_matches_tensor() {
        let base = TensorReadout::uniform(3, FlipPair::new(0.1, 0.2));
        let corr = CorrelatedReadout::from_tensor(base.clone());
        for v in 0..8u64 {
            let ideal = BitString::from_value(v, 3);
            for o in 0..8u64 {
                let obs = BitString::from_value(o, 3);
                assert!((corr.confusion(ideal, obs) - base.confusion(ideal, obs)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn effective_pair_accumulates_sources() {
        let r = sample_channel();
        // q1 with neither source excited: base error.
        assert_eq!(r.effective_pair(1, bs("000")), FlipPair::new(0.01, 0.05));
        // q0 excited adds 0.15.
        let p = r.effective_pair(1, bs("001"));
        assert!((p.p01 - 0.16).abs() < 1e-12);
        assert!((p.p10 - 0.20).abs() < 1e-12);
        // Both sources excited add 0.20 total.
        let p = r.effective_pair(1, bs("101"));
        assert!((p.p01 - 0.21).abs() < 1e-12);
        assert!((p.p10 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rows_sum_to_one() {
        let r = sample_channel();
        for v in 0..8u64 {
            let ideal = BitString::from_value(v, 3);
            let total: f64 = (0..8u64)
                .map(|o| r.confusion(ideal, BitString::from_value(o, 3)))
                .sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn crosstalk_breaks_hamming_monotonicity() {
        // Strong crosstalk 0 -> 2 makes a weight-1 state with q0 set weaker
        // than a weight-2 state that avoids it.
        let base = TensorReadout::uniform(3, FlipPair::new(0.01, 0.02));
        let r = CorrelatedReadout::new(base, vec![Crosstalk::new(0, 2, 0.5)]);
        let weight1 = r.success_probability(bs("001")); // q0 set, crosstalk active
        let weight2 = r.success_probability(bs("110")); // q0 clear
        assert!(
            weight1 < weight2,
            "expected crosstalk state ({weight1}) weaker than heavier state ({weight2})"
        );
    }

    #[test]
    fn clamping_at_probability_one() {
        let base = TensorReadout::uniform(2, FlipPair::new(0.9, 0.9));
        let r = CorrelatedReadout::new(base, vec![Crosstalk::new(0, 1, 0.5)]);
        let p = r.effective_pair(1, bs("01"));
        assert_eq!(p.p01, 1.0);
        assert_eq!(p.p10, 1.0);
        // Confusion still a valid distribution.
        let total: f64 = (0..4u64)
            .map(|o| r.confusion(bs("01"), BitString::from_value(o, 2)))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_exact_probabilities() {
        let r = sample_channel();
        let ideal = bs("101");
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000u64;
        let mut counts = qsim::Counts::new(3);
        for _ in 0..n {
            counts.record(r.corrupt(ideal, &mut rng));
        }
        for o in 0..8u64 {
            let obs = BitString::from_value(o, 3);
            let expect = r.confusion(ideal, obs);
            assert!(
                (counts.frequency(&obs) - expect).abs() < 0.01,
                "{obs}: {} vs {expect}",
                counts.frequency(&obs)
            );
        }
    }

    #[test]
    fn default_distribution_push_is_stochastic() {
        let r = sample_channel();
        let d = Distribution::uniform(3);
        let out = r.apply_to_distribution(&d);
        assert!((out.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_crosstalk_panics() {
        CorrelatedReadout::new(
            TensorReadout::uniform(2, FlipPair::IDEAL),
            vec![Crosstalk::new(0, 5, 0.1)],
        );
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn self_crosstalk_panics() {
        Crosstalk::new(1, 1, 0.1);
    }
}
