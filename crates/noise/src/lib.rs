//! # qnoise — NISQ noise models for the Invert-and-Measure reproduction
//!
//! This crate implements the error physics behind Tannu & Qureshi's
//! MICRO-52 2019 observations:
//!
//! * [`ReadoutModel`] — the classical channel layered over ideal
//!   measurement, with [`TensorReadout`] (independent asymmetric per-qubit
//!   error) and [`CorrelatedReadout`] (plus excited-neighbour crosstalk);
//! * [`FlipPair::with_t1_decay`] — relaxation during the measurement window,
//!   the physical origin of the paper's Hamming-weight bias;
//! * [`GateNoise`] — depolarizing gate errors via Pauli trajectories;
//! * [`DeviceModel`] — calibrated models of ibmqx2, ibmqx4, and
//!   ibmq-melbourne matching the paper's Table 1 and bias figures;
//! * [`Executor`] / [`NoisyExecutor`] — the repeated-trial NISQ execution
//!   loop;
//! * [`CalibrationDrift`] — day-to-day parameter drift for the
//!   repeatability study (§6.1).
//!
//! ## Example
//!
//! Reproduce the paper's Figure 1 effect in a few lines: the all-ones state
//! is far weaker than the all-zeros state, and inverting before measurement
//! recovers most of the loss.
//!
//! ```
//! use qnoise::{DeviceModel, ReadoutModel};
//! use qsim::BitString;
//!
//! let readout = DeviceModel::ibmqx2().readout();
//! let strong = readout.success_probability(BitString::zeros(5));
//! let weak = readout.success_probability(BitString::ones(5));
//! assert!(weak < 0.6 * strong); // state-dependent bias
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibration;
pub mod correlated;
pub mod device;
pub mod drift;
pub mod executor;
pub mod gate_noise;
pub mod readout;
pub mod tensor;

pub use calibration::{calibrate_readout, ReadoutCalibration};
pub use correlated::{CorrelatedReadout, Crosstalk};
pub use device::{DeviceModel, QubitSpec};
pub use drift::{drift_score, CalibrationDrift};
pub use executor::{Executor, IdealExecutor, NoisyExecutor};
pub use gate_noise::GateNoise;
pub use readout::{FlipPair, IdealReadout, ReadoutModel};
pub use tensor::TensorReadout;
