//! Calibration drift across measurement windows.
//!
//! The paper (§6.1) tested whether ibmqx4's arbitrary measurement bias is
//! repeatable by re-measuring it for 35 days across 100 calibration cycles
//! and found that it is. This module models that setting: each calibration
//! window perturbs the device's parameters multiplicatively by a bounded
//! random factor, so the bias *fluctuates* but its structure persists. The
//! repeatability experiment and the drift-robustness tests are built on it.

use crate::device::{DeviceModel, QubitSpec};
use crate::readout::FlipPair;
use rand::{Rng, RngCore, SeedableRng};

/// Generates drifted snapshots of a device, one per calibration window.
///
/// # Examples
///
/// ```
/// use qnoise::{CalibrationDrift, DeviceModel};
///
/// let drift = CalibrationDrift::new(DeviceModel::ibmqx4(), 0.10);
/// let day1 = drift.window(1);
/// let day2 = drift.window(2);
/// // Same structure, perturbed parameters.
/// assert_eq!(day1.n_qubits(), 5);
/// assert_ne!(
///     day1.qubit(4).assignment.p10,
///     day2.qubit(4).assignment.p10,
/// );
/// ```
#[derive(Debug, Clone)]
pub struct CalibrationDrift {
    nominal: DeviceModel,
    relative_amplitude: f64,
    seed: u64,
}

impl CalibrationDrift {
    /// Creates a drift generator around a nominal device.
    ///
    /// `relative_amplitude` is the maximum relative perturbation of each
    /// error parameter per window (e.g. `0.10` lets every rate move ±10 %).
    ///
    /// # Panics
    ///
    /// Panics if `relative_amplitude` is outside `[0, 1)`.
    pub fn new(nominal: DeviceModel, relative_amplitude: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&relative_amplitude),
            "relative amplitude must be in [0, 1)"
        );
        CalibrationDrift {
            nominal,
            relative_amplitude,
            seed: 0x1b3_5de7,
        }
    }

    /// Overrides the base seed so independent experiments can draw distinct
    /// drift sequences.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The undrifted device.
    pub fn nominal(&self) -> &DeviceModel {
        &self.nominal
    }

    /// The device as calibrated in window `index`. Deterministic: the same
    /// index always yields the same snapshot.
    pub fn window(&self, index: u64) -> DeviceModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed.wrapping_add(index));
        let n = self.nominal.n_qubits();
        let qubits: Vec<QubitSpec> = (0..n)
            .map(|q| {
                let spec = self.nominal.qubit(q);
                QubitSpec {
                    t1_us: spec.t1_us * self.factor(&mut rng),
                    assignment: FlipPair::new(
                        (spec.assignment.p01 * self.factor(&mut rng)).min(1.0),
                        (spec.assignment.p10 * self.factor(&mut rng)).min(1.0),
                    ),
                    gate_error_1q: (spec.gate_error_1q * self.factor(&mut rng)).min(1.0),
                }
            })
            .collect();
        DeviceModel::from_parts(
            format!("{}@w{index}", self.nominal.name()),
            qubits,
            self.nominal.coupling().to_vec(),
            // Coupling-wide parameters drift with a single shared factor.
            (self.nominal_2q_error() * self.factor(&mut rng)).min(1.0),
            Vec::new(),
            self.nominal.meas_duration_us(),
            self.nominal.readout_crosstalk(),
        )
    }

    fn factor(&self, rng: &mut dyn RngCore) -> f64 {
        1.0 + self.relative_amplitude * (2.0 * rng.gen::<f64>() - 1.0)
    }

    fn nominal_2q_error(&self) -> f64 {
        // The nominal's default 2q error is not directly exposed; recover it
        // from the gate-noise model on the first coupling edge or fall back
        // to an uncoupled probe.
        let gn = self.nominal.gate_noise();
        if let Some(&(a, b)) = self.nominal.coupling().first() {
            gn.gate_error(&qsim::Gate::Cx {
                control: a,
                target: b,
            })
        } else if self.nominal.n_qubits() >= 2 {
            gn.gate_error(&qsim::Gate::Cx {
                control: 0,
                target: 1,
            })
        } else {
            0.0
        }
    }
}

impl DeviceModel {
    /// The device's readout crosstalk terms (exposed for drift snapshots).
    pub fn readout_crosstalk(&self) -> Vec<crate::correlated::Crosstalk> {
        self.readout().crosstalk().to_vec()
    }
}

/// How far device snapshot `b` has drifted from snapshot `a`: the mean
/// relative deviation over every per-qubit error parameter (both assignment
/// rates, the 1q gate error, and T1).
///
/// Two snapshots of the same calibration are at distance `0`; a snapshot
/// whose every parameter moved by 10 % scores `0.10`. The mitigation
/// service's profile cache uses this as its invalidation hook: a cached
/// RBMS profile is served only while the current calibration's score
/// against the profiled calibration stays below a threshold (§6.1's
/// repeatability claim is exactly that the score stays small across
/// windows).
///
/// # Panics
///
/// Panics if the two devices have different qubit counts.
pub fn drift_score(a: &DeviceModel, b: &DeviceModel) -> f64 {
    assert_eq!(
        a.n_qubits(),
        b.n_qubits(),
        "drift score needs devices of equal width"
    );
    let rel = |x: f64, y: f64| {
        let scale = x.abs().max(1e-12);
        (y - x).abs() / scale
    };
    let mut total = 0.0;
    let mut terms = 0usize;
    for q in 0..a.n_qubits() {
        let (qa, qb) = (a.qubit(q), b.qubit(q));
        total += rel(qa.assignment.p01, qb.assignment.p01);
        total += rel(qa.assignment.p10, qb.assignment.p10);
        total += rel(qa.gate_error_1q, qb.gate_error_1q);
        total += rel(qa.t1_us, qb.t1_us);
        terms += 4;
    }
    total / terms as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readout::ReadoutModel;
    use qsim::BitString;

    #[test]
    fn windows_are_deterministic() {
        let drift = CalibrationDrift::new(DeviceModel::ibmqx4(), 0.1);
        assert_eq!(drift.window(5), drift.window(5));
        assert_ne!(drift.window(5), drift.window(6));
    }

    #[test]
    fn drift_stays_within_amplitude() {
        let nominal = DeviceModel::ibmqx2();
        let drift = CalibrationDrift::new(nominal.clone(), 0.2);
        for w in 0..20 {
            let snap = drift.window(w);
            for q in 0..nominal.n_qubits() {
                let a = nominal.qubit(q).assignment.p10;
                let b = snap.qubit(q).assignment.p10;
                assert!(
                    (b / a - 1.0).abs() <= 0.2 + 1e-12,
                    "window {w} qubit {q}: {b} vs nominal {a}"
                );
            }
        }
    }

    #[test]
    fn bias_structure_is_repeatable_across_windows() {
        // The paper's §6.1 claim: the *ranking* of weak and strong states is
        // stable across calibration cycles. Check rank correlation between
        // two windows' BMS orderings.
        let drift = CalibrationDrift::new(DeviceModel::ibmqx4(), 0.1).with_seed(7);
        let rank = |dev: &DeviceModel| {
            let r = dev.readout();
            let mut states: Vec<BitString> = BitString::all(5).collect();
            states.sort_by(|a, b| {
                r.success_probability(*a)
                    .partial_cmp(&r.success_probability(*b))
                    .unwrap()
            });
            states
        };
        let r1 = rank(&drift.window(1));
        let r2 = rank(&drift.window(50));
        // The weakest four and strongest four states should largely agree.
        let head_overlap = r1[..4].iter().filter(|s| r2[..4].contains(s)).count();
        let tail_overlap = r1[28..].iter().filter(|s| r2[28..].contains(s)).count();
        assert!(
            head_overlap >= 3,
            "weak states not repeatable: {head_overlap}"
        );
        assert!(
            tail_overlap >= 3,
            "strong states not repeatable: {tail_overlap}"
        );
    }

    #[test]
    fn window_is_deterministic_for_a_fixed_seed_across_calls() {
        // The profile cache keys on the window index, so window(k) must be
        // a pure function of (nominal, amplitude, seed, k) — across repeated
        // calls AND across independently constructed generators.
        let make = || CalibrationDrift::new(DeviceModel::ibmqx4(), 0.15).with_seed(42);
        let drift = make();
        for k in [0u64, 1, 7, 100] {
            let first = drift.window(k);
            let second = drift.window(k);
            assert_eq!(first, second, "repeated call differs for window {k}");
            assert_eq!(
                first,
                make().window(k),
                "fresh generator differs for window {k}"
            );
        }
    }

    #[test]
    fn crosstalk_structure_is_preserved_under_drift() {
        // Cache-invalidation contract: drift perturbs rates but never the
        // crosstalk graph, so a drifted snapshot's correlated-readout
        // structure matches the nominal device's term for term.
        let nominal = DeviceModel::ibmqx4();
        let base = nominal.readout_crosstalk();
        assert!(!base.is_empty(), "ibmqx4 should model crosstalk");
        let drift = CalibrationDrift::new(nominal, 0.2).with_seed(9);
        for w in [1u64, 13, 64] {
            let snap = drift.window(w).readout_crosstalk();
            assert_eq!(snap.len(), base.len());
            for (s, b) in snap.iter().zip(&base) {
                assert_eq!(s.source, b.source, "window {w}");
                assert_eq!(s.target, b.target, "window {w}");
                assert_eq!(s.extra, b.extra, "window {w}");
            }
        }
    }

    #[test]
    fn drift_score_is_zero_on_identical_snapshots_and_grows_with_amplitude() {
        let nominal = DeviceModel::ibmqx2();
        assert_eq!(drift_score(&nominal, &nominal), 0.0);
        let drift = CalibrationDrift::new(nominal.clone(), 0.1);
        let w = drift.window(4);
        assert_eq!(drift_score(&nominal, &w), drift_score(&nominal, &w));
        let small = drift_score(
            &nominal,
            &CalibrationDrift::new(nominal.clone(), 0.02).window(4),
        );
        let large = drift_score(
            &nominal,
            &CalibrationDrift::new(nominal.clone(), 0.3).window(4),
        );
        assert!(small < large, "{small} vs {large}");
        assert!(
            large <= 0.3 + 1e-12,
            "score bounded by the amplitude: {large}"
        );
    }

    #[test]
    fn zero_amplitude_keeps_error_rates() {
        let nominal = DeviceModel::ibmqx2();
        let drift = CalibrationDrift::new(nominal.clone(), 0.0);
        let snap = drift.window(3);
        for q in 0..nominal.n_qubits() {
            assert_eq!(snap.qubit(q).assignment, nominal.qubit(q).assignment);
        }
    }
}
