//! Tensor-product (independent per-qubit) readout error.
//!
//! Each qubit is read through its own asymmetric binary channel
//! ([`FlipPair`]); qubits do not interact. This is the model behind the
//! paper's Hamming-weight observation: because `p10 > p01` on every qubit,
//! the success probability of a basis state is
//! `∏_{i: s_i=0} (1 − p01_i) · ∏_{i: s_i=1} (1 − p10_i)`, which decays with
//! the number of ones.

use crate::readout::{FlipPair, ReadoutModel};
use qsim::{BitString, Distribution};
use rand::{Rng, RngCore};

/// An independent per-qubit asymmetric readout channel.
///
/// # Examples
///
/// A strongly biased 2-qubit readout: the all-ones state is much weaker than
/// the all-zeros state.
///
/// ```
/// use qnoise::{FlipPair, ReadoutModel, TensorReadout};
/// use qsim::BitString;
///
/// let r = TensorReadout::new(vec![
///     FlipPair::new(0.01, 0.15),
///     FlipPair::new(0.02, 0.20),
/// ]);
/// let strong = r.success_probability(BitString::zeros(2));
/// let weak = r.success_probability(BitString::ones(2));
/// assert!(strong > 0.95 && weak < 0.70);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TensorReadout {
    pairs: Vec<FlipPair>,
}

impl TensorReadout {
    /// Creates a channel from per-qubit flip pairs.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty or longer than [`qsim::MAX_WIDTH`].
    pub fn new(pairs: Vec<FlipPair>) -> Self {
        assert!(
            !pairs.is_empty() && pairs.len() <= qsim::MAX_WIDTH,
            "need between 1 and 64 qubits"
        );
        TensorReadout { pairs }
    }

    /// A uniform channel: every qubit has the same flip pair.
    pub fn uniform(n_qubits: usize, pair: FlipPair) -> Self {
        TensorReadout::new(vec![pair; n_qubits])
    }

    /// The per-qubit flip pairs.
    pub fn pairs(&self) -> &[FlipPair] {
        &self.pairs
    }

    /// The flip pair of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn pair(&self, q: usize) -> FlipPair {
        self.pairs[q]
    }

    /// Restricts the channel to a subset of qubits (used by the
    /// sliding-window AWCT characterization, which reasons about windows of
    /// the register).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `qubits` is empty.
    pub fn subset(&self, qubits: &[usize]) -> TensorReadout {
        TensorReadout::new(qubits.iter().map(|&q| self.pairs[q]).collect())
    }
}

impl ReadoutModel for TensorReadout {
    fn n_qubits(&self) -> usize {
        self.pairs.len()
    }

    fn corrupt(&self, ideal: BitString, rng: &mut dyn RngCore) -> BitString {
        assert_eq!(ideal.width(), self.n_qubits(), "width mismatch");
        let mut out = ideal;
        for (q, pair) in self.pairs.iter().enumerate() {
            let p = pair.flip_probability(ideal.bit(q));
            if p > 0.0 && rng.gen::<f64>() < p {
                out = out.with_flipped(q);
            }
        }
        out
    }

    fn confusion(&self, ideal: BitString, observed: BitString) -> f64 {
        assert_eq!(ideal.width(), self.n_qubits(), "width mismatch");
        assert_eq!(observed.width(), self.n_qubits(), "width mismatch");
        let mut p = 1.0;
        for (q, pair) in self.pairs.iter().enumerate() {
            let flip = pair.flip_probability(ideal.bit(q));
            p *= if ideal.bit(q) == observed.bit(q) {
                1.0 - flip
            } else {
                flip
            };
        }
        p
    }

    /// Product channels factor per qubit, so the distribution can be pushed
    /// through one qubit at a time in `O(n · 2^n)`.
    fn apply_to_distribution(&self, d: &Distribution) -> Distribution {
        let n = self.n_qubits();
        assert_eq!(d.width(), n, "distribution width mismatch");
        let mut p = d.probabilities().to_vec();
        for (q, pair) in self.pairs.iter().enumerate() {
            let bit = 1usize << q;
            let mut base = 0usize;
            while base < p.len() {
                for offset in 0..bit {
                    let i0 = base + offset;
                    let i1 = i0 | bit;
                    let p0 = p[i0];
                    let p1 = p[i1];
                    p[i0] = (1.0 - pair.p01) * p0 + pair.p10 * p1;
                    p[i1] = pair.p01 * p0 + (1.0 - pair.p10) * p1;
                }
                base += bit << 1;
            }
        }
        Distribution::from_probabilities(n, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::Counts;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn success_probability_is_product() {
        let r = TensorReadout::new(vec![FlipPair::new(0.1, 0.2), FlipPair::new(0.3, 0.4)]);
        // 00 read correctly: (1-0.1)(1-0.3)
        assert!((r.success_probability(bs("00")) - 0.9 * 0.7).abs() < 1e-12);
        // 11: (1-0.2)(1-0.4)
        assert!((r.success_probability(bs("11")) - 0.8 * 0.6).abs() < 1e-12);
        // 01 (q0=1, q1=0): (1-0.2)(1-0.3)
        assert!((r.success_probability(bs("01")) - 0.8 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn confusion_rows_sum_to_one() {
        let r = TensorReadout::new(vec![
            FlipPair::new(0.05, 0.17),
            FlipPair::new(0.11, 0.02),
            FlipPair::new(0.0, 0.5),
        ]);
        for v in 0..8u64 {
            let ideal = BitString::from_value(v, 3);
            let total: f64 = (0..8u64)
                .map(|o| r.confusion(ideal, BitString::from_value(o, 3)))
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "row {ideal} sums to {total}");
        }
    }

    #[test]
    fn bms_decreases_with_hamming_weight_under_bias() {
        let r = TensorReadout::uniform(5, FlipPair::new(0.01, 0.12));
        let states = BitString::all_by_hamming_weight(5);
        let mut last_weight = 0;
        let mut last_bms = f64::INFINITY;
        for s in states {
            let bms = r.success_probability(s);
            if s.hamming_weight() > last_weight {
                assert!(bms < last_bms, "BMS should fall across weight classes");
                last_weight = s.hamming_weight();
                last_bms = bms;
            }
        }
    }

    #[test]
    fn distribution_push_matches_confusion_sum() {
        let r = TensorReadout::new(vec![FlipPair::new(0.1, 0.3), FlipPair::new(0.2, 0.05)]);
        let d = Distribution::from_probabilities(2, vec![0.4, 0.3, 0.2, 0.1]);
        let fast = r.apply_to_distribution(&d);
        // Compare against the dense O(4^n) sum.
        for obs_v in 0..4u64 {
            let obs = BitString::from_value(obs_v, 2);
            let mut expect = 0.0;
            for ideal_v in 0..4u64 {
                let ideal = BitString::from_value(ideal_v, 2);
                expect += d.probability_of(ideal) * r.confusion(ideal, obs);
            }
            assert!(
                (fast.probability_of(obs) - expect).abs() < 1e-12,
                "mismatch at {obs}"
            );
        }
    }

    #[test]
    fn corrupt_sampling_matches_exact_channel() {
        let r = TensorReadout::new(vec![FlipPair::new(0.1, 0.25), FlipPair::new(0.05, 0.3)]);
        let ideal = bs("11");
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40_000u64;
        let mut counts = Counts::new(2);
        for _ in 0..n {
            counts.record(r.corrupt(ideal, &mut rng));
        }
        for obs_v in 0..4u64 {
            let obs = BitString::from_value(obs_v, 2);
            let expect = r.confusion(ideal, obs);
            assert!(
                (counts.frequency(&obs) - expect).abs() < 0.01,
                "state {obs}: {} vs {expect}",
                counts.frequency(&obs)
            );
        }
    }

    #[test]
    fn subset_selects_pairs() {
        let r = TensorReadout::new(vec![
            FlipPair::new(0.01, 0.02),
            FlipPair::new(0.03, 0.04),
            FlipPair::new(0.05, 0.06),
        ]);
        let sub = r.subset(&[2, 0]);
        assert_eq!(sub.n_qubits(), 2);
        assert_eq!(sub.pair(0), FlipPair::new(0.05, 0.06));
        assert_eq!(sub.pair(1), FlipPair::new(0.01, 0.02));
    }

    #[test]
    fn ideal_pairs_are_noise_free() {
        let r = TensorReadout::uniform(4, FlipPair::IDEAL);
        let mut rng = StdRng::seed_from_u64(9);
        for v in 0..16u64 {
            let s = BitString::from_value(v, 4);
            assert_eq!(r.corrupt(s, &mut rng), s);
            assert_eq!(r.success_probability(s), 1.0);
        }
    }
}
