//! Minimal complex-number arithmetic used throughout the simulator.
//!
//! Implemented in-crate (rather than depending on `num-complex`) so the
//! workspace stays within the approved offline dependency set. Only the
//! operations the simulator needs are provided; the type is `Copy` and all
//! operations are `#[inline]` so the optimizer treats it like a pair of
//! `f64` registers.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use qsim::c64::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// assert!((C64::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl C64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates `exp(i * theta)` — a unit-modulus phase factor.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// Creates the unit phase `exp(i * theta)`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|^2`. Cheaper than [`C64::abs`]; this is the
    /// Born-rule probability weight of an amplitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Does not panic, but returns non-finite components when `self` is zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        C64::new(self.re * k, self.im * k)
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within absolute tolerance `tol` on both
    /// components.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn constants() {
        assert_eq!(C64::ZERO + C64::ONE, C64::ONE);
        assert_eq!(C64::I * C64::I, -C64::ONE);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = C64::new(1.5, -2.5);
        let b = C64::new(-0.25, 4.0);
        assert!((a + b - b).approx_eq(a, TOL));
        let mut c = a;
        c += b;
        c -= b;
        assert!(c.approx_eq(a, TOL));
    }

    #[test]
    fn mul_matches_expansion() {
        let a = C64::new(2.0, 3.0);
        let b = C64::new(-1.0, 0.5);
        // (2+3i)(-1+0.5i) = -2 + 1i - 3i + 1.5 i^2 = -3.5 - 2i
        assert!((a * b).approx_eq(C64::new(-3.5, -2.0), TOL));
    }

    #[test]
    fn div_is_mul_inverse() {
        let a = C64::new(2.0, 3.0);
        let b = C64::new(-1.0, 0.5);
        assert!((a / b * b).approx_eq(a, 1e-10));
    }

    #[test]
    fn conj_and_norm() {
        let a = C64::new(3.0, -4.0);
        assert_eq!(a.conj(), C64::new(3.0, 4.0));
        assert!((a.norm_sqr() - 25.0).abs() < TOL);
        assert!(((a * a.conj()).re - 25.0).abs() < TOL);
        assert!((a * a.conj()).im.abs() < TOL);
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - 0.7).abs() < TOL);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let theta = k as f64 * 0.5;
            assert!((C64::cis(theta).abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn scalar_ops() {
        let a = C64::new(1.0, -1.0);
        assert_eq!(a * 2.0, C64::new(2.0, -2.0));
        assert_eq!(2.0 * a, C64::new(2.0, -2.0));
        assert_eq!(a / 2.0, C64::new(0.5, -0.5));
        assert_eq!(-a, C64::new(-1.0, 1.0));
    }

    #[test]
    fn sum_iterator() {
        let total: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert!(total.approx_eq(C64::new(6.0, 4.0), TOL));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn recip_of_zero_is_non_finite() {
        assert!(!C64::ZERO.recip().is_finite());
    }
}
