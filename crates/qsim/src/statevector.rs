//! Dense state-vector representation of an n-qubit register.
//!
//! This is the execution substrate for every experiment in the
//! reproduction: circuits are applied gate-by-gate to a `2^n` amplitude
//! vector, and measurement outcomes are sampled from the Born-rule
//! distribution. Registers up to ~20 qubits are practical; the paper's
//! machines max out at 14.

use crate::bitstring::BitString;
use crate::c64::C64;
use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::sampler::AliasSampler;
use rand::Rng;

/// A pure quantum state over `n` qubits as `2^n` complex amplitudes.
///
/// Amplitude `i` is the coefficient of the computational basis state whose
/// bit `k` equals bit `k` of `i` (qubit 0 is the least-significant bit).
///
/// # Examples
///
/// ```
/// use qsim::{Circuit, StateVector};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let psi = StateVector::from_circuit(&bell);
/// let p = psi.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12); // |00⟩
/// assert!((p[3] - 0.5).abs() < 1e-12); // |11⟩
/// assert!(p[1].abs() < 1e-12 && p[2].abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// Creates the all-zero basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is 0 or large enough that `2^n` overflows
    /// `usize` (practically, > 30 is rejected to guard against accidental
    /// exponential allocations).
    pub fn zero(n_qubits: usize) -> Self {
        assert!(
            (1..=30).contains(&n_qubits),
            "state vector limited to 1..=30 qubits"
        );
        let mut amps = vec![C64::ZERO; 1usize << n_qubits];
        amps[0] = C64::ONE;
        StateVector { n_qubits, amps }
    }

    /// Creates a basis state `|s⟩`.
    pub fn basis(s: BitString) -> Self {
        let mut sv = StateVector::zero(s.width());
        sv.amps[0] = C64::ZERO;
        sv.amps[s.index()] = C64::ONE;
        sv
    }

    /// Creates a state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two ≥ 2 or the vector is not
    /// normalized within `1e-9`.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let len = amps.len();
        assert!(len >= 2 && len.is_power_of_two(), "length must be a power of two");
        let n_qubits = len.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-9,
            "amplitudes not normalized (norm² = {norm})"
        );
        StateVector { n_qubits, amps }
    }

    /// Runs `circuit` from `|0…0⟩` and returns the final state.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut sv = StateVector::zero(circuit.n_qubits());
        sv.apply_circuit(circuit);
        sv
    }

    /// The number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The amplitudes (length `2^n`).
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// The squared 2-norm (should be 1 up to float error).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalizes in place (useful after non-unitary trajectory jumps).
    pub fn normalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > 0.0 {
            for a in &mut self.amps {
                *a = *a / n;
            }
        }
    }

    /// Applies a single gate in place.
    ///
    /// # Panics
    ///
    /// Panics if the gate references qubits outside the register.
    pub fn apply_gate(&mut self, gate: &Gate) {
        let qs = gate.qubits();
        for &q in &qs {
            assert!(q < self.n_qubits, "gate {gate} out of range");
        }
        if gate.is_two_qubit() {
            self.apply_two_qubit(gate, qs[0], qs[1]);
        } else {
            self.apply_single_qubit(gate, qs[0]);
        }
    }

    fn apply_single_qubit(&mut self, gate: &Gate, q: usize) {
        let m = gate.matrix2();
        let bit = 1usize << q;
        let dim = self.amps.len();
        // Iterate over all indices with qubit q = 0; pair with q = 1.
        let mut base = 0usize;
        while base < dim {
            for offset in 0..bit {
                let i0 = base + offset;
                let i1 = i0 | bit;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[i1] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += bit << 1;
        }
    }

    fn apply_two_qubit(&mut self, gate: &Gate, qa: usize, qb: usize) {
        // Matrix basis: index = 2*(second qubit) + (first qubit), where
        // "first" is qubits()[0] = qa.
        let m = gate.matrix4();
        let ba = 1usize << qa;
        let bb = 1usize << qb;
        let dim = self.amps.len();
        let (lo, hi) = if qa < qb { (ba, bb) } else { (bb, ba) };
        // Enumerate indices where both qa and qb bits are zero.
        let mut block = 0usize;
        while block < dim {
            // block iterates with the hi bit stripped region
            for mid in (0..hi).step_by(lo << 1) {
                for low in 0..lo {
                    let i00 = block + mid + low;
                    if i00 & lo != 0 || i00 & hi != 0 {
                        continue;
                    }
                    let i_a = i00 | ba; // qa = 1
                    let i_b = i00 | bb; // qb = 1
                    let i_ab = i00 | ba | bb;
                    // Vector order must match matrix basis |qb qa⟩:
                    // index 0 = 00, 1 = qa set, 2 = qb set, 3 = both.
                    let v = [self.amps[i00], self.amps[i_a], self.amps[i_b], self.amps[i_ab]];
                    let mut out = [C64::ZERO; 4];
                    for (r, out_r) in out.iter_mut().enumerate() {
                        for (c, vc) in v.iter().enumerate() {
                            *out_r += m[r][c] * *vc;
                        }
                    }
                    self.amps[i00] = out[0];
                    self.amps[i_a] = out[1];
                    self.amps[i_b] = out[2];
                    self.amps[i_ab] = out[3];
                }
            }
            block += hi << 1;
        }
    }

    /// Applies every gate of `circuit` in order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(
            circuit.n_qubits() <= self.n_qubits,
            "circuit acts on more qubits than the state has"
        );
        for g in circuit.gates() {
            self.apply_gate(g);
        }
    }

    /// The Born-rule probability of each basis state (length `2^n`).
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// The probability of measuring exactly `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s.width() != n_qubits`.
    pub fn probability_of(&self, s: BitString) -> f64 {
        assert_eq!(s.width(), self.n_qubits, "bit string width mismatch");
        self.amps[s.index()].norm_sqr()
    }

    /// Samples one measurement outcome from the Born distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> BitString {
        let mut u: f64 = rng.gen::<f64>() * self.norm_sqr();
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if u < p {
                return BitString::from_value(i as u64, self.n_qubits);
            }
            u -= p;
        }
        // Floating-point slack: return the last state.
        BitString::from_value((self.amps.len() - 1) as u64, self.n_qubits)
    }

    /// Builds an O(1)-per-draw alias sampler over the Born distribution.
    ///
    /// [`StateVector::sample`] scans the full amplitude vector per draw
    /// (`O(2^n)`), which dominates shot loops; building this table once per
    /// state (`O(2^n)`) amortizes that cost away. Draw indices with
    /// [`AliasSampler::sample`] and lift to outcomes with
    /// [`BitString::from_value`].
    pub fn sampler(&self) -> AliasSampler {
        AliasSampler::new(&self.probabilities())
    }

    /// The inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn inner_product(&self, other: &StateVector) -> C64 {
        assert_eq!(self.n_qubits, other.n_qubits, "dimension mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Expectation value of Z on `qubit`: `P(0) − P(1)`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn expectation_z(&self, qubit: usize) -> f64 {
        assert!(qubit < self.n_qubits, "qubit out of range");
        self.expectation_z_string(1usize << qubit)
    }

    /// Expectation value of a Z-Pauli string: `⟨Z_{i1} Z_{i2} …⟩` where the
    /// set bits of `mask` select the qubits. The QAOA cost function is a
    /// sum of such two-qubit terms, one per graph edge.
    ///
    /// `mask = 0` is the identity (expectation 1).
    ///
    /// # Panics
    ///
    /// Panics if `mask` has bits beyond the register.
    pub fn expectation_z_string(&self, mask: usize) -> f64 {
        assert!(
            mask < self.amps.len(),
            "mask {mask:#x} outside the {}-qubit register",
            self.n_qubits
        );
        let mut ez = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            // Parity of the masked bits decides the sign.
            if (i & mask).count_ones().is_multiple_of(2) {
                ez += p;
            } else {
                ez -= p;
            }
        }
        ez
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_1_SQRT_2;

    const TOL: f64 = 1e-10;

    #[test]
    fn zero_state() {
        let sv = StateVector::zero(3);
        assert_eq!(sv.amplitudes().len(), 8);
        assert!((sv.probability_of(BitString::zeros(3)) - 1.0).abs() < TOL);
        assert!((sv.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn basis_state() {
        let s: BitString = "101".parse().unwrap();
        let sv = StateVector::basis(s);
        assert!((sv.probability_of(s) - 1.0).abs() < TOL);
    }

    #[test]
    fn x_flips_each_qubit() {
        for q in 0..4 {
            let mut sv = StateVector::zero(4);
            sv.apply_gate(&Gate::X(q));
            let expect = BitString::zeros(4).with_bit(q, true);
            assert!((sv.probability_of(expect) - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn h_makes_equal_superposition() {
        let mut sv = StateVector::zero(1);
        sv.apply_gate(&Gate::H(0));
        assert!((sv.amplitudes()[0].re - FRAC_1_SQRT_2).abs() < TOL);
        assert!((sv.amplitudes()[1].re - FRAC_1_SQRT_2).abs() < TOL);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVector::from_circuit(&c);
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < TOL);
        assert!((p[3] - 0.5).abs() < TOL);
        assert!(p[1] < TOL && p[2] < TOL);
    }

    #[test]
    fn ghz_five_qubits() {
        let mut c = Circuit::new(5);
        c.h(0);
        for q in 0..4 {
            c.cx(q, q + 1);
        }
        let sv = StateVector::from_circuit(&c);
        assert!((sv.probability_of(BitString::zeros(5)) - 0.5).abs() < TOL);
        assert!((sv.probability_of(BitString::ones(5)) - 0.5).abs() < TOL);
    }

    #[test]
    fn cx_control_target_orientation() {
        // Control q1 set, target q0: |q1=1,q0=0⟩ -> |11⟩.
        let mut sv = StateVector::basis("10".parse().unwrap());
        sv.apply_gate(&Gate::Cx { control: 1, target: 0 });
        assert!((sv.probability_of("11".parse().unwrap()) - 1.0).abs() < TOL);
        // Control q1 clear: |01⟩ unchanged.
        let mut sv = StateVector::basis("01".parse().unwrap());
        sv.apply_gate(&Gate::Cx { control: 1, target: 0 });
        assert!((sv.probability_of("01".parse().unwrap()) - 1.0).abs() < TOL);
    }

    #[test]
    fn cx_nonadjacent_qubits() {
        let mut sv = StateVector::basis("001".parse().unwrap());
        sv.apply_gate(&Gate::Cx { control: 0, target: 2 });
        assert!((sv.probability_of("101".parse().unwrap()) - 1.0).abs() < TOL);
    }

    #[test]
    fn swap_exchanges() {
        let mut sv = StateVector::basis("01".parse().unwrap());
        sv.apply_gate(&Gate::Swap { a: 0, b: 1 });
        assert!((sv.probability_of("10".parse().unwrap()) - 1.0).abs() < TOL);
    }

    #[test]
    fn circuit_then_inverse_is_identity() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(1, 0.7).ry(2, 1.3).cz(1, 2).rzz(0, 2, 0.5);
        let mut sv = StateVector::zero(3);
        sv.apply_circuit(&c);
        sv.apply_circuit(&c.inverse());
        assert!((sv.probability_of(BitString::zeros(3)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn norm_preserved_by_gates() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).cx(0, 2).rzz(1, 3, 0.9).ry(2, 0.2).cz(2, 3);
        let sv = StateVector::from_circuit(&c);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVector::from_circuit(&c);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut count00 = 0;
        let mut count11 = 0;
        for _ in 0..n {
            let s = sv.sample(&mut rng);
            match s.value() {
                0b00 => count00 += 1,
                0b11 => count11 += 1,
                other => panic!("impossible outcome {other:b}"),
            }
        }
        let f = count00 as f64 / n as f64;
        assert!((f - 0.5).abs() < 0.02, "f = {f}");
        assert_eq!(count00 + count11, n);
    }

    #[test]
    fn alias_sampler_respects_support() {
        let mut c = Circuit::new(3);
        c.h(0);
        for q in 0..2 {
            c.cx(q, q + 1);
        }
        let sv = StateVector::from_circuit(&c);
        let sampler = sv.sampler();
        let mut rng = StdRng::seed_from_u64(21);
        let mut zeros = 0u64;
        let n = 20_000;
        for _ in 0..n {
            match sampler.sample(&mut rng) {
                0 => zeros += 1,
                0b111 => {}
                other => panic!("impossible outcome {other:b}"),
            }
        }
        let f = zeros as f64 / n as f64;
        assert!((f - 0.5).abs() < 0.02, "f = {f}");
    }

    #[test]
    fn expectation_z() {
        let sv = StateVector::zero(2);
        assert!((sv.expectation_z(0) - 1.0).abs() < TOL);
        let mut sv = StateVector::zero(2);
        sv.apply_gate(&Gate::X(1));
        assert!((sv.expectation_z(1) + 1.0).abs() < TOL);
        let mut sv = StateVector::zero(1);
        sv.apply_gate(&Gate::H(0));
        assert!(sv.expectation_z(0).abs() < TOL);
    }

    #[test]
    fn z_string_expectations() {
        // |11⟩: ⟨Z0⟩ = ⟨Z1⟩ = −1, ⟨Z0 Z1⟩ = +1.
        let sv = StateVector::basis("11".parse().unwrap());
        assert!((sv.expectation_z_string(0b01) + 1.0).abs() < TOL);
        assert!((sv.expectation_z_string(0b10) + 1.0).abs() < TOL);
        assert!((sv.expectation_z_string(0b11) - 1.0).abs() < TOL);
        assert!((sv.expectation_z_string(0) - 1.0).abs() < TOL);
        // Bell state: single-qubit Z vanishes, the correlator is +1.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let bell = StateVector::from_circuit(&c);
        assert!(bell.expectation_z_string(0b01).abs() < TOL);
        assert!((bell.expectation_z_string(0b11) - 1.0).abs() < TOL);
    }

    #[test]
    fn z_string_recovers_qaoa_cost() {
        // cut(s) = Σ_edges (1 - Z_a Z_b)/2, so the expected cut equals the
        // probability-weighted sum — cross-check against direct counting.
        let mut c = Circuit::new(3);
        c.h(0).ry(1, 0.7).cx(0, 2).rzz(1, 2, 0.4);
        let sv = StateVector::from_circuit(&c);
        let edges = [(0usize, 1usize), (1, 2), (0, 2)];
        let via_z: f64 = edges
            .iter()
            .map(|&(a, b)| 0.5 * (1.0 - sv.expectation_z_string((1 << a) | (1 << b))))
            .sum();
        let via_counting: f64 = sv
            .probabilities()
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let crossing = edges
                    .iter()
                    .filter(|&&(a, b)| ((i >> a) & 1) != ((i >> b) & 1))
                    .count();
                p * crossing as f64
            })
            .sum();
        assert!((via_z - via_counting).abs() < 1e-9);
    }

    #[test]
    fn fidelity_and_inner_product() {
        let a = StateVector::zero(2);
        let b = StateVector::basis("01".parse().unwrap());
        assert!(a.fidelity(&b) < TOL);
        assert!((a.fidelity(&a) - 1.0).abs() < TOL);
    }

    #[test]
    fn normalize_rescales() {
        let mut sv = StateVector::zero(1);
        sv.amps[0] = C64::real(2.0);
        sv.normalize();
        assert!((sv.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn from_amplitudes_validates() {
        let v = vec![
            C64::real(FRAC_1_SQRT_2),
            C64::ZERO,
            C64::ZERO,
            C64::real(FRAC_1_SQRT_2),
        ];
        let sv = StateVector::from_amplitudes(v);
        assert_eq!(sv.n_qubits(), 2);
    }

    #[test]
    #[should_panic(expected = "not normalized")]
    fn from_amplitudes_rejects_unnormalized() {
        StateVector::from_amplitudes(vec![C64::ONE, C64::ONE]);
    }

    #[test]
    fn rzz_phases_are_relative_only() {
        // Rzz on a basis state changes only global phase: probabilities fixed.
        let mut sv = StateVector::basis("11".parse().unwrap());
        sv.apply_gate(&Gate::Rzz { a: 0, b: 1, theta: 1.234 });
        assert!((sv.probability_of("11".parse().unwrap()) - 1.0).abs() < TOL);
    }

    #[test]
    fn two_qubit_gate_matches_composition() {
        // CZ = H(target) CX H(target)
        let mut c1 = Circuit::new(2);
        c1.h(0).h(1).cz(0, 1);
        let mut c2 = Circuit::new(2);
        c2.h(0).h(1).h(1).cx(0, 1).h(1);
        let a = StateVector::from_circuit(&c1);
        let b = StateVector::from_circuit(&c2);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-9);
    }
}
