//! Dense state-vector representation of an n-qubit register.
//!
//! This is the execution substrate for every experiment in the
//! reproduction: circuits are applied to a `2^n` amplitude vector, and
//! measurement outcomes are sampled from the Born-rule distribution.
//! Registers up to ~20 qubits are practical; the paper's machines max out
//! at 14.
//!
//! ## Kernel structure
//!
//! Circuit evolution runs through specialized kernels (see [`crate::fuse`]):
//! monomial gates (diagonals, X/Y, CX/CZ/Rzz/Swap) are applied as index
//! permutations with phase multiplies, everything else as dense 2×2/4×4
//! blocks enumerating only the `2^n/2` (or `2^n/4`) base indices of each
//! amplitude group. [`StateVector::from_circuit`] additionally *fuses*
//! adjacent gates into one kernel per run ([`crate::fuse::FusedProgram`]),
//! while [`StateVector::apply_circuit`] keeps the plain gate-by-gate
//! reference path. Large registers can spread kernel application across
//! the persistent worker pool ([`crate::pool`]) with
//! [`StateVector::apply_fused_threaded`]: the whole fused program runs in
//! **one** parallel region, ops whose qubits fit a cache-sized tile are
//! applied tile-by-tile with no synchronization at all, and the remaining
//! ops cross a lightweight [`crate::pool::SpinBarrier`]. The amplitude
//! array is chunked so results are bitwise identical to the serial path
//! for every thread count.
//!
//! Amplitude buffers come from a per-thread arena ([`crate::arena`]):
//! [`StateVector::recycle`] parks a spent buffer and [`StateVector::zero`]
//! reuses it, so batch sweeps over many small circuits stop paying an
//! allocation per circuit.
//!
//! Every circuit-level evolution bumps a process-wide counter
//! ([`simulation_count`]) so tests can assert how many full statevector
//! simulations a pipeline performed — the XOR variant-amortization fast
//! paths ([`StateVector::born_probabilities`]) are measured by the
//! simulations they *don't* run.

use crate::arena;
use crate::bitstring::BitString;
use crate::c64::C64;
use crate::circuit::Circuit;
use crate::fuse::{classify_gate, FusedOp, FusedProgram};
use crate::gate::{Gate, Matrix2, Matrix4};
use crate::pool::{self, SpinBarrier};
use crate::sampler::AliasSampler;
use rand::Rng;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of full statevector circuit simulations.
static CIRCUIT_SIMULATIONS: AtomicU64 = AtomicU64::new(0);

/// The number of circuit-level statevector evolutions performed by this
/// process so far ([`StateVector::from_circuit`], [`StateVector::from_gates`]
/// and [`StateVector::apply_circuit`] each count once; per-gate calls and
/// the permutation fast paths do not).
///
/// The counter is monotonic and process-global: tests should record it
/// before and after the work under measurement and assert on the delta.
pub fn simulation_count() -> u64 {
    CIRCUIT_SIMULATIONS.load(Ordering::Relaxed)
}

/// Inserts a zero bit at position `p`, shifting higher bits up — the
/// standard trick for enumerating only amplitude-group base indices.
#[inline(always)]
fn insert_zero(x: usize, p: usize) -> usize {
    ((x >> p) << (p + 1)) | (x & ((1usize << p) - 1))
}

/// Raw amplitude pointer that may be shared across pool workers.
/// Safety rests on each worker touching a disjoint set of amplitude
/// groups per schedule phase, with a barrier between phases.
struct SharedAmps(*mut C64);
unsafe impl Send for SharedAmps {}
unsafe impl Sync for SharedAmps {}

/// Raw `f64` output pointer shared across pool workers writing disjoint
/// index sets (the probability scans).
struct SharedF64(*mut f64);
unsafe impl Send for SharedF64 {}
unsafe impl Sync for SharedF64 {}

// ---------------------------------------------------------------------------
// Slice-level kernel primitives.
//
// Every kernel below decomposes its amplitude groups into contiguous *runs*
// (maximal stretches of base indices whose low bits stay below the op's
// lowest qubit) and hands the run's columns to these helpers as disjoint
// `&mut` slices. The `&mut` noalias guarantee is what lets LLVM vectorize
// the inner loops; the per-element arithmetic is identical regardless of
// how a range is split into runs, so threaded application stays bitwise
// identical to serial.
// ---------------------------------------------------------------------------

/// `a · b` with each component's final product contracted into an FMA —
/// the exact per-lane arithmetic of a packed `vfmaddsub` complex multiply,
/// so the scalar kernels and the AVX2 kernels produce bit-identical
/// amplitudes. One rounding fewer per component than the `Mul` impl (≤ 1
/// ulp apart from operator arithmetic); every kernel below uses this
/// primitive exclusively, which keeps the simulator self-consistent and
/// bitwise reproducible across thread counts.
#[inline(always)]
fn cmul(a: C64, b: C64) -> C64 {
    C64::new(
        f64::mul_add(a.re, b.re, -(a.im * b.im)),
        f64::mul_add(a.re, b.im, a.im * b.re),
    )
}

/// `s[k] = p · s[k]`.
#[inline(always)]
fn scale(s: &mut [C64], p: C64) {
    for a in s {
        *a = cmul(p, *a);
    }
}

/// Dense 2×2 across two columns: `(a, b) ← m · (a, b)ᵀ`.
#[inline(always)]
fn two_mix(m: &Matrix2, sa: &mut [C64], sb: &mut [C64]) {
    for (a, b) in sa.iter_mut().zip(sb.iter_mut()) {
        let (x, y) = (*a, *b);
        *a = cmul(m[0][0], x) + cmul(m[0][1], y);
        *b = cmul(m[1][0], x) + cmul(m[1][1], y);
    }
}

/// Two-cycle of a monomial op: `out_b = pa · in_a`, `out_a = pb · in_b`.
#[inline(always)]
fn swap_phase(sa: &mut [C64], sb: &mut [C64], pa: C64, pb: C64) {
    if pa == C64::ONE && pb == C64::ONE {
        for (a, b) in sa.iter_mut().zip(sb.iter_mut()) {
            core::mem::swap(a, b);
        }
    } else {
        for (a, b) in sa.iter_mut().zip(sb.iter_mut()) {
            let t = *a;
            *a = cmul(pb, *b);
            *b = cmul(pa, t);
        }
    }
}

/// Three-cycle `c0 → c1 → c2 → c0` with per-source phases.
#[inline(always)]
fn cycle3(s0: &mut [C64], s1: &mut [C64], s2: &mut [C64], p0: C64, p1: C64, p2: C64) {
    for ((a, b), c) in s0.iter_mut().zip(s1.iter_mut()).zip(s2.iter_mut()) {
        let t = *a;
        *a = cmul(p2, *c);
        *c = cmul(p1, *b);
        *b = cmul(p0, t);
    }
}

/// Four-cycle `c0 → c1 → c2 → c3 → c0` with per-source phases.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn cycle4(
    s0: &mut [C64],
    s1: &mut [C64],
    s2: &mut [C64],
    s3: &mut [C64],
    p0: C64,
    p1: C64,
    p2: C64,
    p3: C64,
) {
    for (((a, b), c), d) in s0
        .iter_mut()
        .zip(s1.iter_mut())
        .zip(s2.iter_mut())
        .zip(s3.iter_mut())
    {
        let t = *a;
        *a = cmul(p3, *d);
        *d = cmul(p2, *c);
        *c = cmul(p1, *b);
        *b = cmul(p0, t);
    }
}

/// Dense 4×4 across four columns.
#[inline(always)]
fn dense_mix4(m: &Matrix4, s0: &mut [C64], s1: &mut [C64], s2: &mut [C64], s3: &mut [C64]) {
    for (((a, b), c), d) in s0
        .iter_mut()
        .zip(s1.iter_mut())
        .zip(s2.iter_mut())
        .zip(s3.iter_mut())
    {
        let v = [*a, *b, *c, *d];
        let mut out = [C64::ZERO; 4];
        for (r, out_r) in out.iter_mut().enumerate() {
            let mr = &m[r];
            *out_r = cmul(mr[0], v[0]) + cmul(mr[1], v[1]) + cmul(mr[2], v[2]) + cmul(mr[3], v[3]);
        }
        *a = out[0];
        *b = out[1];
        *c = out[2];
        *d = out[3];
    }
}

/// One cycle of a 4-column monomial permutation, precomputed per op.
#[derive(Clone, Copy)]
enum MonoCycle {
    /// Fixed column `c` scaled by `ph[c]` (unit phases are dropped).
    Fix(usize),
    /// Two-cycle `(a b)`.
    Two(usize, usize),
    /// Three-cycle `a → b → c → a`.
    Three(usize, usize, usize),
    /// Four-cycle `a → b → c → d → a`.
    Four(usize, usize, usize, usize),
}

/// Decomposes `out[perm[c]] = ph[c] · in[c]` into disjoint cycles, dropping
/// unit-phase fixed points (so CX touches 2 columns and CZ just 1).
fn mono_cycles(perm: [u8; 4], ph: [C64; 4]) -> ([MonoCycle; 4], usize) {
    let mut cycles = [MonoCycle::Fix(0); 4];
    let mut n = 0;
    let mut visited = [false; 4];
    for c0 in 0..4 {
        if visited[c0] {
            continue;
        }
        let mut cyc = [0usize; 4];
        let mut len = 0;
        let mut c = c0;
        loop {
            visited[c] = true;
            cyc[len] = c;
            len += 1;
            c = perm[c] as usize;
            if c == c0 {
                break;
            }
        }
        let cycle = match len {
            1 => {
                if ph[c0] == C64::ONE {
                    continue;
                }
                MonoCycle::Fix(c0)
            }
            2 => MonoCycle::Two(cyc[0], cyc[1]),
            3 => MonoCycle::Three(cyc[0], cyc[1], cyc[2]),
            _ => MonoCycle::Four(cyc[0], cyc[1], cyc[2], cyc[3]),
        };
        cycles[n] = cycle;
        n += 1;
    }
    (cycles, n)
}

/// Builds the disjoint column slices of one run.
///
/// # Safety
///
/// Caller guarantees the regions `[base + offs[c], base + offs[c] + run)`
/// are in bounds, pairwise disjoint, and unaliased for the borrow.
unsafe fn col<'a>(amps: *mut C64, start: usize, run: usize) -> &'a mut [C64] {
    std::slice::from_raw_parts_mut(amps.add(start), run)
}

/// Applies a 4-column monomial permutation (as cycles) to one run.
///
/// # Safety
///
/// Same contract as [`col`] for all four column offsets.
unsafe fn apply_cycles(
    amps: *mut C64,
    i00: usize,
    offs: [usize; 4],
    run: usize,
    cycles: &[MonoCycle],
    ph: [C64; 4],
) {
    for &cycle in cycles {
        match cycle {
            MonoCycle::Fix(c) => scale(col(amps, i00 + offs[c], run), ph[c]),
            MonoCycle::Two(a, b) => swap_phase(
                col(amps, i00 + offs[a], run),
                col(amps, i00 + offs[b], run),
                ph[a],
                ph[b],
            ),
            MonoCycle::Three(a, b, c) => cycle3(
                col(amps, i00 + offs[a], run),
                col(amps, i00 + offs[b], run),
                col(amps, i00 + offs[c], run),
                ph[a],
                ph[b],
                ph[c],
            ),
            MonoCycle::Four(a, b, c, d) => cycle4(
                col(amps, i00 + offs[a], run),
                col(amps, i00 + offs[b], run),
                col(amps, i00 + offs[c], run),
                col(amps, i00 + offs[d], run),
                ph[a],
                ph[b],
                ph[c],
                ph[d],
            ),
        }
    }
}

/// Iterates the contiguous runs of a group range: `f(i00, run)` where
/// `i00` is the first base index (with the op's qubit bits deposited as
/// zero) and `run ≤ 1 << low_qubit` amplitudes are contiguous from it.
#[inline(always)]
fn for_runs(
    groups: Range<usize>,
    low_qubit: usize,
    insert: impl Fn(usize) -> usize,
    mut f: impl FnMut(usize, usize),
) {
    let blo = 1usize << low_qubit;
    let mut g = groups.start;
    while g < groups.end {
        let run = (blo - (g & (blo - 1))).min(groups.end - g);
        f(insert(g), run);
        g += run;
    }
}

/// Below this run length the slice-based helpers cost more than a plain
/// scalar gather/compute/scatter per group, so kernels whose lowest qubit
/// sits under `log2(RUN_MIN)` take the scalar path instead.
const RUN_MIN: usize = 8;

/// True when the running CPU has AVX2 and FMA, detected once per process.
#[cfg(target_arch = "x86_64")]
fn has_avx2_fma() -> bool {
    use std::sync::atomic::AtomicU8;
    static CACHE: AtomicU8 = AtomicU8::new(0);
    match CACHE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let yes = std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma");
            CACHE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
    }
}

/// Packed-complex `Fact2` loop body: two amplitude groups per iteration.
///
/// A 256-bit lane holds two interleaved `C64`s; `cmul2` is the classic
/// `permute / mul / fmaddsub` complex product by a constant, whose per-lane
/// arithmetic is exactly the scalar [`cmul`] — the scalar tail that handles
/// an odd trailing group therefore matches these lanes bit for bit, and so
/// does any serial/threaded split of a run.
///
/// Leg matrices arrive as per-column-pair variants with the core's phases
/// pre-folded into the last active leg (see [`fact2_runs`]), so the loop
/// body is nothing but the leg arithmetic plus permuted stores.
///
/// # Safety
///
/// Caller must have verified AVX2+FMA at runtime, and `inp`/`out` must
/// point to `n` valid amplitudes per column with the disjointness contract
/// of [`apply_op_groups`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fact2_avx<const LO: bool, const HI: bool>(
    inp: [*mut C64; 4],
    out: [*mut C64; 4],
    n: usize,
    mlo: &[Matrix2; 2],
    mhi: &[Matrix2; 2],
    ph: [C64; 4],
) {
    use std::arch::x86_64::*;
    #[inline(always)]
    unsafe fn cmul2(m: C64, v: __m256d) -> __m256d {
        let vsw = _mm256_permute_pd(v, 0b0101);
        let t = _mm256_mul_pd(vsw, _mm256_set1_pd(m.im));
        _mm256_fmaddsub_pd(v, _mm256_set1_pd(m.re), t)
    }
    let mut k = 0;
    while k < n {
        let mut v = [
            _mm256_loadu_pd(inp[0].add(k) as *const f64),
            _mm256_loadu_pd(inp[1].add(k) as *const f64),
            _mm256_loadu_pd(inp[2].add(k) as *const f64),
            _mm256_loadu_pd(inp[3].add(k) as *const f64),
        ];
        if LO {
            let (x, y) = (v[0], v[1]);
            v[0] = _mm256_add_pd(cmul2(mlo[0][0][0], x), cmul2(mlo[0][0][1], y));
            v[1] = _mm256_add_pd(cmul2(mlo[0][1][0], x), cmul2(mlo[0][1][1], y));
            let (x, y) = (v[2], v[3]);
            v[2] = _mm256_add_pd(cmul2(mlo[1][0][0], x), cmul2(mlo[1][0][1], y));
            v[3] = _mm256_add_pd(cmul2(mlo[1][1][0], x), cmul2(mlo[1][1][1], y));
        }
        if HI {
            let (x, y) = (v[0], v[2]);
            v[0] = _mm256_add_pd(cmul2(mhi[0][0][0], x), cmul2(mhi[0][0][1], y));
            v[2] = _mm256_add_pd(cmul2(mhi[0][1][0], x), cmul2(mhi[0][1][1], y));
            let (x, y) = (v[1], v[3]);
            v[1] = _mm256_add_pd(cmul2(mhi[1][0][0], x), cmul2(mhi[1][0][1], y));
            v[3] = _mm256_add_pd(cmul2(mhi[1][1][0], x), cmul2(mhi[1][1][1], y));
        }
        if LO || HI {
            _mm256_storeu_pd(out[0].add(k) as *mut f64, v[0]);
            _mm256_storeu_pd(out[1].add(k) as *mut f64, v[1]);
            _mm256_storeu_pd(out[2].add(k) as *mut f64, v[2]);
            _mm256_storeu_pd(out[3].add(k) as *mut f64, v[3]);
        } else {
            _mm256_storeu_pd(out[0].add(k) as *mut f64, cmul2(ph[0], v[0]));
            _mm256_storeu_pd(out[1].add(k) as *mut f64, cmul2(ph[1], v[1]));
            _mm256_storeu_pd(out[2].add(k) as *mut f64, cmul2(ph[2], v[2]));
            _mm256_storeu_pd(out[3].add(k) as *mut f64, cmul2(ph[3], v[3]));
        }
        k += 2;
    }
}

/// Single-pass `Fact2` kernel over the runs of a group range: the dense
/// legs and the monomial core land in one read–modify–write sweep. Two
/// precomputations keep the inner loop lean for any monomial core:
///
/// 1. the core's column permutation is pre-applied to the four *output
///    pointers* of each run — `out[c]` receives column `c`'s result — so
///    there is no data-dependent lane selection;
/// 2. the core's phases are pre-folded into the rows of the last active
///    leg (each column pair gets its own scaled copy of the 2×2), so a
///    one-dense-leg op spends exactly 8 complex multiplies per group.
///
/// A pure-monomial op (both legs identity) keeps the phases at the
/// scatter. On x86-64 with AVX2+FMA the bulk of each run goes through
/// [`fact2_avx`] two groups at a time; the scalar tail and any
/// serial/threaded split produce bit-identical amplitudes.
///
/// # Safety
///
/// Same contract as [`apply_op_groups`] for a two-qubit op on `lo < hi`.
#[allow(clippy::too_many_arguments)]
unsafe fn fact2_runs<const LO: bool, const HI: bool>(
    amps: *mut C64,
    groups: Range<usize>,
    lo: usize,
    hi: usize,
    mlo: &Matrix2,
    mhi: &Matrix2,
    perm: [u8; 4],
    ph: [C64; 4],
) {
    let blo = 1usize << lo;
    let bhi = 1usize << hi;
    let offs = [0, blo, bhi, blo | bhi];
    // Phase folding: scale the rows of the last active leg by the phases of
    // the columns that leg's pairs feed (lo pairs (0,1)/(2,3); hi pairs
    // (0,2)/(1,3)).
    let scale_rows = |m: &Matrix2, pa: C64, pb: C64| -> Matrix2 {
        [
            [cmul(pa, m[0][0]), cmul(pa, m[0][1])],
            [cmul(pb, m[1][0]), cmul(pb, m[1][1])],
        ]
    };
    let (mlo2, mhi2) = if HI {
        (
            [*mlo, *mlo],
            [scale_rows(mhi, ph[0], ph[2]), scale_rows(mhi, ph[1], ph[3])],
        )
    } else if LO {
        (
            [scale_rows(mlo, ph[0], ph[1]), scale_rows(mlo, ph[2], ph[3])],
            [*mhi, *mhi],
        )
    } else {
        ([*mlo, *mlo], [*mhi, *mhi])
    };
    #[cfg(target_arch = "x86_64")]
    let simd = has_avx2_fma();
    #[cfg(not(target_arch = "x86_64"))]
    let simd = false;
    for_runs(
        groups,
        lo,
        |g| insert_zero(insert_zero(g, lo), hi),
        |i00, run| {
            let inp = [
                amps.add(i00),
                amps.add(i00 + blo),
                amps.add(i00 + bhi),
                amps.add(i00 + blo + bhi),
            ];
            let out = [
                amps.add(i00 + offs[perm[0] as usize]),
                amps.add(i00 + offs[perm[1] as usize]),
                amps.add(i00 + offs[perm[2] as usize]),
                amps.add(i00 + offs[perm[3] as usize]),
            ];
            let mut k = 0;
            #[cfg(target_arch = "x86_64")]
            if simd {
                let n2 = run & !1;
                if n2 > 0 {
                    fact2_avx::<LO, HI>(inp, out, n2, &mlo2, &mhi2, ph);
                }
                k = n2;
            }
            let _ = simd;
            while k < run {
                let mut v = [
                    *inp[0].add(k),
                    *inp[1].add(k),
                    *inp[2].add(k),
                    *inp[3].add(k),
                ];
                if LO {
                    let (x, y) = (v[0], v[1]);
                    v[0] = cmul(mlo2[0][0][0], x) + cmul(mlo2[0][0][1], y);
                    v[1] = cmul(mlo2[0][1][0], x) + cmul(mlo2[0][1][1], y);
                    let (x, y) = (v[2], v[3]);
                    v[2] = cmul(mlo2[1][0][0], x) + cmul(mlo2[1][0][1], y);
                    v[3] = cmul(mlo2[1][1][0], x) + cmul(mlo2[1][1][1], y);
                }
                if HI {
                    let (x, y) = (v[0], v[2]);
                    v[0] = cmul(mhi2[0][0][0], x) + cmul(mhi2[0][0][1], y);
                    v[2] = cmul(mhi2[0][1][0], x) + cmul(mhi2[0][1][1], y);
                    let (x, y) = (v[1], v[3]);
                    v[1] = cmul(mhi2[1][0][0], x) + cmul(mhi2[1][0][1], y);
                    v[3] = cmul(mhi2[1][1][0], x) + cmul(mhi2[1][1][1], y);
                }
                if LO || HI {
                    *out[0].add(k) = v[0];
                    *out[1].add(k) = v[1];
                    *out[2].add(k) = v[2];
                    *out[3].add(k) = v[3];
                } else {
                    *out[0].add(k) = cmul(ph[0], v[0]);
                    *out[1].add(k) = cmul(ph[1], v[1]);
                    *out[2].add(k) = cmul(ph[2], v[2]);
                    *out[3].add(k) = cmul(ph[3], v[3]);
                }
                k += 1;
            }
        },
    );
}

/// Applies one fused kernel to the amplitude groups in `groups`.
///
/// Group `g` covers the amplitudes whose index equals `g` with the op's
/// qubit bits deposited as zero (base index) plus every combination of
/// those bits. Distinct groups touch disjoint amplitudes.
///
/// # Safety
///
/// `amps` must point to at least `groups.end << op.arity()` amplitudes, the
/// op's qubits must be in range, and no other thread may touch the groups
/// in `groups` concurrently.
unsafe fn apply_op_groups(amps: *mut C64, op: &FusedOp, groups: Range<usize>) {
    match *op {
        FusedOp::Mono1 { q, perm, ph } => {
            let bit = 1usize << q;
            let (p0, p1) = (ph[0], ph[1]);
            if perm == [0, 1] {
                // Diagonal: in-place phase multiply; skip unit phases so
                // plain S/T/Phase gates touch half the memory.
                if bit >= RUN_MIN {
                    for_runs(
                        groups,
                        q,
                        |g| insert_zero(g, q),
                        |i0, run| {
                            if p0 != C64::ONE {
                                scale(col(amps, i0, run), p0);
                            }
                            if p1 != C64::ONE {
                                scale(col(amps, i0 + bit, run), p1);
                            }
                        },
                    );
                } else {
                    let (skip0, skip1) = (p0 == C64::ONE, p1 == C64::ONE);
                    for g in groups {
                        let i0 = insert_zero(g, q);
                        if !skip0 {
                            *amps.add(i0) = cmul(p0, *amps.add(i0));
                        }
                        if !skip1 {
                            *amps.add(i0 | bit) = cmul(p1, *amps.add(i0 | bit));
                        }
                    }
                }
            } else {
                // Antidiagonal (X/Y-like): pair swap with phases.
                if bit >= RUN_MIN {
                    for_runs(
                        groups,
                        q,
                        |g| insert_zero(g, q),
                        |i0, run| {
                            swap_phase(col(amps, i0, run), col(amps, i0 + bit, run), p0, p1);
                        },
                    );
                } else {
                    for g in groups {
                        let i0 = insert_zero(g, q);
                        let a0 = *amps.add(i0);
                        let a1 = *amps.add(i0 | bit);
                        *amps.add(i0 | bit) = cmul(p0, a0);
                        *amps.add(i0) = cmul(p1, a1);
                    }
                }
            }
        }
        FusedOp::Dense1 { q, m } => {
            let bit = 1usize << q;
            if bit >= RUN_MIN {
                for_runs(
                    groups,
                    q,
                    |g| insert_zero(g, q),
                    |i0, run| {
                        two_mix(&m, col(amps, i0, run), col(amps, i0 + bit, run));
                    },
                );
            } else {
                for g in groups {
                    let i0 = insert_zero(g, q);
                    let i1 = i0 | bit;
                    let a0 = *amps.add(i0);
                    let a1 = *amps.add(i1);
                    *amps.add(i0) = cmul(m[0][0], a0) + cmul(m[0][1], a1);
                    *amps.add(i1) = cmul(m[1][0], a0) + cmul(m[1][1], a1);
                }
            }
        }
        FusedOp::Mono2 { lo, hi, perm, ph } => {
            let blo = 1usize << lo;
            let bhi = 1usize << hi;
            let offs = [0, blo, bhi, blo | bhi];
            if blo >= RUN_MIN {
                let (cycles, n_cycles) = mono_cycles(perm, ph);
                let cycles = &cycles[..n_cycles];
                for_runs(
                    groups,
                    lo,
                    |g| insert_zero(insert_zero(g, lo), hi),
                    |i00, run| apply_cycles(amps, i00, offs, run, cycles, ph),
                );
            } else {
                // Scalar path: touch only the columns that move or pick up
                // a non-unit phase (CX reads/writes 2 of 4, CZ just 1).
                let mut active = [0usize; 4];
                let mut n_active = 0;
                for c in 0..4 {
                    if !(perm[c] as usize == c && ph[c] == C64::ONE) {
                        active[n_active] = c;
                        n_active += 1;
                    }
                }
                let active = &active[..n_active];
                for g in groups {
                    let i00 = insert_zero(insert_zero(g, lo), hi);
                    let mut v = [C64::ZERO; 4];
                    for &c in active {
                        v[c] = *amps.add(i00 + offs[c]);
                    }
                    for &c in active {
                        *amps.add(i00 + offs[perm[c] as usize]) = cmul(ph[c], v[c]);
                    }
                }
            }
        }
        FusedOp::Dense2 { lo, hi, m } => {
            let blo = 1usize << lo;
            let bhi = 1usize << hi;
            if blo >= RUN_MIN {
                for_runs(
                    groups,
                    lo,
                    |g| insert_zero(insert_zero(g, lo), hi),
                    |i00, run| {
                        dense_mix4(
                            &m,
                            col(amps, i00, run),
                            col(amps, i00 + blo, run),
                            col(amps, i00 + bhi, run),
                            col(amps, i00 + blo + bhi, run),
                        );
                    },
                );
            } else {
                for g in groups {
                    let i00 = insert_zero(insert_zero(g, lo), hi);
                    let idx = [i00, i00 | blo, i00 | bhi, i00 | blo | bhi];
                    let v = [
                        *amps.add(idx[0]),
                        *amps.add(idx[1]),
                        *amps.add(idx[2]),
                        *amps.add(idx[3]),
                    ];
                    for (r, &i) in idx.iter().enumerate() {
                        let mr = &m[r];
                        *amps.add(i) = cmul(mr[0], v[0])
                            + cmul(mr[1], v[1])
                            + cmul(mr[2], v[2])
                            + cmul(mr[3], v[3]);
                    }
                }
            }
        }
        FusedOp::Fact2 {
            lo,
            hi,
            mlo,
            mhi,
            perm,
            ph,
        } => {
            // One pass for `Mono(perm, ph) · (mhi ⊗ mlo)`: long runs take
            // the fused single-sweep kernel (SIMD on x86-64), short runs a
            // scalar gather/compute/scatter per group. The common
            // one-dense-leg case (e.g. H riding a CX) costs 8 multiplies
            // per group — half a dense 4×4.
            let blo = 1usize << lo;
            let bhi = 1usize << hi;
            let offs = [0, blo, bhi, blo | bhi];
            let apply_lo = !crate::fuse::is_identity2(&mlo);
            let apply_hi = !crate::fuse::is_identity2(&mhi);
            // Even length-2 runs win with the packed kernel: one 2-group
            // SIMD iteration amortizes the per-run pointer setup. Only
            // lo = 0 (single-group runs) stays scalar.
            if blo >= 2 {
                match (apply_lo, apply_hi) {
                    (false, false) => {
                        fact2_runs::<false, false>(amps, groups, lo, hi, &mlo, &mhi, perm, ph)
                    }
                    (false, true) => {
                        fact2_runs::<false, true>(amps, groups, lo, hi, &mlo, &mhi, perm, ph)
                    }
                    (true, false) => {
                        fact2_runs::<true, false>(amps, groups, lo, hi, &mlo, &mhi, perm, ph)
                    }
                    (true, true) => {
                        fact2_runs::<true, true>(amps, groups, lo, hi, &mlo, &mhi, perm, ph)
                    }
                }
            } else {
                let unit_ph = ph == [C64::ONE; 4];
                for g in groups {
                    let i00 = insert_zero(insert_zero(g, lo), hi);
                    let mut v = [
                        *amps.add(i00),
                        *amps.add(i00 | blo),
                        *amps.add(i00 | bhi),
                        *amps.add(i00 | blo | bhi),
                    ];
                    if apply_lo {
                        for (a, b) in [(0, 1), (2, 3)] {
                            let (x, y) = (v[a], v[b]);
                            v[a] = cmul(mlo[0][0], x) + cmul(mlo[0][1], y);
                            v[b] = cmul(mlo[1][0], x) + cmul(mlo[1][1], y);
                        }
                    }
                    if apply_hi {
                        for (a, b) in [(0, 2), (1, 3)] {
                            let (x, y) = (v[a], v[b]);
                            v[a] = cmul(mhi[0][0], x) + cmul(mhi[0][1], y);
                            v[b] = cmul(mhi[1][0], x) + cmul(mhi[1][1], y);
                        }
                    }
                    if unit_ph {
                        for c in 0..4 {
                            *amps.add(i00 + offs[perm[c] as usize]) = v[c];
                        }
                    } else {
                        for c in 0..4 {
                            *amps.add(i00 + offs[perm[c] as usize]) = cmul(ph[c], v[c]);
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fused-program schedule: cache-sized tiles and barrier phases.
//
// A fused program no longer runs as `n_ops` synchronized full sweeps.
// Instead it is compiled into *phases*: a maximal run of ops whose qubits
// all sit below the tile width executes tile-by-tile (each worker streams
// its tiles through every op of the phase while they are cache-hot, with
// no synchronization at all), and each op touching a higher qubit runs as
// one classic chunked full sweep. Workers only meet at a [`SpinBarrier`]
// between phases.
//
// Bitwise identity is preserved in both directions. Versus the serial
// op-by-op order: a low op's amplitude groups are contained in single
// tiles, so reordering "op then next tile" vs "tile then next op" permutes
// writes to *disjoint* amplitudes only. Versus other thread counts: the
// per-group arithmetic of `apply_op_groups` never depends on how a range
// was split, and phases are ordered by barriers.
// ---------------------------------------------------------------------------

/// Hard cap on tile width: `2^15` amplitudes = 512 KB, sized to leave
/// headroom in a ~1–2 MB per-core L2 once kernel constants and stack are
/// accounted for.
const TILE_BITS_MAX: usize = 15;

/// Picks the tile width (in qubits) for an `n`-qubit apply on `workers`
/// workers: small enough to fit L2 and to give every worker at least two
/// tiles, but never below 10 qubits (16 KB) where per-tile loop overhead
/// would beat the cache win — tiny registers collapse to a single tile.
fn tile_bits_for(n: usize, workers: usize) -> usize {
    let spread = (2 * workers.max(1)).next_power_of_two().trailing_zeros() as usize;
    let t = n.saturating_sub(spread).min(TILE_BITS_MAX);
    t.max(n.min(10))
}

/// One synchronization phase of a fused program.
enum Phase {
    /// `ops[range]` all act below the tile width: run tile-by-tile,
    /// barrier-free within the phase.
    Tiled(Range<usize>),
    /// `ops[idx]` touches a qubit at or above the tile width: one chunked
    /// full sweep.
    Global(usize),
}

/// Highest qubit an op touches.
fn max_qubit(op: &FusedOp) -> usize {
    match *op {
        FusedOp::Mono1 { q, .. } | FusedOp::Dense1 { q, .. } => q,
        FusedOp::Mono2 { hi, .. } | FusedOp::Dense2 { hi, .. } | FusedOp::Fact2 { hi, .. } => hi,
    }
}

/// Greedily groups consecutive below-tile ops into [`Phase::Tiled`] runs.
fn build_schedule(ops: &[FusedOp], tile_bits: usize) -> Vec<Phase> {
    let mut phases = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        if max_qubit(&ops[i]) < tile_bits {
            let start = i;
            while i < ops.len() && max_qubit(&ops[i]) < tile_bits {
                i += 1;
            }
            phases.push(Phase::Tiled(start..i));
        } else {
            phases.push(Phase::Global(i));
            i += 1;
        }
    }
    phases
}

/// Executes worker `w`'s share of every phase. All `workers` workers must
/// call this with the same schedule; `barrier` is required iff `workers > 1`.
///
/// # Safety
///
/// `amps` must point to `dim` amplitudes, `dim` a power of two with
/// `dim >= 1 << tile_bits`, every op's qubits in range, and the full
/// worker set `0..workers` must execute concurrently so the barrier
/// completes (except `workers == 1`, which needs no barrier).
#[allow(clippy::too_many_arguments)]
unsafe fn run_schedule(
    amps: *mut C64,
    dim: usize,
    ops: &[FusedOp],
    phases: &[Phase],
    tile_bits: usize,
    w: usize,
    workers: usize,
    barrier: Option<&SpinBarrier>,
) {
    let n_tiles = dim >> tile_bits;
    for (pi, phase) in phases.iter().enumerate() {
        match phase {
            Phase::Tiled(r) => {
                let chunk = n_tiles.div_ceil(workers);
                let t0 = (w * chunk).min(n_tiles);
                let t1 = ((w + 1) * chunk).min(n_tiles);
                for tile in t0..t1 {
                    for op in &ops[r.clone()] {
                        // All the op's qubits are below `tile_bits`, so its
                        // groups partition each tile: tile `t` is exactly
                        // groups `[t << gb, (t+1) << gb)`.
                        let gb = tile_bits - op.arity();
                        apply_op_groups(amps, op, (tile << gb)..((tile + 1) << gb));
                    }
                }
            }
            Phase::Global(i) => {
                let op = &ops[*i];
                let n_groups = dim >> op.arity();
                let chunk = n_groups.div_ceil(workers);
                let start = (w * chunk).min(n_groups);
                let end = ((w + 1) * chunk).min(n_groups);
                if start < end {
                    apply_op_groups(amps, op, start..end);
                }
            }
        }
        if pi + 1 < phases.len() {
            if let Some(b) = barrier {
                b.wait();
            }
        }
    }
}

/// Amplitudes per partial sum in the blocked reductions
/// ([`StateVector::norm_sqr`]): fixed so serial and pool-threaded
/// reductions accumulate in exactly the same order and stay bitwise
/// identical. 4096 `f64` adds per block keeps partial-sum overhead
/// negligible while giving plenty of blocks to spread across workers.
const SUM_BLOCK: usize = 4096;

/// Per-block squared-norm partial sums of `amps`, in block order.
/// `threads > 1` computes blocks on the pool; the per-block arithmetic and
/// the caller's sequential combine are identical either way.
fn norm_block_partials(amps: &[C64], threads: usize) -> Vec<f64> {
    let block_sum = |block: &[C64]| -> f64 { block.iter().map(|a| a.norm_sqr()).sum() };
    let n_blocks = amps.len().div_ceil(SUM_BLOCK).max(1);
    if threads <= 1 || n_blocks < 2 {
        return amps.chunks(SUM_BLOCK).map(block_sum).collect();
    }
    let mut partials = vec![0.0f64; n_blocks];
    let out = SharedF64(partials.as_mut_ptr());
    // Borrow the wrapper (not its pointer field) so the closure capture
    // stays `Sync`.
    let out = &out;
    pool::run(threads, &|w| {
        let chunk = n_blocks.div_ceil(threads);
        let b0 = (w * chunk).min(n_blocks);
        let b1 = ((w + 1) * chunk).min(n_blocks);
        for b in b0..b1 {
            let lo = b * SUM_BLOCK;
            let hi = (lo + SUM_BLOCK).min(amps.len());
            // SAFETY: workers write disjoint `partials` entries and the
            // dispatch completes before `partials` is read.
            unsafe { *out.0.add(b) = block_sum(&amps[lo..hi]) };
        }
    });
    partials
}

/// A pure quantum state over `n` qubits as `2^n` complex amplitudes.
///
/// Amplitude `i` is the coefficient of the computational basis state whose
/// bit `k` equals bit `k` of `i` (qubit 0 is the least-significant bit).
///
/// # Examples
///
/// ```
/// use qsim::{Circuit, StateVector};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let psi = StateVector::from_circuit(&bell);
/// let p = psi.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12); // |00⟩
/// assert!((p[3] - 0.5).abs() < 1e-12); // |11⟩
/// assert!(p[1].abs() < 1e-12 && p[2].abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// Creates the all-zero basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is 0 or large enough that `2^n` overflows
    /// `usize` (practically, > 30 is rejected to guard against accidental
    /// exponential allocations).
    pub fn zero(n_qubits: usize) -> Self {
        assert!(
            (1..=30).contains(&n_qubits),
            "state vector limited to 1..=30 qubits"
        );
        let dim = 1usize << n_qubits;
        // Reuse a buffer parked by `recycle` when one fits; the arena
        // hands it back zeroed, so this is purely an allocation saving.
        let mut amps = arena::take(dim).unwrap_or_else(|| vec![C64::ZERO; dim]);
        amps[0] = C64::ONE;
        StateVector { n_qubits, amps }
    }

    /// Parks this state's amplitude buffer in the per-thread arena
    /// ([`crate::arena`]) so the next [`StateVector::zero`] of a compatible
    /// size reuses it instead of allocating. Call it on states that die in
    /// hot loops — one trajectory state per shot, one prefix state per
    /// variant family; dropping a state instead is always correct, just
    /// slower.
    pub fn recycle(self) {
        arena::recycle(self.amps);
    }

    /// Creates a basis state `|s⟩`.
    pub fn basis(s: BitString) -> Self {
        let mut sv = StateVector::zero(s.width());
        sv.amps[0] = C64::ZERO;
        sv.amps[s.index()] = C64::ONE;
        sv
    }

    /// Creates a state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two ≥ 2 or the vector is not
    /// normalized within `1e-9`.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let len = amps.len();
        assert!(
            len >= 2 && len.is_power_of_two(),
            "length must be a power of two"
        );
        let n_qubits = len.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-9,
            "amplitudes not normalized (norm² = {norm})"
        );
        StateVector { n_qubits, amps }
    }

    /// Runs `circuit` from `|0…0⟩` and returns the final state.
    ///
    /// The circuit is gate-fused and run through the specialized kernels
    /// (see [`crate::fuse`]); results agree with the gate-by-gate reference
    /// path ([`StateVector::apply_circuit`]) to ~1e-15 per amplitude.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        Self::from_gates(circuit.n_qubits(), circuit.gates())
    }

    /// Like [`StateVector::from_circuit`], but spreads kernel application
    /// across `threads` scoped worker threads. Bitwise identical to the
    /// serial path for every thread count; worthwhile only for large
    /// registers (the executor gates it at ≥ 15 qubits).
    pub fn from_circuit_with_threads(circuit: &Circuit, threads: usize) -> Self {
        Self::from_gates_threaded(circuit.n_qubits(), circuit.gates(), threads)
    }

    /// Runs a gate slice from `|0…0⟩` over an `n_qubits` register — the
    /// fused evolution entry point for circuit *prefixes* (e.g. the base
    /// circuit shared by a family of inversion variants, see
    /// [`Circuit::trailing_x_split`]).
    pub fn from_gates(n_qubits: usize, gates: &[Gate]) -> Self {
        Self::from_gates_threaded(n_qubits, gates, 1)
    }

    /// Threaded variant of [`StateVector::from_gates`].
    pub fn from_gates_threaded(n_qubits: usize, gates: &[Gate], threads: usize) -> Self {
        let mut sv = StateVector::zero(n_qubits);
        let prog = FusedProgram::from_gates(n_qubits, gates);
        CIRCUIT_SIMULATIONS.fetch_add(1, Ordering::Relaxed);
        sv.apply_fused_threaded(&prog, threads);
        sv
    }

    /// The number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The amplitudes (length `2^n`).
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// The squared 2-norm (should be 1 up to float error).
    ///
    /// Accumulated as fixed-width block partial sums combined in block
    /// order, so [`StateVector::norm_sqr_threaded`] is bitwise identical
    /// for every thread count (registers under `SUM_BLOCK` = 4096
    /// amplitudes reduce in one block and match a plain sequential sum
    /// exactly). Note this blocked order is a numerics change versus
    /// pre-pool releases for larger registers — a version boundary the
    /// journal format tracks (see DESIGN.md §14, "Cross-version
    /// numerics").
    pub fn norm_sqr(&self) -> f64 {
        self.norm_sqr_threaded(1)
    }

    /// Pool-threaded [`StateVector::norm_sqr`]: block partial sums are
    /// computed on `threads` workers and combined sequentially — bitwise
    /// identical to the serial reduction.
    pub fn norm_sqr_threaded(&self, threads: usize) -> f64 {
        let threads = threads.min(pool::available_threads());
        norm_block_partials(&self.amps, threads).iter().sum()
    }

    /// Renormalizes in place (useful after non-unitary trajectory jumps).
    pub fn normalize(&mut self) {
        self.normalize_threaded(1);
    }

    /// Pool-threaded [`StateVector::normalize`]: the norm reduction and
    /// the scaling sweep both run on `threads` workers, bitwise identical
    /// to the serial path for every thread count (the norm is the blocked
    /// reduction, and scaling is elementwise).
    pub fn normalize_threaded(&mut self, threads: usize) {
        let threads = threads.min(pool::available_threads()).max(1);
        let n = self.norm_sqr_threaded(threads).sqrt();
        if n <= 0.0 {
            return;
        }
        let dim = self.amps.len();
        if threads == 1 || dim < (1 << 15) {
            for a in &mut self.amps {
                *a = *a / n;
            }
            return;
        }
        let shared = SharedAmps(self.amps.as_mut_ptr());
        let shared = &shared;
        pool::run(threads, &|w| {
            let chunk = dim.div_ceil(threads);
            let start = (w * chunk).min(dim);
            let end = ((w + 1) * chunk).min(dim);
            for i in start..end {
                // SAFETY: workers scale disjoint index ranges; the
                // dispatch completes before `amps` is used again.
                unsafe { *shared.0.add(i) = *shared.0.add(i) / n };
            }
        });
    }

    /// Applies a single gate in place through its specialized kernel:
    /// monomial gates (diagonals, X/Y, CX/CZ/Rzz/Swap) run as permutations
    /// with phase multiplies, dense gates enumerate only the `dim/2`
    /// (`dim/4` for two-qubit gates) amplitude-group base indices.
    ///
    /// # Panics
    ///
    /// Panics if the gate references qubits outside the register.
    pub fn apply_gate(&mut self, gate: &Gate) {
        for &q in &gate.qubits() {
            assert!(q < self.n_qubits, "gate {gate} out of range");
        }
        let op = classify_gate(gate);
        self.apply_op(&op);
    }

    /// Applies one classified kernel over the full register.
    fn apply_op(&mut self, op: &FusedOp) {
        let n_groups = self.amps.len() >> op.arity();
        // SAFETY: exclusive `&mut self`, op qubits validated by the caller,
        // and the full group range covers exactly the amplitude vector.
        unsafe { apply_op_groups(self.amps.as_mut_ptr(), op, 0..n_groups) }
    }

    /// Applies a fused program serially through the cache-tiled schedule —
    /// below-tile ops stream tile by tile, the rest run as full kernel
    /// sweeps (see [`crate::fuse::FusedProgram`]).
    ///
    /// # Panics
    ///
    /// Panics if the program was compiled for more qubits than the state.
    pub fn apply_fused(&mut self, prog: &FusedProgram) {
        self.apply_fused_with_workers(prog, 1);
    }

    /// Applies a fused program on up to `threads` persistent pool workers,
    /// executing the whole program in **one** parallel region: consecutive
    /// below-tile ops run tile-by-tile with no synchronization, other ops
    /// as chunked full sweeps, with one [`SpinBarrier`] wait per phase.
    ///
    /// `threads` is a parallelism *request*: it is clamped to
    /// [`pool::available_threads`], because extra workers beyond physical
    /// cores only add scheduling overhead. The clamp cannot change results
    /// — every worker count computes the same per-group arithmetic over
    /// disjoint group sets, so the result is **bitwise identical for every
    /// thread count** (the invariant journal resume relies on). Callers
    /// should still gate on size (the executor uses ≥ 15 qubits).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or the program was compiled for more qubits
    /// than the state.
    pub fn apply_fused_threaded(&mut self, prog: &FusedProgram, threads: usize) {
        assert!(threads >= 1, "need at least one thread");
        self.apply_fused_with_workers(prog, threads.min(pool::available_threads()));
    }

    /// Like [`StateVector::apply_fused_threaded`] but runs on **exactly**
    /// `workers` pool workers, even past the physical core count. Tests
    /// and benchmarks use this to pin the dispatch width; production code
    /// should prefer the clamped entry point.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or the program was compiled for more qubits
    /// than the state.
    pub fn apply_fused_with_workers(&mut self, prog: &FusedProgram, workers: usize) {
        assert!(workers >= 1, "need at least one worker");
        assert!(
            prog.n_qubits() <= self.n_qubits,
            "program acts on more qubits than the state has"
        );
        if prog.ops().is_empty() {
            return;
        }
        let dim = self.amps.len();
        let tile_bits = tile_bits_for(self.n_qubits, workers);
        let phases = build_schedule(prog.ops(), tile_bits);
        let amps = self.amps.as_mut_ptr();
        if workers == 1 {
            // SAFETY: exclusive `&mut self`; a single worker covers every
            // group of every phase and needs no barrier.
            unsafe {
                run_schedule(amps, dim, prog.ops(), &phases, tile_bits, 0, 1, None);
            }
            return;
        }
        let shared = SharedAmps(amps);
        let shared = &shared;
        let barrier = SpinBarrier::new(workers);
        pool::run(workers, &|w| {
            // SAFETY: workers cover disjoint tiles/chunks per phase and
            // the barrier orders phases; `pool::run` returns only after
            // every worker finishes, keeping the borrow of `amps` valid.
            unsafe {
                run_schedule(
                    shared.0,
                    dim,
                    prog.ops(),
                    &phases,
                    tile_bits,
                    w,
                    workers,
                    Some(&barrier),
                );
            }
        });
    }

    /// Applies every gate of `circuit` in order, gate by gate — the
    /// unfused reference path (fusion-based evolution lives in
    /// [`StateVector::from_circuit`] / [`StateVector::apply_fused`]).
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(
            circuit.n_qubits() <= self.n_qubits,
            "circuit acts on more qubits than the state has"
        );
        CIRCUIT_SIMULATIONS.fetch_add(1, Ordering::Relaxed);
        for g in circuit.gates() {
            self.apply_gate(g);
        }
    }

    /// The Born-rule probability of each basis state (length `2^n`).
    pub fn probabilities(&self) -> Vec<f64> {
        self.probabilities_threaded(1)
    }

    /// Pool-threaded [`StateVector::probabilities`]: the `O(2^n)` scan is
    /// chunked across `threads` workers. Elementwise, so bitwise identical
    /// to the serial scan for every thread count; small registers fall
    /// back to the serial loop.
    pub fn probabilities_threaded(&self, threads: usize) -> Vec<f64> {
        let threads = threads.min(pool::available_threads());
        let dim = self.amps.len();
        if threads <= 1 || dim < (1 << 15) {
            return self.amps.iter().map(|a| a.norm_sqr()).collect();
        }
        let mut probs = vec![0.0; dim];
        let out = SharedF64(probs.as_mut_ptr());
        let out = &out;
        let amps = &self.amps;
        pool::run(threads, &|w| {
            let chunk = dim.div_ceil(threads);
            let start = (w * chunk).min(dim);
            let end = ((w + 1) * chunk).min(dim);
            for (i, a) in amps[start..end].iter().enumerate() {
                // SAFETY: workers write disjoint output ranges; the
                // dispatch completes before `probs` is read.
                unsafe { *out.0.add(start + i) = a.norm_sqr() };
            }
        });
        probs
    }

    /// The Born distribution of this state with a trailing X layer applied
    /// on the set bits of `mask`: entry `i ^ mask` holds `|amps[i]|²`.
    ///
    /// A pre-measurement X layer is a pure index permutation of the state,
    /// so this equals — bit for bit — simulating
    /// [`Circuit::with_premeasure_inversion`] on top of this state and
    /// taking [`StateVector::probabilities`], at `O(2^n)` cost and with no
    /// extra statevector. This is the primitive behind inversion-variant
    /// amortization: one base simulation serves every X-layer variant.
    ///
    /// # Panics
    ///
    /// Panics if `mask` has bits beyond the register.
    pub fn probabilities_xor(&self, mask: usize) -> Vec<f64> {
        self.probabilities_xor_threaded(mask, 1)
    }

    /// Pool-threaded [`StateVector::probabilities_xor`]. XOR with a fixed
    /// mask is a bijection, so workers scanning disjoint input chunks
    /// write disjoint output indices; the per-entry arithmetic is
    /// unchanged, keeping the result bitwise identical for every thread
    /// count. Small registers fall back to the serial loop.
    ///
    /// # Panics
    ///
    /// Panics if `mask` has bits beyond the register.
    pub fn probabilities_xor_threaded(&self, mask: usize, threads: usize) -> Vec<f64> {
        assert!(
            mask < self.amps.len(),
            "mask {mask:#x} outside the {}-qubit register",
            self.n_qubits
        );
        let threads = threads.min(pool::available_threads());
        let dim = self.amps.len();
        let mut probs = vec![0.0; dim];
        if threads <= 1 || dim < (1 << 15) {
            for (i, a) in self.amps.iter().enumerate() {
                probs[i ^ mask] = a.norm_sqr();
            }
            return probs;
        }
        let out = SharedF64(probs.as_mut_ptr());
        let out = &out;
        let amps = &self.amps;
        pool::run(threads, &|w| {
            let chunk = dim.div_ceil(threads);
            let start = (w * chunk).min(dim);
            let end = ((w + 1) * chunk).min(dim);
            for (i, a) in amps[start..end].iter().enumerate() {
                // SAFETY: XOR by `mask` maps this worker's disjoint input
                // range to a disjoint output set; the dispatch completes
                // before `probs` is read.
                unsafe { *out.0.add((start + i) ^ mask) = a.norm_sqr() };
            }
        });
        probs
    }

    /// The Born distribution of `circuit` run on `|0…0⟩`, using the
    /// trailing-X fast paths: the circuit is split by
    /// [`Circuit::trailing_x_split`], only the prefix is simulated, and the
    /// X layer is applied as an XOR permutation
    /// ([`StateVector::probabilities_xor`]). If the circuit is X-only (every
    /// basis-state preparation, and every inversion variant of one) **no
    /// statevector is built at all** — the result is a point mass, and
    /// [`simulation_count`] does not move.
    pub fn born_probabilities(circuit: &Circuit) -> Vec<f64> {
        Self::born_probabilities_threaded(circuit, 1)
    }

    /// Threaded variant of [`StateVector::born_probabilities`]; the prefix
    /// simulation *and* the XOR probability scan (if any) run on `threads`
    /// pool workers, and the prefix state's buffer is recycled through the
    /// arena.
    pub fn born_probabilities_threaded(circuit: &Circuit, threads: usize) -> Vec<f64> {
        let (prefix, mask) = circuit.trailing_x_split();
        let m = mask.index();
        if prefix.is_empty() {
            let mut probs = vec![0.0; 1usize << circuit.n_qubits()];
            probs[m] = 1.0;
            return probs;
        }
        let sv = StateVector::from_gates_threaded(circuit.n_qubits(), prefix, threads);
        let probs = sv.probabilities_xor_threaded(m, threads);
        sv.recycle();
        probs
    }

    /// The probability of measuring exactly `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s.width() != n_qubits`.
    pub fn probability_of(&self, s: BitString) -> f64 {
        assert_eq!(s.width(), self.n_qubits, "bit string width mismatch");
        self.amps[s.index()].norm_sqr()
    }

    /// Samples one measurement outcome from the Born distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> BitString {
        let mut u: f64 = rng.gen::<f64>() * self.norm_sqr();
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if u < p {
                return BitString::from_value(i as u64, self.n_qubits);
            }
            u -= p;
        }
        // Floating-point slack: return the last state.
        BitString::from_value((self.amps.len() - 1) as u64, self.n_qubits)
    }

    /// Builds an O(1)-per-draw alias sampler over the Born distribution.
    ///
    /// [`StateVector::sample`] scans the full amplitude vector per draw
    /// (`O(2^n)`), which dominates shot loops; building this table once per
    /// state (`O(2^n)`) amortizes that cost away. Draw indices with
    /// [`AliasSampler::sample`] and lift to outcomes with
    /// [`BitString::from_value`].
    pub fn sampler(&self) -> AliasSampler {
        AliasSampler::new(&self.probabilities())
    }

    /// The inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn inner_product(&self, other: &StateVector) -> C64 {
        assert_eq!(self.n_qubits, other.n_qubits, "dimension mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Expectation value of Z on `qubit`: `P(0) − P(1)`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn expectation_z(&self, qubit: usize) -> f64 {
        assert!(qubit < self.n_qubits, "qubit out of range");
        self.expectation_z_string(1usize << qubit)
    }

    /// Expectation value of a Z-Pauli string: `⟨Z_{i1} Z_{i2} …⟩` where the
    /// set bits of `mask` select the qubits. The QAOA cost function is a
    /// sum of such two-qubit terms, one per graph edge.
    ///
    /// `mask = 0` is the identity (expectation 1).
    ///
    /// # Panics
    ///
    /// Panics if `mask` has bits beyond the register.
    pub fn expectation_z_string(&self, mask: usize) -> f64 {
        assert!(
            mask < self.amps.len(),
            "mask {mask:#x} outside the {}-qubit register",
            self.n_qubits
        );
        let mut ez = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            // Parity of the masked bits decides the sign.
            if (i & mask).count_ones().is_multiple_of(2) {
                ez += p;
            } else {
                ez -= p;
            }
        }
        ez
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_1_SQRT_2;

    const TOL: f64 = 1e-10;

    #[test]
    fn zero_state() {
        let sv = StateVector::zero(3);
        assert_eq!(sv.amplitudes().len(), 8);
        assert!((sv.probability_of(BitString::zeros(3)) - 1.0).abs() < TOL);
        assert!((sv.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn basis_state() {
        let s: BitString = "101".parse().unwrap();
        let sv = StateVector::basis(s);
        assert!((sv.probability_of(s) - 1.0).abs() < TOL);
    }

    #[test]
    fn x_flips_each_qubit() {
        for q in 0..4 {
            let mut sv = StateVector::zero(4);
            sv.apply_gate(&Gate::X(q));
            let expect = BitString::zeros(4).with_bit(q, true);
            assert!((sv.probability_of(expect) - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn h_makes_equal_superposition() {
        let mut sv = StateVector::zero(1);
        sv.apply_gate(&Gate::H(0));
        assert!((sv.amplitudes()[0].re - FRAC_1_SQRT_2).abs() < TOL);
        assert!((sv.amplitudes()[1].re - FRAC_1_SQRT_2).abs() < TOL);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVector::from_circuit(&c);
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < TOL);
        assert!((p[3] - 0.5).abs() < TOL);
        assert!(p[1] < TOL && p[2] < TOL);
    }

    #[test]
    fn ghz_five_qubits() {
        let mut c = Circuit::new(5);
        c.h(0);
        for q in 0..4 {
            c.cx(q, q + 1);
        }
        let sv = StateVector::from_circuit(&c);
        assert!((sv.probability_of(BitString::zeros(5)) - 0.5).abs() < TOL);
        assert!((sv.probability_of(BitString::ones(5)) - 0.5).abs() < TOL);
    }

    #[test]
    fn cx_control_target_orientation() {
        // Control q1 set, target q0: |q1=1,q0=0⟩ -> |11⟩.
        let mut sv = StateVector::basis("10".parse().unwrap());
        sv.apply_gate(&Gate::Cx {
            control: 1,
            target: 0,
        });
        assert!((sv.probability_of("11".parse().unwrap()) - 1.0).abs() < TOL);
        // Control q1 clear: |01⟩ unchanged.
        let mut sv = StateVector::basis("01".parse().unwrap());
        sv.apply_gate(&Gate::Cx {
            control: 1,
            target: 0,
        });
        assert!((sv.probability_of("01".parse().unwrap()) - 1.0).abs() < TOL);
    }

    #[test]
    fn cx_nonadjacent_qubits() {
        let mut sv = StateVector::basis("001".parse().unwrap());
        sv.apply_gate(&Gate::Cx {
            control: 0,
            target: 2,
        });
        assert!((sv.probability_of("101".parse().unwrap()) - 1.0).abs() < TOL);
    }

    #[test]
    fn swap_exchanges() {
        let mut sv = StateVector::basis("01".parse().unwrap());
        sv.apply_gate(&Gate::Swap { a: 0, b: 1 });
        assert!((sv.probability_of("10".parse().unwrap()) - 1.0).abs() < TOL);
    }

    #[test]
    fn circuit_then_inverse_is_identity() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .rz(1, 0.7)
            .ry(2, 1.3)
            .cz(1, 2)
            .rzz(0, 2, 0.5);
        let mut sv = StateVector::zero(3);
        sv.apply_circuit(&c);
        sv.apply_circuit(&c.inverse());
        assert!((sv.probability_of(BitString::zeros(3)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn norm_preserved_by_gates() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).cx(0, 2).rzz(1, 3, 0.9).ry(2, 0.2).cz(2, 3);
        let sv = StateVector::from_circuit(&c);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVector::from_circuit(&c);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut count00 = 0;
        let mut count11 = 0;
        for _ in 0..n {
            let s = sv.sample(&mut rng);
            match s.value() {
                0b00 => count00 += 1,
                0b11 => count11 += 1,
                other => panic!("impossible outcome {other:b}"),
            }
        }
        let f = count00 as f64 / n as f64;
        assert!((f - 0.5).abs() < 0.02, "f = {f}");
        assert_eq!(count00 + count11, n);
    }

    #[test]
    fn alias_sampler_respects_support() {
        let mut c = Circuit::new(3);
        c.h(0);
        for q in 0..2 {
            c.cx(q, q + 1);
        }
        let sv = StateVector::from_circuit(&c);
        let sampler = sv.sampler();
        let mut rng = StdRng::seed_from_u64(21);
        let mut zeros = 0u64;
        let n = 20_000;
        for _ in 0..n {
            match sampler.sample(&mut rng) {
                0 => zeros += 1,
                0b111 => {}
                other => panic!("impossible outcome {other:b}"),
            }
        }
        let f = zeros as f64 / n as f64;
        assert!((f - 0.5).abs() < 0.02, "f = {f}");
    }

    #[test]
    fn expectation_z() {
        let sv = StateVector::zero(2);
        assert!((sv.expectation_z(0) - 1.0).abs() < TOL);
        let mut sv = StateVector::zero(2);
        sv.apply_gate(&Gate::X(1));
        assert!((sv.expectation_z(1) + 1.0).abs() < TOL);
        let mut sv = StateVector::zero(1);
        sv.apply_gate(&Gate::H(0));
        assert!(sv.expectation_z(0).abs() < TOL);
    }

    #[test]
    fn z_string_expectations() {
        // |11⟩: ⟨Z0⟩ = ⟨Z1⟩ = −1, ⟨Z0 Z1⟩ = +1.
        let sv = StateVector::basis("11".parse().unwrap());
        assert!((sv.expectation_z_string(0b01) + 1.0).abs() < TOL);
        assert!((sv.expectation_z_string(0b10) + 1.0).abs() < TOL);
        assert!((sv.expectation_z_string(0b11) - 1.0).abs() < TOL);
        assert!((sv.expectation_z_string(0) - 1.0).abs() < TOL);
        // Bell state: single-qubit Z vanishes, the correlator is +1.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let bell = StateVector::from_circuit(&c);
        assert!(bell.expectation_z_string(0b01).abs() < TOL);
        assert!((bell.expectation_z_string(0b11) - 1.0).abs() < TOL);
    }

    #[test]
    fn z_string_recovers_qaoa_cost() {
        // cut(s) = Σ_edges (1 - Z_a Z_b)/2, so the expected cut equals the
        // probability-weighted sum — cross-check against direct counting.
        let mut c = Circuit::new(3);
        c.h(0).ry(1, 0.7).cx(0, 2).rzz(1, 2, 0.4);
        let sv = StateVector::from_circuit(&c);
        let edges = [(0usize, 1usize), (1, 2), (0, 2)];
        let via_z: f64 = edges
            .iter()
            .map(|&(a, b)| 0.5 * (1.0 - sv.expectation_z_string((1 << a) | (1 << b))))
            .sum();
        let via_counting: f64 = sv
            .probabilities()
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let crossing = edges
                    .iter()
                    .filter(|&&(a, b)| ((i >> a) & 1) != ((i >> b) & 1))
                    .count();
                p * crossing as f64
            })
            .sum();
        assert!((via_z - via_counting).abs() < 1e-9);
    }

    #[test]
    fn fidelity_and_inner_product() {
        let a = StateVector::zero(2);
        let b = StateVector::basis("01".parse().unwrap());
        assert!(a.fidelity(&b) < TOL);
        assert!((a.fidelity(&a) - 1.0).abs() < TOL);
    }

    #[test]
    fn normalize_rescales() {
        let mut sv = StateVector::zero(1);
        sv.amps[0] = C64::real(2.0);
        sv.normalize();
        assert!((sv.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn from_amplitudes_validates() {
        let v = vec![
            C64::real(FRAC_1_SQRT_2),
            C64::ZERO,
            C64::ZERO,
            C64::real(FRAC_1_SQRT_2),
        ];
        let sv = StateVector::from_amplitudes(v);
        assert_eq!(sv.n_qubits(), 2);
    }

    #[test]
    #[should_panic(expected = "not normalized")]
    fn from_amplitudes_rejects_unnormalized() {
        StateVector::from_amplitudes(vec![C64::ONE, C64::ONE]);
    }

    #[test]
    fn rzz_phases_are_relative_only() {
        // Rzz on a basis state changes only global phase: probabilities fixed.
        let mut sv = StateVector::basis("11".parse().unwrap());
        sv.apply_gate(&Gate::Rzz {
            a: 0,
            b: 1,
            theta: 1.234,
        });
        assert!((sv.probability_of("11".parse().unwrap()) - 1.0).abs() < TOL);
    }

    #[test]
    fn two_qubit_gate_matches_composition() {
        // CZ = H(target) CX H(target)
        let mut c1 = Circuit::new(2);
        c1.h(0).h(1).cz(0, 1);
        let mut c2 = Circuit::new(2);
        c2.h(0).h(1).h(1).cx(0, 1).h(1);
        let a = StateVector::from_circuit(&c1);
        let b = StateVector::from_circuit(&c2);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-9);
    }
}
