//! Quantum circuits: ordered gate lists with builder-style construction.
//!
//! A [`Circuit`] is the program in the paper's NISQ execution model: it is
//! prepared on `|0…0⟩`, executed, and its qubits are measured in the
//! computational basis at the end. Invert-and-Measure transforms are
//! expressed as circuit rewrites that append X gates immediately before
//! measurement (see [`Circuit::with_premeasure_inversion`]).

use crate::bitstring::BitString;
use crate::gate::Gate;
use std::fmt;

/// An ordered sequence of gates over a fixed qubit register.
///
/// # Examples
///
/// Build a Bell pair and inspect its structure:
///
/// ```
/// use qsim::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.two_qubit_gate_count(), 1);
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is 0 or exceeds [`crate::bitstring::MAX_WIDTH`].
    pub fn new(n_qubits: usize) -> Self {
        assert!(
            (1..=crate::bitstring::MAX_WIDTH).contains(&n_qubits),
            "circuit must have between 1 and 64 qubits"
        );
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// The number of qubits in the register.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit contains no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in execution order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a gate, validating its qubit indices.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit outside the register, or if a
    /// two-qubit gate uses the same qubit twice.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        let qs = gate.qubits();
        for &q in &qs {
            assert!(
                q < self.n_qubits,
                "gate {gate} references qubit {q} but circuit has {} qubits",
                self.n_qubits
            );
        }
        if qs.len() == 2 {
            assert!(
                qs[0] != qs[1],
                "two-qubit gate {gate} uses the same qubit twice"
            );
        }
        self.gates.push(gate);
        self
    }

    /// Appends all gates of `other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` has more qubits than `self`.
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.n_qubits <= self.n_qubits,
            "cannot append a {}-qubit circuit to a {}-qubit circuit",
            other.n_qubits,
            self.n_qubits
        );
        for &g in &other.gates {
            self.push(g);
        }
        self
    }

    // --- builder shorthands -------------------------------------------------

    /// Appends a Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X(q))
    }

    /// Appends a Pauli-Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y(q))
    }

    /// Appends a Pauli-Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z(q))
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H(q))
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::S(q))
    }

    /// Appends an Rx rotation.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rx { qubit: q, theta })
    }

    /// Appends an Ry rotation.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Ry { qubit: q, theta })
    }

    /// Appends an Rz rotation.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rz { qubit: q, theta })
    }

    /// Appends a phase gate.
    pub fn p(&mut self, q: usize, lambda: f64) -> &mut Self {
        self.push(Gate::Phase { qubit: q, lambda })
    }

    /// Appends a CNOT.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cx { control, target })
    }

    /// Appends a controlled-Z.
    pub fn cz(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cz { control, target })
    }

    /// Appends a ZZ interaction (QAOA cost edge).
    pub fn rzz(&mut self, a: usize, b: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rzz { a, b, theta })
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap { a, b })
    }

    // --- analysis -----------------------------------------------------------

    /// The number of two-qubit gates — the dominant gate-error contributors
    /// on NISQ hardware.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// The number of single-qubit gates.
    pub fn single_qubit_gate_count(&self) -> usize {
        self.len() - self.two_qubit_gate_count()
    }

    /// The circuit depth: length of the longest qubit-wise dependency chain.
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.n_qubits];
        for g in &self.gates {
            let qs = g.qubits();
            let level = qs.iter().map(|&q| frontier[q]).max().unwrap_or(0) + 1;
            for q in qs {
                frontier[q] = level;
            }
        }
        frontier.into_iter().max().unwrap_or(0)
    }

    /// The inverse circuit (gates reversed, each inverted). Running
    /// `c.then(c.inverse())` on any state returns it to that state.
    #[must_use]
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::new(self.n_qubits);
        for g in self.gates.iter().rev() {
            inv.push(g.inverse());
        }
        inv
    }

    /// Returns a copy of this circuit with X gates appended on every qubit
    /// where `inversion` has a 1 bit — the Invert-and-Measure transform.
    ///
    /// The measured outputs of the transformed circuit must be XOR-corrected
    /// by the same string to recover results in the original basis.
    ///
    /// # Panics
    ///
    /// Panics if `inversion.width() != self.n_qubits()`.
    #[must_use]
    pub fn with_premeasure_inversion(&self, inversion: BitString) -> Circuit {
        assert_eq!(
            inversion.width(),
            self.n_qubits,
            "inversion string width must match circuit"
        );
        let mut c = self.clone();
        for q in inversion.iter_ones() {
            c.x(q);
        }
        c
    }

    /// Splits the circuit into its prefix and the XOR mask of its trailing
    /// X layer: the returned slice holds every gate before the final run of
    /// X gates, and the mask has bit `q` set iff an odd number of trailing
    /// X gates act on qubit `q`.
    ///
    /// Because a pre-measurement X layer only permutes basis states, the
    /// Born distribution of the full circuit equals the prefix's
    /// distribution with indices XOR-ed by the mask
    /// ([`crate::StateVector::probabilities_xor`]). Every
    /// [`Circuit::with_premeasure_inversion`] variant of a base circuit
    /// shares the same prefix, which is what lets the execution engine
    /// simulate the base exactly once per inversion family. For an X-only
    /// circuit (e.g. [`Circuit::basis_state_preparation`]) the prefix is
    /// empty and the distribution is a point mass at the mask.
    ///
    /// # Examples
    ///
    /// ```
    /// use qsim::Circuit;
    ///
    /// let mut c = Circuit::new(3);
    /// c.h(0).cx(0, 1);
    /// let inverted = c.with_premeasure_inversion("110".parse()?);
    /// let (prefix, mask) = inverted.trailing_x_split();
    /// assert_eq!(prefix, c.gates());
    /// assert_eq!(mask, "110".parse()?);
    /// # Ok::<(), qsim::ParseBitStringError>(())
    /// ```
    pub fn trailing_x_split(&self) -> (&[Gate], BitString) {
        let mut end = self.gates.len();
        let mut mask = 0u64;
        while end > 0 {
            let Gate::X(q) = self.gates[end - 1] else {
                break;
            };
            mask ^= 1u64 << q;
            end -= 1;
        }
        (
            &self.gates[..end],
            BitString::from_value(mask, self.n_qubits),
        )
    }

    /// Returns a circuit that prepares the computational basis state `s`
    /// from `|0…0⟩` (X on every set bit).
    ///
    /// # Panics
    ///
    /// Panics if `s.width()` is zero (cannot happen for a valid
    /// [`BitString`]).
    pub fn basis_state_preparation(s: BitString) -> Circuit {
        let mut c = Circuit::new(s.width());
        for q in s.iter_ones() {
            c.x(q);
        }
        c
    }

    /// Returns a circuit placing all `n` qubits in the uniform superposition
    /// (H on every qubit) — the preparation used by the paper's Equal
    /// Superposition Characterization Technique.
    pub fn uniform_superposition(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        c
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit[{} qubits, {} gates]:",
            self.n_qubits,
            self.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(2, 0.5);
        assert_eq!(c.len(), 4);
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.single_qubit_gate_count(), 2);
    }

    #[test]
    fn depth_counts_parallel_layers() {
        let mut c = Circuit::new(3);
        // Layer 1: H on all three (parallel). Layer 2: CX(0,1). Layer 3: CX(1,2).
        c.h(0).h(1).h(2).cx(0, 1).cx(1, 2);
        assert_eq!(c.depth(), 3);
        assert_eq!(Circuit::new(4).depth(), 0);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).rz(0, 0.4).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.len(), 3);
        assert_eq!(
            inv.gates()[0],
            Gate::Cx {
                control: 0,
                target: 1
            }
        );
        assert_eq!(
            inv.gates()[1],
            Gate::Rz {
                qubit: 0,
                theta: -0.4
            }
        );
        assert_eq!(inv.gates()[2], Gate::H(0));
    }

    #[test]
    fn premeasure_inversion_appends_x_on_set_bits() {
        let c = Circuit::new(4);
        let inv = c.with_premeasure_inversion("1010".parse().unwrap());
        assert_eq!(inv.len(), 2);
        assert_eq!(inv.gates()[0], Gate::X(1));
        assert_eq!(inv.gates()[1], Gate::X(3));
    }

    #[test]
    fn premeasure_inversion_zero_string_is_noop() {
        let mut c = Circuit::new(3);
        c.h(0);
        let inv = c.with_premeasure_inversion(BitString::zeros(3));
        assert_eq!(inv, c);
    }

    #[test]
    fn trailing_x_split_cases() {
        // Duplicate trailing X gates on one qubit cancel in the mask.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).x(2).x(0).x(2);
        let (prefix, mask) = c.trailing_x_split();
        assert_eq!(prefix, &c.gates()[..2]);
        assert_eq!(mask, "001".parse().unwrap());
        // X-only circuit: empty prefix, full mask.
        let prep = Circuit::basis_state_preparation("101".parse().unwrap());
        let (prefix, mask) = prep.trailing_x_split();
        assert!(prefix.is_empty());
        assert_eq!(mask, "101".parse().unwrap());
        // No trailing X at all.
        let mut c = Circuit::new(2);
        c.x(0).h(1);
        let (prefix, mask) = c.trailing_x_split();
        assert_eq!(prefix.len(), 2);
        assert_eq!(mask, BitString::zeros(2));
    }

    #[test]
    fn basis_preparation() {
        let c = Circuit::basis_state_preparation("101".parse().unwrap());
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.gates(), &[Gate::X(0), Gate::X(2)]);
    }

    #[test]
    fn uniform_superposition_has_h_everywhere() {
        let c = Circuit::uniform_superposition(5);
        assert_eq!(c.len(), 5);
        assert!(c.gates().iter().all(|g| matches!(g, Gate::H(_))));
    }

    #[test]
    fn append_merges() {
        let mut a = Circuit::new(3);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.append(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "references qubit")]
    fn out_of_range_gate_panics() {
        Circuit::new(2).x(2);
    }

    #[test]
    #[should_panic(expected = "same qubit twice")]
    fn degenerate_two_qubit_gate_panics() {
        Circuit::new(2).cx(1, 1);
    }

    #[test]
    #[should_panic(expected = "cannot append")]
    fn append_larger_circuit_panics() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        a.append(&b);
    }

    #[test]
    fn extend_from_iterator() {
        let mut c = Circuit::new(2);
        c.extend([
            Gate::H(0),
            Gate::Cx {
                control: 0,
                target: 1,
            },
        ]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = c.to_string();
        assert!(s.contains("h q0"));
        assert!(s.contains("cx q0,q1"));
    }
}
