//! Gate fusion: compiling a circuit into a short list of specialized kernels.
//!
//! Applying a circuit gate-by-gate streams the full `2^n` amplitude vector
//! through memory once per gate. A layered circuit (H wall, CX chain, Rz
//! layer) therefore pays ~3 memory passes per qubit per layer even though
//! the arithmetic per amplitude is tiny. Fusion shrinks the pass count two
//! ways:
//!
//! 1. **Run merging** — consecutive single-qubit gates on the same qubit are
//!    multiplied into one 2×2 matrix before anything touches the amplitudes.
//! 2. **Absorption** — a pending 2×2 is folded into the next two-qubit gate
//!    on that qubit as part of a fused 4×4 block (`M₄ · (P_hi ⊗ P_lo)`), and
//!    trailing singles are folded back into the *last* two-qubit gate that
//!    touched their qubit. Consecutive two-qubit gates on the same pair
//!    collapse into one 4×4.
//!
//! Absorption is **cost-aware**: every supported two-qubit gate is monomial
//! (a near-free permutation kernel), and folding a dense single into one
//! upgrades it to a dense 4×4 — twice the flops of a standalone dense 2×2.
//! A dense pending is therefore absorbed only when the block is dense
//! anyway or both legs are dense (flop-neutral, one fewer pass); monomial
//! pendings always absorb for free.
//!
//! The result is a [`FusedProgram`]: roughly one kernel per two-qubit gate.
//! Each fused matrix is classified once, so structure that survives fusion
//! is exploited at apply time:
//!
//! * **monomial** matrices (one non-zero entry per row/column — all
//!   diagonal gates, X/Y, CX/CZ/Swap and products thereof) become index
//!   permutations with phase multiplies;
//! * everything else runs the dense 2×2/4×4 kernel.
//!
//! Classification tests entries against *exact* zero: gate constructors emit
//! exact zeros and products of monomial matrices keep them, so X stays a
//! pure swap and Rz stays a pure phase multiply bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use qsim::fuse::FusedProgram;
//! use qsim::{Circuit, StateVector};
//!
//! let mut c = Circuit::new(3);
//! c.h(0).h(1).h(2).cx(0, 1).rz(1, 0.3).cx(1, 2);
//! let prog = FusedProgram::from_circuit(&c);
//! assert!(prog.n_ops() <= 3); // 6 gates collapse into ≤ 3 kernels
//! let mut sv = StateVector::zero(3);
//! sv.apply_fused(&prog);
//! let mut reference = StateVector::zero(3);
//! reference.apply_circuit(&c);
//! assert!((sv.fidelity(&reference) - 1.0).abs() < 1e-12);
//! ```

use crate::c64::C64;
use crate::circuit::Circuit;
use crate::gate::{Gate, Matrix2, Matrix4};

/// One fused kernel invocation over one or two qubits.
///
/// Two-qubit variants are stored in canonical orientation `lo < hi` with
/// matrix basis index `2·bit(hi) + bit(lo)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedOp {
    /// Monomial single-qubit op: `out[perm[c]] = ph[c] · in[c]` over the
    /// two amplitudes of each qubit-`q` pair. Covers diagonal gates
    /// (`perm = [0, 1]`) and X/Y-like antidiagonals (`perm = [1, 0]`).
    Mono1 {
        /// Target qubit.
        q: usize,
        /// Row index each column maps to.
        perm: [u8; 2],
        /// Phase factor applied to each column.
        ph: [C64; 2],
    },
    /// Dense single-qubit 2×2 multiply.
    Dense1 {
        /// Target qubit.
        q: usize,
        /// The fused 2×2 unitary.
        m: Matrix2,
    },
    /// Monomial two-qubit op: `out[perm[c]] = ph[c] · in[c]` over each
    /// 4-amplitude group. Covers CX/CZ/Rzz/Swap and monomial products.
    Mono2 {
        /// Lower-indexed qubit (matrix basis bit 0).
        lo: usize,
        /// Higher-indexed qubit (matrix basis bit 1).
        hi: usize,
        /// Row index each column maps to.
        perm: [u8; 4],
        /// Phase factor applied to each column.
        ph: [C64; 4],
    },
    /// Dense two-qubit 4×4 multiply.
    Dense2 {
        /// Lower-indexed qubit (matrix basis bit 0).
        lo: usize,
        /// Higher-indexed qubit (matrix basis bit 1).
        hi: usize,
        /// The fused 4×4 unitary.
        m: Matrix4,
    },
    /// Factored two-qubit block applied in **one pass**: dense 2×2 legs
    /// followed by a monomial core, `Mono(perm, ph) · (mhi ⊗ mlo)`.
    ///
    /// This is how a dense single-qubit run riding into a monomial
    /// two-qubit gate (e.g. `H` then `CX`) is executed without either a
    /// second memory pass (standalone 2×2) or a dense 4×4 upgrade (2× the
    /// flops): each 4-amplitude group gets the 2×2 legs applied pairwise
    /// (8 multiplies when one leg is identity) and is then permuted/phased
    /// in place of the full 16-multiply dense block.
    Fact2 {
        /// Lower-indexed qubit (matrix basis bit 0).
        lo: usize,
        /// Higher-indexed qubit (matrix basis bit 1).
        hi: usize,
        /// Dense 2×2 applied to the `lo` leg first (identity to skip).
        mlo: Matrix2,
        /// Dense 2×2 applied to the `hi` leg first (identity to skip).
        mhi: Matrix2,
        /// Row index each column maps to in the monomial core.
        perm: [u8; 4],
        /// Phase factor applied to each column by the monomial core.
        ph: [C64; 4],
    },
}

impl FusedOp {
    /// The number of qubits the op acts on (1 or 2).
    #[inline]
    pub fn arity(&self) -> usize {
        match self {
            FusedOp::Mono1 { .. } | FusedOp::Dense1 { .. } => 1,
            FusedOp::Mono2 { .. } | FusedOp::Dense2 { .. } | FusedOp::Fact2 { .. } => 2,
        }
    }

    /// The qubits the op acts on.
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            FusedOp::Mono1 { q, .. } | FusedOp::Dense1 { q, .. } => vec![q],
            FusedOp::Mono2 { lo, hi, .. }
            | FusedOp::Dense2 { lo, hi, .. }
            | FusedOp::Fact2 { lo, hi, .. } => vec![lo, hi],
        }
    }
}

/// A circuit compiled into fused, classified kernels.
///
/// Built with [`FusedProgram::from_circuit`] / [`FusedProgram::from_gates`]
/// and executed by [`StateVector::apply_fused`](crate::StateVector::apply_fused)
/// or [`StateVector::apply_fused_threaded`](crate::StateVector::apply_fused_threaded).
#[derive(Debug, Clone, PartialEq)]
pub struct FusedProgram {
    n_qubits: usize,
    ops: Vec<FusedOp>,
}

/// Builder-internal op: qubits + unclassified fused matrices.
enum RawOp {
    One {
        q: usize,
        m: Matrix2,
    },
    Two {
        lo: usize,
        hi: usize,
        m: Matrix4,
    },
    Fact {
        lo: usize,
        hi: usize,
        mlo: Matrix2,
        mhi: Matrix2,
        core: Matrix4,
    },
}

impl RawOp {
    /// Multiplies a factored op out into its full 4×4 matrix.
    fn flatten4(&self) -> Matrix4 {
        match self {
            RawOp::Two { m, .. } => *m,
            RawOp::Fact { mlo, mhi, core, .. } => mul4(core, &kron(mhi, mlo)),
            RawOp::One { .. } => unreachable!("flatten4 on a single-qubit op"),
        }
    }
}

impl FusedProgram {
    /// Fuses a whole circuit.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        Self::from_gates(circuit.n_qubits(), circuit.gates())
    }

    /// Fuses a gate slice over an `n_qubits` register (useful for circuit
    /// prefixes, e.g. after [`Circuit::trailing_x_split`]).
    ///
    /// # Panics
    ///
    /// Panics if any gate references a qubit `>= n_qubits`.
    pub fn from_gates(n_qubits: usize, gates: &[Gate]) -> Self {
        // One pending 2×2 per qubit, accumulated until a two-qubit gate (or
        // the end of the circuit) absorbs it.
        let mut pending: Vec<Option<Matrix2>> = vec![None; n_qubits];
        // Index into `raw` of the most recent two-qubit op touching q.
        let mut last_two: Vec<Option<usize>> = vec![None; n_qubits];
        let mut raw: Vec<RawOp> = Vec::new();

        for gate in gates {
            let qs = gate.qubits();
            for &q in &qs {
                assert!(
                    q < n_qubits,
                    "gate {gate} out of range for {n_qubits} qubits"
                );
            }
            if !gate.is_two_qubit() {
                let q = qs[0];
                let m = gate.matrix2();
                pending[q] = Some(match pending[q] {
                    Some(p) => mul2(&m, &p),
                    None => m,
                });
                continue;
            }
            let (lo, hi, mut m) = canonical4(gate, qs[0], qs[1]);

            // Cost-aware absorption. Every supported two-qubit gate is
            // monomial (CX/CZ/Rzz/Swap), so its bare kernel is near-free.
            // Monomial pendings fold into the gate matrix for nothing (a
            // monomial product stays monomial), but a *dense* pending would
            // upgrade the block to a dense 4×4 — 2× the flops of a
            // standalone dense 2×2. Dense pendings are instead carried as
            // factored legs ([`FusedOp::Fact2`]): still one memory pass,
            // still dense-2×2 flops. The legs commute past each other, so
            // `M₄ · (P_hi ⊗ P_lo) = (M₄ · mono_part) · (dense legs)`.
            let mut mlo = IDENTITY2;
            let mut mhi = IDENTITY2;
            let mut legs_dense = false;
            let mut mono_legs = None::<(Matrix2, Matrix2)>;
            for (q, leg) in [(lo, &mut mlo), (hi, &mut mhi)] {
                let Some(p) = pending[q].take() else { continue };
                if monomial2(&p).is_some() {
                    let (ml, mh) = mono_legs.get_or_insert((IDENTITY2, IDENTITY2));
                    *(if q == lo { ml } else { mh }) = p;
                } else {
                    *leg = p;
                    legs_dense = true;
                }
            }
            if let Some((ml, mh)) = mono_legs {
                m = mul4(&m, &kron(&mh, &ml));
            }
            // Collapse consecutive two-qubit ops on the same pair: the pass
            // saved always beats the (possibly denser) combined block.
            // Sound because `last_two` guarantees no op between raw[i] and
            // here touched either qubit. A pure monomial arrival folds into
            // a factored predecessor's core; anything else multiplies out.
            let collapse = match (last_two[lo], last_two[hi]) {
                (Some(i), Some(j)) if i == j => Some(i),
                _ => None,
            };
            if let Some(i) = collapse {
                match &mut raw[i] {
                    RawOp::Fact { core, .. } if !legs_dense => {
                        *core = mul4(&m, core);
                    }
                    prev => {
                        let mut full = m;
                        if legs_dense {
                            full = mul4(&full, &kron(&mhi, &mlo));
                        }
                        *prev = RawOp::Two {
                            lo,
                            hi,
                            m: mul4(&full, &prev.flatten4()),
                        };
                    }
                }
                continue;
            }
            last_two[lo] = Some(raw.len());
            last_two[hi] = Some(raw.len());
            if legs_dense && monomial4(&m).is_some() {
                raw.push(RawOp::Fact {
                    lo,
                    hi,
                    mlo,
                    mhi,
                    core: m,
                });
            } else {
                if legs_dense {
                    m = mul4(&m, &kron(&mhi, &mlo));
                }
                raw.push(RawOp::Two { lo, hi, m });
            }
        }

        // Flush leftover singles: fold back into the last two-qubit op on
        // that qubit (everything in between is disjoint from q, so the
        // single commutes back) when that keeps the block's kernel cost —
        // monomial singles fold anywhere, dense singles fold into dense
        // blocks and flatten factored ones (flop-neutral, one fewer pass).
        // A dense single over a bare monomial block is emitted standalone.
        for q in 0..n_qubits {
            let Some(p) = pending[q].take() else { continue };
            if is_identity2(&p) {
                continue;
            }
            let p_mono = monomial2(&p).is_some();
            let folded = last_two[q].is_some_and(|i| {
                let (op_lo, op_hi) = match &raw[i] {
                    RawOp::Two { lo, hi, .. } | RawOp::Fact { lo, hi, .. } => (*lo, *hi),
                    RawOp::One { .. } => return false,
                };
                let expanded = if q == op_lo {
                    kron(&IDENTITY2, &p)
                } else {
                    kron(&p, &IDENTITY2)
                };
                match &mut raw[i] {
                    RawOp::Fact { core, .. } if p_mono => {
                        *core = mul4(&expanded, core);
                        true
                    }
                    RawOp::Two { m, .. } if p_mono || monomial4(m).is_none() => {
                        *m = mul4(&expanded, m);
                        true
                    }
                    prev @ RawOp::Fact { .. } => {
                        let m = mul4(&expanded, &prev.flatten4());
                        *prev = RawOp::Two {
                            lo: op_lo,
                            hi: op_hi,
                            m,
                        };
                        true
                    }
                    _ => false,
                }
            });
            if !folded {
                raw.push(RawOp::One { q, m: p });
            }
        }

        let ops = raw.into_iter().map(classify).collect();
        FusedProgram { n_qubits, ops }
    }

    /// The register width the program was compiled for.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The fused kernel ops in execution order.
    #[inline]
    pub fn ops(&self) -> &[FusedOp] {
        &self.ops
    }

    /// The number of fused kernel invocations.
    #[inline]
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }
}

const IDENTITY2: Matrix2 = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]];

#[inline]
fn is_zero(z: C64) -> bool {
    z.re == 0.0 && z.im == 0.0
}

pub(crate) fn is_identity2(m: &Matrix2) -> bool {
    m[0][0] == C64::ONE && m[1][1] == C64::ONE && is_zero(m[0][1]) && is_zero(m[1][0])
}

/// `a · b` for 2×2 complex matrices.
pub fn mul2(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    let mut out = [[C64::ZERO; 2]; 2];
    for (r, row) in out.iter_mut().enumerate() {
        for (c, out_rc) in row.iter_mut().enumerate() {
            *out_rc = a[r][0] * b[0][c] + a[r][1] * b[1][c];
        }
    }
    out
}

/// `a · b` for 4×4 complex matrices.
pub fn mul4(a: &Matrix4, b: &Matrix4) -> Matrix4 {
    let mut out = [[C64::ZERO; 4]; 4];
    for (r, row) in out.iter_mut().enumerate() {
        for (c, out_rc) in row.iter_mut().enumerate() {
            let mut acc = C64::ZERO;
            for k in 0..4 {
                acc += a[r][k] * b[k][c];
            }
            *out_rc = acc;
        }
    }
    out
}

/// Kronecker product in the simulator's basis convention: index
/// `2·bit(hi) + bit(lo)`, so `kron(hi_m, lo_m)[2r_h + r_l][2c_h + c_l] =
/// hi_m[r_h][c_h] · lo_m[r_l][c_l]`.
pub fn kron(hi_m: &Matrix2, lo_m: &Matrix2) -> Matrix4 {
    let mut out = [[C64::ZERO; 4]; 4];
    for rh in 0..2 {
        for rl in 0..2 {
            for ch in 0..2 {
                for cl in 0..2 {
                    out[2 * rh + rl][2 * ch + cl] = hi_m[rh][ch] * lo_m[rl][cl];
                }
            }
        }
    }
    out
}

/// Reorients a two-qubit gate's matrix into canonical `(lo, hi)` form.
///
/// [`Gate::matrix4`] uses basis index `2·bit(qb) + bit(qa)` where
/// `qa = qubits()[0]`; when `qa > qb` the two basis bits are swapped.
fn canonical4(gate: &Gate, qa: usize, qb: usize) -> (usize, usize, Matrix4) {
    let m = gate.matrix4();
    if qa < qb {
        (qa, qb, m)
    } else {
        // Swap the roles of the two basis bits: index map 1 ↔ 2.
        const S: [usize; 4] = [0, 2, 1, 3];
        let mut out = [[C64::ZERO; 4]; 4];
        for (r, row) in out.iter_mut().enumerate() {
            for (c, out_rc) in row.iter_mut().enumerate() {
                *out_rc = m[S[r]][S[c]];
            }
        }
        (qb, qa, out)
    }
}

/// Detects a monomial (generalized permutation) 2×2 matrix: exactly one
/// non-zero entry per column, all in distinct rows. Returns the row
/// permutation and per-column phases.
fn monomial2(m: &Matrix2) -> Option<([u8; 2], [C64; 2])> {
    let mut perm = [0u8; 2];
    let mut ph = [C64::ZERO; 2];
    let mut rows_used = 0u8;
    for c in 0..2 {
        let mut row = None;
        for (r, mr) in m.iter().enumerate() {
            if !is_zero(mr[c]) {
                if row.is_some() {
                    return None;
                }
                row = Some(r);
            }
        }
        let r = row?;
        if rows_used & (1 << r) != 0 {
            return None;
        }
        rows_used |= 1 << r;
        perm[c] = r as u8;
        ph[c] = m[r][c];
    }
    Some((perm, ph))
}

/// 4×4 analogue of [`monomial2`].
fn monomial4(m: &Matrix4) -> Option<([u8; 4], [C64; 4])> {
    let mut perm = [0u8; 4];
    let mut ph = [C64::ZERO; 4];
    let mut rows_used = 0u8;
    for c in 0..4 {
        let mut row = None;
        for (r, mr) in m.iter().enumerate() {
            if !is_zero(mr[c]) {
                if row.is_some() {
                    return None;
                }
                row = Some(r);
            }
        }
        let r = row?;
        if rows_used & (1 << r) != 0 {
            return None;
        }
        rows_used |= 1 << r;
        perm[c] = r as u8;
        ph[c] = m[r][c];
    }
    Some((perm, ph))
}

fn classify(op: RawOp) -> FusedOp {
    match op {
        RawOp::One { q, m } => match monomial2(&m) {
            Some((perm, ph)) => FusedOp::Mono1 { q, perm, ph },
            None => FusedOp::Dense1 { q, m },
        },
        RawOp::Two { lo, hi, m } => match monomial4(&m) {
            Some((perm, ph)) => FusedOp::Mono2 { lo, hi, perm, ph },
            None => FusedOp::Dense2 { lo, hi, m },
        },
        RawOp::Fact {
            lo,
            hi,
            mlo,
            mhi,
            core,
        } => match monomial4(&core) {
            Some((perm, ph)) => FusedOp::Fact2 {
                lo,
                hi,
                mlo,
                mhi,
                perm,
                ph,
            },
            // Construction keeps cores monomial; fall back defensively.
            None => FusedOp::Dense2 {
                lo,
                hi,
                m: mul4(&core, &kron(&mhi, &mlo)),
            },
        },
    }
}

/// Classifies a single gate into its specialized kernel without fusion —
/// the dispatch path of [`StateVector::apply_gate`](crate::StateVector::apply_gate).
pub fn classify_gate(gate: &Gate) -> FusedOp {
    let qs = gate.qubits();
    if gate.is_two_qubit() {
        let (lo, hi, m) = canonical4(gate, qs[0], qs[1]);
        classify(RawOp::Two { lo, hi, m })
    } else {
        classify(RawOp::One {
            q: qs[0],
            m: gate.matrix2(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx4(a: &Matrix4, b: &Matrix4, tol: f64) -> bool {
        (0..4).all(|r| (0..4).all(|c| a[r][c].approx_eq(b[r][c], tol)))
    }

    #[test]
    fn kron_matches_definition() {
        let x = Gate::X(0).matrix2();
        let z = Gate::Z(0).matrix2();
        // kron(Z_hi, X_lo): |hi lo⟩ basis. X on lo flips bit 0, Z on hi
        // flips the sign of hi = 1 rows.
        let k = kron(&z, &x);
        assert_eq!(k[1][0], C64::ONE); // |00⟩ -> |01⟩
        assert_eq!(k[0][1], C64::ONE);
        assert_eq!(k[3][2], -C64::ONE); // |10⟩ -> |11⟩ with sign
        assert_eq!(k[2][3], -C64::ONE);
    }

    #[test]
    fn canonical_orientation_roundtrip() {
        // CX with control above target must act identically after
        // canonicalization: truth table |hi=ctl, lo=tgt⟩.
        let g = Gate::Cx {
            control: 1,
            target: 0,
        };
        let (lo, hi, m) = canonical4(&g, 1, 0);
        assert_eq!((lo, hi), (0, 1));
        // control = qubit 1 = hi bit. |10⟩ (index 2) -> |11⟩ (index 3).
        assert_eq!(m[3][2], C64::ONE);
        assert_eq!(m[0][0], C64::ONE);
        assert_eq!(m[1][1], C64::ONE);
    }

    #[test]
    fn monomial_classification() {
        assert!(monomial2(&Gate::X(0).matrix2()).is_some());
        assert!(monomial2(&Gate::Y(0).matrix2()).is_some());
        assert!(monomial2(
            &Gate::Rz {
                qubit: 0,
                theta: 0.3
            }
            .matrix2()
        )
        .is_some());
        assert!(monomial2(&Gate::H(0).matrix2()).is_none());
        assert!(monomial4(
            &Gate::Cx {
                control: 0,
                target: 1
            }
            .matrix4()
        )
        .is_some());
        assert!(monomial4(
            &Gate::Rzz {
                a: 0,
                b: 1,
                theta: 0.4
            }
            .matrix4()
        )
        .is_some());
    }

    #[test]
    fn single_qubit_runs_merge() {
        let mut c = Circuit::new(1);
        c.h(0).z(0).h(0); // HZH = X
        let prog = FusedProgram::from_circuit(&c);
        assert_eq!(prog.n_ops(), 1);
    }

    #[test]
    fn exact_self_inverse_pairs_vanish() {
        let mut c = Circuit::new(2);
        c.x(0).x(0).z(1).z(1);
        let prog = FusedProgram::from_circuit(&c);
        assert_eq!(prog.n_ops(), 0, "X·X and Z·Z fuse to exact identity");
    }

    #[test]
    fn singles_absorb_into_two_qubit_blocks() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1).rz(1, 0.3).rz(0, -0.2);
        let prog = FusedProgram::from_circuit(&c);
        assert_eq!(prog.n_ops(), 1, "everything folds into one 4×4");
    }

    #[test]
    fn consecutive_pair_gates_collapse() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cz(1, 0).swap(0, 1);
        let prog = FusedProgram::from_circuit(&c);
        assert_eq!(prog.n_ops(), 1);
        assert!(matches!(prog.ops()[0], FusedOp::Mono2 { .. }));
    }

    #[test]
    fn fused_matrix_matches_explicit_product() {
        // H on both legs then CX(0,1): the factored block, multiplied
        // out, must equal CX · (H ⊗ H).
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1);
        let prog = FusedProgram::from_circuit(&c);
        assert_eq!(prog.n_ops(), 1);
        let FusedOp::Fact2 {
            lo,
            hi,
            mlo,
            mhi,
            perm,
            ph,
        } = prog.ops()[0]
        else {
            panic!("expected a factored block, got {:?}", prog.ops()[0]);
        };
        assert_eq!((lo, hi), (0, 1));
        let mut mono = [[C64::ZERO; 4]; 4];
        for c in 0..4 {
            mono[perm[c] as usize][c] = ph[c];
        }
        let h = Gate::H(0).matrix2();
        let expect = mul4(
            &Gate::Cx {
                control: 0,
                target: 1,
            }
            .matrix4(),
            &kron(&h, &h),
        );
        let got = mul4(&mono, &kron(&mhi, &mlo));
        assert!(approx4(&got, &expect, 1e-12));
    }

    #[test]
    fn lone_dense_single_factors_into_monomial_blocks() {
        // H then CX: folding H into CX as a dense 4×4 would double the
        // flops of a standalone 2×2, and emitting it standalone would cost
        // a second memory pass. The factored block does both in one pass
        // at dense-2×2 flops.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let prog = FusedProgram::from_circuit(&c);
        assert_eq!(prog.n_ops(), 1);
        let FusedOp::Fact2 { lo, hi, mhi, .. } = prog.ops()[0] else {
            panic!("expected a factored block, got {:?}", prog.ops()[0]);
        };
        assert_eq!((lo, hi), (0, 1));
        assert!(is_identity2(&mhi), "only the lo leg carries the H");
    }

    #[test]
    fn dense_single_flattens_factored_blocks_on_collapse() {
        // A second CX on the same pair with a fresh dense pending cannot
        // stay factored (the dense single sits between the cores), so the
        // whole thing multiplies out into one dense 4×4 — still one pass.
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1).h(0).cx(0, 1);
        let prog = FusedProgram::from_circuit(&c);
        assert_eq!(prog.n_ops(), 1);
        assert!(matches!(prog.ops()[0], FusedOp::Dense2 { .. }));
    }

    #[test]
    fn monomial_arrivals_fold_into_factored_cores() {
        // Fact2 block followed by CZ on the same pair and a trailing Rz:
        // both are monomial, so they fold into the factored core and the
        // program stays a single factored pass.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).cz(0, 1).rz(1, 0.4);
        let prog = FusedProgram::from_circuit(&c);
        assert_eq!(prog.n_ops(), 1);
        assert!(matches!(prog.ops()[0], FusedOp::Fact2 { .. }));
    }

    #[test]
    fn same_pair_collapses_across_disjoint_ops() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3).cx(0, 1);
        let prog = FusedProgram::from_circuit(&c);
        // CX(0,1) twice with only the disjoint CX(2,3) in between: pair
        // tracking still sees (0,1) as the latest op on both legs, so the
        // repeats collapse (to a trivial monomial identity).
        assert_eq!(prog.n_ops(), 2);
    }

    #[test]
    fn classify_gate_specializes() {
        assert!(matches!(
            classify_gate(&Gate::X(2)),
            FusedOp::Mono1 { q: 2, .. }
        ));
        assert!(matches!(classify_gate(&Gate::H(0)), FusedOp::Dense1 { .. }));
        assert!(matches!(
            classify_gate(&Gate::Cx {
                control: 3,
                target: 1
            }),
            FusedOp::Mono2 { lo: 1, hi: 3, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_gate_panics() {
        FusedProgram::from_gates(1, &[Gate::X(1)]);
    }
}
