//! Peephole circuit optimization.
//!
//! Gate errors charge per gate, so redundant gates cost real fidelity on
//! NISQ hardware. This pass performs the standard local simplifications:
//!
//! * cancel adjacent self-inverse pairs (`X·X`, `H·H`, `CX·CX`, …),
//! * fuse adjacent rotations about the same axis (`Rz(a)·Rz(b) → Rz(a+b)`),
//! * drop rotations with (numerically) zero angle,
//!
//! iterating to a fixed point. Gates only cancel or fuse when they are
//! adjacent *on their qubits* — an intervening gate on a disjoint qubit
//! set does not block simplification, but any overlapping gate does.
//!
//! Relevant to the paper: a SIM-transformed circuit appends an X layer
//! before measurement; if the program itself ends in X gates (e.g. a basis
//! state preparation), the optimizer folds them away, which is exactly the
//! cancellation a vendor compiler would perform on the submitted job.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Repeatedly applies peephole simplifications until no rule fires.
///
/// The result is semantically equivalent to the input (up to global
/// phase) with a gate count less than or equal to the input's.
///
/// # Examples
///
/// ```
/// use qsim::{optimize, Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.x(0).x(0).h(1).rz(1, 0.3).rz(1, -0.3).cx(0, 1).cx(0, 1);
/// let opt = optimize::peephole(&c);
/// assert_eq!(opt.gates(), &[Gate::H(1)]);
/// ```
pub fn peephole(circuit: &Circuit) -> Circuit {
    let mut gates: Vec<Gate> = circuit.gates().to_vec();
    loop {
        let before = gates.len();
        gates = one_pass(gates);
        if gates.len() == before {
            break;
        }
    }
    let mut out = Circuit::new(circuit.n_qubits());
    out.extend(gates);
    out
}

/// Whether two gates act on disjoint qubit sets (and therefore commute
/// trivially).
fn disjoint(a: &Gate, b: &Gate) -> bool {
    let qa = a.qubits();
    b.qubits().iter().all(|q| !qa.contains(q))
}

/// Whether `g` is self-inverse (its square is the identity up to global
/// phase).
fn self_inverse(g: &Gate) -> bool {
    matches!(
        g,
        Gate::X(_)
            | Gate::Y(_)
            | Gate::Z(_)
            | Gate::H(_)
            | Gate::Cx { .. }
            | Gate::Cz { .. }
            | Gate::Swap { .. }
    )
}

/// Attempts to fuse two same-axis rotations; returns the fused gate (or
/// `None` if the pair does not fuse).
fn fuse(a: &Gate, b: &Gate) -> Option<Gate> {
    match (*a, *b) {
        (
            Gate::Rx {
                qubit: p,
                theta: t1,
            },
            Gate::Rx {
                qubit: q,
                theta: t2,
            },
        ) if p == q => Some(Gate::Rx {
            qubit: p,
            theta: t1 + t2,
        }),
        (
            Gate::Ry {
                qubit: p,
                theta: t1,
            },
            Gate::Ry {
                qubit: q,
                theta: t2,
            },
        ) if p == q => Some(Gate::Ry {
            qubit: p,
            theta: t1 + t2,
        }),
        (
            Gate::Rz {
                qubit: p,
                theta: t1,
            },
            Gate::Rz {
                qubit: q,
                theta: t2,
            },
        ) if p == q => Some(Gate::Rz {
            qubit: p,
            theta: t1 + t2,
        }),
        (
            Gate::Phase {
                qubit: p,
                lambda: l1,
            },
            Gate::Phase {
                qubit: q,
                lambda: l2,
            },
        ) if p == q => Some(Gate::Phase {
            qubit: p,
            lambda: l1 + l2,
        }),
        (
            Gate::Rzz {
                a: a1,
                b: b1,
                theta: t1,
            },
            Gate::Rzz {
                a: a2,
                b: b2,
                theta: t2,
            },
        ) if (a1, b1) == (a2, b2) || (a1, b1) == (b2, a2) => Some(Gate::Rzz {
            a: a1,
            b: b1,
            theta: t1 + t2,
        }),
        // S·S = Z, T·T = S, and their dagger counterparts.
        (Gate::S(p), Gate::S(q)) if p == q => Some(Gate::Z(p)),
        (Gate::Sdg(p), Gate::Sdg(q)) if p == q => Some(Gate::Z(p)),
        (Gate::T(p), Gate::T(q)) if p == q => Some(Gate::S(p)),
        (Gate::Tdg(p), Gate::Tdg(q)) if p == q => Some(Gate::Sdg(p)),
        _ => None,
    }
}

/// Whether a rotation's angle is numerically zero (drop it).
fn is_identity(g: &Gate) -> bool {
    const EPS: f64 = 1e-12;
    match *g {
        Gate::Rx { theta, .. } | Gate::Ry { theta, .. } | Gate::Rz { theta, .. } => {
            theta.abs() < EPS
        }
        Gate::Rzz { theta, .. } => theta.abs() < EPS,
        Gate::Phase { lambda, .. } => lambda.abs() < EPS,
        _ => false,
    }
}

/// Whether two gates are an exactly-cancelling pair.
fn cancels(a: &Gate, b: &Gate) -> bool {
    if self_inverse(a) && a == b {
        return true;
    }
    // S·Sdg, T·Tdg in either order.
    matches!(
        (a, b),
        (Gate::S(p), Gate::Sdg(q)) | (Gate::Sdg(p), Gate::S(q))
        | (Gate::T(p), Gate::Tdg(q)) | (Gate::Tdg(p), Gate::T(q))
            if p == q
    )
}

fn one_pass(gates: Vec<Gate>) -> Vec<Gate> {
    let mut out: Vec<Gate> = Vec::with_capacity(gates.len());
    'next_gate: for g in gates {
        if is_identity(&g) {
            continue;
        }
        // Walk back over gates on disjoint qubits to find the most recent
        // gate that shares a qubit with `g`.
        let mut idx = out.len();
        while idx > 0 {
            idx -= 1;
            let prev = out[idx];
            if disjoint(&prev, &g) {
                continue;
            }
            if cancels(&prev, &g) {
                out.remove(idx);
                continue 'next_gate;
            }
            if let Some(fused) = fuse(&prev, &g) {
                if is_identity(&fused) {
                    out.remove(idx);
                } else {
                    out[idx] = fused;
                }
                continue 'next_gate;
            }
            break; // blocked by an overlapping, non-cancelling gate
        }
        out.push(g);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVector;

    fn equivalent(a: &Circuit, b: &Circuit) {
        let fa = StateVector::from_circuit(a);
        let fb = StateVector::from_circuit(b);
        assert!(
            (fa.fidelity(&fb) - 1.0).abs() < 1e-9,
            "not equivalent: fidelity {}",
            fa.fidelity(&fb)
        );
    }

    #[test]
    fn cancels_adjacent_self_inverse_pairs() {
        let mut c = Circuit::new(2);
        c.x(0).x(0).h(1).h(1).cx(0, 1).cx(0, 1);
        let opt = peephole(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn cancellation_across_disjoint_gates() {
        let mut c = Circuit::new(3);
        c.x(0).h(1).z(2).x(0);
        let opt = peephole(&c);
        assert_eq!(opt.len(), 2);
        assert!(opt.gates().iter().all(|g| !matches!(g, Gate::X(_))));
        equivalent(&c, &opt);
    }

    #[test]
    fn overlapping_gate_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1).x(0);
        let opt = peephole(&c);
        assert_eq!(opt.len(), 3, "CX shares qubit 0 and must block");
        equivalent(&c, &opt);
    }

    #[test]
    fn rotation_fusion_and_zero_drop() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.25).rz(0, 0.50).rz(0, -0.75);
        let opt = peephole(&c);
        assert!(opt.is_empty(), "angles sum to zero: {:?}", opt.gates());
        let mut c = Circuit::new(1);
        c.rx(0, 0.2).rx(0, 0.3);
        let opt = peephole(&c);
        assert_eq!(
            opt.gates(),
            &[Gate::Rx {
                qubit: 0,
                theta: 0.5
            }]
        );
    }

    #[test]
    fn rzz_fusion_handles_operand_order() {
        let mut c = Circuit::new(2);
        c.rzz(0, 1, 0.4).rzz(1, 0, 0.6);
        let opt = peephole(&c);
        assert_eq!(opt.len(), 1);
        equivalent(&c, &opt);
    }

    #[test]
    fn s_and_t_ladders_collapse() {
        let mut c = Circuit::new(1);
        c.s(0).s(0); // -> Z
        let opt = peephole(&c);
        assert_eq!(opt.gates(), &[Gate::Z(0)]);
        let mut c = Circuit::new(1);
        c.push(Gate::T(0))
            .push(Gate::T(0))
            .push(Gate::T(0))
            .push(Gate::T(0));
        // T^4 = Z: fuses pairwise to S·S, then Z.
        let opt = peephole(&c);
        assert_eq!(opt.gates(), &[Gate::Z(0)]);
        let mut c = Circuit::new(1);
        c.s(0).push(Gate::Sdg(0));
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn inversion_layers_fold_away() {
        // The paper-relevant case: inverting a basis-state preparation
        // twice (e.g. preparing 111 then applying the full inversion
        // string) leaves nothing to execute.
        let prep = Circuit::basis_state_preparation("111".parse().unwrap());
        let double_inv = prep.with_premeasure_inversion("111".parse().unwrap());
        let opt = peephole(&double_inv);
        assert!(opt.is_empty());
    }

    #[test]
    fn random_circuits_stay_equivalent_and_never_grow() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..40 {
            let mut c = Circuit::new(3);
            for _ in 0..20 {
                match rng.gen_range(0..7u8) {
                    0 => c.x(rng.gen_range(0..3)),
                    1 => c.h(rng.gen_range(0..3)),
                    2 => c.rz(rng.gen_range(0..3), rng.gen_range(-1.0..1.0)),
                    3 => c.s(rng.gen_range(0..3)),
                    4 => {
                        let a = rng.gen_range(0..3);
                        let b = (a + 1 + rng.gen_range(0..2usize)) % 3;
                        c.cx(a, b)
                    }
                    5 => c.rx(rng.gen_range(0..3), rng.gen_range(-1.0..1.0)),
                    _ => {
                        let a = rng.gen_range(0..3);
                        let b = (a + 1 + rng.gen_range(0..2usize)) % 3;
                        c.rzz(a, b, rng.gen_range(-1.0..1.0))
                    }
                };
            }
            let opt = peephole(&c);
            assert!(opt.len() <= c.len());
            equivalent(&c, &opt);
        }
    }

    #[test]
    fn fixed_point_is_stable() {
        let mut c = Circuit::new(2);
        c.h(0).x(1).cx(0, 1).rz(1, 0.3);
        let once = peephole(&c);
        let twice = peephole(&once);
        assert_eq!(once, twice);
    }
}
