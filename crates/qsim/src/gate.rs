//! Quantum gates and their matrix representations.
//!
//! The gate set covers everything the paper's workloads need: the inversion
//! X gate at the heart of Invert-and-Measure, the Hadamard/CNOT set used by
//! Bernstein-Vazirani and GHZ preparation, and the rotation + CZ/CX set used
//! by QAOA cost and mixer layers.

use crate::c64::C64;
use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;

/// A 2×2 complex matrix in row-major order: `[[a, b], [c, d]]`.
pub type Matrix2 = [[C64; 2]; 2];

/// A 4×4 complex matrix in row-major order, basis `|q1 q0⟩ ∈ {00,01,10,11}`.
pub type Matrix4 = [[C64; 4]; 4];

/// A quantum gate applied to one or two qubits of a circuit.
///
/// Qubit indices refer to positions in the owning [`Circuit`](crate::Circuit).
///
/// # Examples
///
/// ```
/// use qsim::Gate;
///
/// let g = Gate::X(0);
/// assert_eq!(g.qubits(), vec![0]);
/// assert!(!g.is_two_qubit());
/// assert!(Gate::Cx { control: 0, target: 1 }.is_two_qubit());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Pauli-X (NOT): flips `|0⟩ ↔ |1⟩`. The inversion primitive of the
    /// paper's Invert-and-Measure.
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z.
    Z(usize),
    /// Hadamard: maps basis states to equal superpositions.
    H(usize),
    /// Phase gate S = diag(1, i).
    S(usize),
    /// Inverse phase gate S† = diag(1, −i).
    Sdg(usize),
    /// T = diag(1, e^{iπ/4}).
    T(usize),
    /// T† = diag(1, e^{−iπ/4}).
    Tdg(usize),
    /// Rotation about the X axis by `theta`.
    Rx {
        /// Target qubit.
        qubit: usize,
        /// Rotation angle in radians.
        theta: f64,
    },
    /// Rotation about the Y axis by `theta`.
    Ry {
        /// Target qubit.
        qubit: usize,
        /// Rotation angle in radians.
        theta: f64,
    },
    /// Rotation about the Z axis by `theta` (global-phase-free convention
    /// diag(e^{−iθ/2}, e^{iθ/2})).
    Rz {
        /// Target qubit.
        qubit: usize,
        /// Rotation angle in radians.
        theta: f64,
    },
    /// Phase gate diag(1, e^{iλ}).
    Phase {
        /// Target qubit.
        qubit: usize,
        /// Phase angle in radians.
        lambda: f64,
    },
    /// Controlled-X (CNOT).
    Cx {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Controlled-Z.
    Cz {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Two-qubit ZZ interaction exp(−iθ/2 · Z⊗Z) — the QAOA cost-layer
    /// primitive for an edge.
    Rzz {
        /// First qubit of the interacting pair.
        a: usize,
        /// Second qubit of the interacting pair.
        b: usize,
        /// Interaction angle in radians.
        theta: f64,
    },
    /// SWAP.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
}

impl Gate {
    /// The qubits this gate acts on (1 or 2 entries, two-qubit gates list
    /// control/first qubit first).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Rx { qubit: q, .. }
            | Gate::Ry { qubit: q, .. }
            | Gate::Rz { qubit: q, .. }
            | Gate::Phase { qubit: q, .. } => vec![q],
            Gate::Cx { control, target } | Gate::Cz { control, target } => vec![control, target],
            Gate::Rzz { a, b, .. } | Gate::Swap { a, b } => vec![a, b],
        }
    }

    /// Whether this gate acts on two qubits.
    pub fn is_two_qubit(&self) -> bool {
        matches!(
            self,
            Gate::Cx { .. } | Gate::Cz { .. } | Gate::Rzz { .. } | Gate::Swap { .. }
        )
    }

    /// The 2×2 unitary of a single-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics if called on a two-qubit gate.
    pub fn matrix2(&self) -> Matrix2 {
        let z = C64::ZERO;
        let o = C64::ONE;
        let i = C64::I;
        match *self {
            Gate::X(_) => [[z, o], [o, z]],
            Gate::Y(_) => [[z, -i], [i, z]],
            Gate::Z(_) => [[o, z], [z, -o]],
            Gate::H(_) => {
                let h = C64::real(FRAC_1_SQRT_2);
                [[h, h], [h, -h]]
            }
            Gate::S(_) => [[o, z], [z, i]],
            Gate::Sdg(_) => [[o, z], [z, -i]],
            Gate::T(_) => [[o, z], [z, C64::cis(std::f64::consts::FRAC_PI_4)]],
            Gate::Tdg(_) => [[o, z], [z, C64::cis(-std::f64::consts::FRAC_PI_4)]],
            Gate::Rx { theta, .. } => {
                let c = C64::real((theta / 2.0).cos());
                let s = C64::new(0.0, -(theta / 2.0).sin());
                [[c, s], [s, c]]
            }
            Gate::Ry { theta, .. } => {
                let c = C64::real((theta / 2.0).cos());
                let s = C64::real((theta / 2.0).sin());
                [[c, -s], [s, c]]
            }
            Gate::Rz { theta, .. } => [[C64::cis(-theta / 2.0), z], [z, C64::cis(theta / 2.0)]],
            Gate::Phase { lambda, .. } => [[o, z], [z, C64::cis(lambda)]],
            _ => panic!("matrix2 called on two-qubit gate {self:?}"),
        }
    }

    /// The 4×4 unitary of a two-qubit gate in the basis
    /// `|second_qubit, first_qubit⟩` where `first_qubit` is `qubits()[0]`.
    ///
    /// # Panics
    ///
    /// Panics if called on a single-qubit gate.
    pub fn matrix4(&self) -> Matrix4 {
        let z = C64::ZERO;
        let o = C64::ONE;
        match *self {
            // Basis ordering |target, control⟩: index = 2*target + control.
            // CX flips target when control (bit 0 of the index) is 1.
            Gate::Cx { .. } => [[o, z, z, z], [z, z, z, o], [z, z, o, z], [z, o, z, z]],
            Gate::Cz { .. } => [[o, z, z, z], [z, o, z, z], [z, z, o, z], [z, z, z, -o]],
            Gate::Rzz { theta, .. } => {
                let p = C64::cis(-theta / 2.0);
                let m = C64::cis(theta / 2.0);
                [[p, z, z, z], [z, m, z, z], [z, z, m, z], [z, z, z, p]]
            }
            Gate::Swap { .. } => [[o, z, z, z], [z, z, o, z], [z, o, z, z], [z, z, z, o]],
            _ => panic!("matrix4 called on single-qubit gate {self:?}"),
        }
    }

    /// The inverse (dagger) of this gate.
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::T(q) => Gate::Tdg(q),
            Gate::Tdg(q) => Gate::T(q),
            Gate::Rx { qubit, theta } => Gate::Rx {
                qubit,
                theta: -theta,
            },
            Gate::Ry { qubit, theta } => Gate::Ry {
                qubit,
                theta: -theta,
            },
            Gate::Rz { qubit, theta } => Gate::Rz {
                qubit,
                theta: -theta,
            },
            Gate::Phase { qubit, lambda } => Gate::Phase {
                qubit,
                lambda: -lambda,
            },
            Gate::Rzz { a, b, theta } => Gate::Rzz {
                a,
                b,
                theta: -theta,
            },
            // X, Y, Z, H, CX, CZ, SWAP are self-inverse.
            g => g,
        }
    }

    /// A short mnemonic name (lower case, as in OpenQASM).
    pub fn name(&self) -> &'static str {
        match self {
            Gate::X(_) => "x",
            Gate::Y(_) => "y",
            Gate::Z(_) => "z",
            Gate::H(_) => "h",
            Gate::S(_) => "s",
            Gate::Sdg(_) => "sdg",
            Gate::T(_) => "t",
            Gate::Tdg(_) => "tdg",
            Gate::Rx { .. } => "rx",
            Gate::Ry { .. } => "ry",
            Gate::Rz { .. } => "rz",
            Gate::Phase { .. } => "p",
            Gate::Cx { .. } => "cx",
            Gate::Cz { .. } => "cz",
            Gate::Rzz { .. } => "rzz",
            Gate::Swap { .. } => "swap",
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qs = self.qubits();
        write!(f, "{}", self.name())?;
        match *self {
            Gate::Rx { theta, .. } | Gate::Ry { theta, .. } | Gate::Rz { theta, .. } => {
                write!(f, "({theta:.4})")?
            }
            Gate::Rzz { theta, .. } => write!(f, "({theta:.4})")?,
            Gate::Phase { lambda, .. } => write!(f, "({lambda:.4})")?,
            _ => {}
        }
        write!(f, " ")?;
        for (i, q) in qs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "q{q}")?;
        }
        Ok(())
    }
}

/// Checks that a 2×2 matrix is unitary within tolerance (used by tests and
/// debug assertions).
#[allow(clippy::needless_range_loop)] // matrix index notation
pub fn is_unitary2(m: &Matrix2, tol: f64) -> bool {
    // M† M == I
    for r in 0..2 {
        for c in 0..2 {
            let mut acc = C64::ZERO;
            for k in 0..2 {
                acc += m[k][r].conj() * m[k][c];
            }
            let expect = if r == c { C64::ONE } else { C64::ZERO };
            if !acc.approx_eq(expect, tol) {
                return false;
            }
        }
    }
    true
}

/// Checks that a 4×4 matrix is unitary within tolerance.
#[allow(clippy::needless_range_loop)] // matrix index notation
pub fn is_unitary4(m: &Matrix4, tol: f64) -> bool {
    for r in 0..4 {
        for c in 0..4 {
            let mut acc = C64::ZERO;
            for k in 0..4 {
                acc += m[k][r].conj() * m[k][c];
            }
            let expect = if r == c { C64::ONE } else { C64::ZERO };
            if !acc.approx_eq(expect, tol) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-10;

    fn all_single() -> Vec<Gate> {
        vec![
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::H(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::Rx {
                qubit: 0,
                theta: 0.3,
            },
            Gate::Ry {
                qubit: 0,
                theta: 1.1,
            },
            Gate::Rz {
                qubit: 0,
                theta: -0.7,
            },
            Gate::Phase {
                qubit: 0,
                lambda: 2.2,
            },
        ]
    }

    fn all_double() -> Vec<Gate> {
        vec![
            Gate::Cx {
                control: 0,
                target: 1,
            },
            Gate::Cz {
                control: 0,
                target: 1,
            },
            Gate::Rzz {
                a: 0,
                b: 1,
                theta: 0.9,
            },
            Gate::Swap { a: 0, b: 1 },
        ]
    }

    #[test]
    fn single_qubit_gates_are_unitary() {
        for g in all_single() {
            assert!(is_unitary2(&g.matrix2(), TOL), "{g} not unitary");
        }
    }

    #[test]
    fn two_qubit_gates_are_unitary() {
        for g in all_double() {
            assert!(is_unitary4(&g.matrix4(), TOL), "{g} not unitary");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // matrix index notation
    fn inverse_gives_identity_2x2() {
        for g in all_single() {
            let m = g.matrix2();
            let inv = g.inverse().matrix2();
            for r in 0..2 {
                for c in 0..2 {
                    let mut acc = C64::ZERO;
                    for k in 0..2 {
                        acc += inv[r][k] * m[k][c];
                    }
                    let expect = if r == c { C64::ONE } else { C64::ZERO };
                    assert!(acc.approx_eq(expect, TOL), "{g}: inverse failed");
                }
            }
        }
    }

    #[test]
    fn x_flips_basis() {
        let m = Gate::X(0).matrix2();
        assert!(m[0][1].approx_eq(C64::ONE, TOL));
        assert!(m[1][0].approx_eq(C64::ONE, TOL));
        assert!(m[0][0].approx_eq(C64::ZERO, TOL));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // matrix index notation
    fn hadamard_squares_to_identity() {
        let m = Gate::H(0).matrix2();
        for r in 0..2 {
            for c in 0..2 {
                let mut acc = C64::ZERO;
                for k in 0..2 {
                    acc += m[r][k] * m[k][c];
                }
                let expect = if r == c { C64::ONE } else { C64::ZERO };
                assert!(acc.approx_eq(expect, TOL));
            }
        }
    }

    #[test]
    fn rz_pi_is_z_up_to_phase() {
        let rz = Gate::Rz {
            qubit: 0,
            theta: PI,
        }
        .matrix2();
        // Rz(π) = diag(e^{-iπ/2}, e^{iπ/2}) = -i · Z
        let phase = C64::cis(-PI / 2.0);
        assert!(rz[0][0].approx_eq(phase, TOL));
        assert!(rz[1][1].approx_eq(-phase, TOL));
    }

    #[test]
    fn rzz_diagonal_signs() {
        let m = Gate::Rzz {
            a: 0,
            b: 1,
            theta: 2.0,
        }
        .matrix4();
        // Even-parity basis states get e^{-iθ/2}, odd-parity get e^{+iθ/2}.
        assert!(m[0][0].approx_eq(C64::cis(-1.0), TOL));
        assert!(m[1][1].approx_eq(C64::cis(1.0), TOL));
        assert!(m[2][2].approx_eq(C64::cis(1.0), TOL));
        assert!(m[3][3].approx_eq(C64::cis(-1.0), TOL));
    }

    #[test]
    fn cx_truth_table() {
        // Index = 2*target + control; control is bit 0.
        let m = Gate::Cx {
            control: 0,
            target: 1,
        }
        .matrix4();
        // |t=0,c=1⟩ (index 1) -> |t=1,c=1⟩ (index 3)
        assert!(m[3][1].approx_eq(C64::ONE, TOL));
        // |t=0,c=0⟩ stays.
        assert!(m[0][0].approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn qubit_lists() {
        assert_eq!(
            Gate::Cx {
                control: 3,
                target: 1
            }
            .qubits(),
            vec![3, 1]
        );
        assert_eq!(
            Gate::Rz {
                qubit: 2,
                theta: 0.1
            }
            .qubits(),
            vec![2]
        );
    }

    #[test]
    #[should_panic(expected = "matrix2 called on two-qubit gate")]
    fn matrix2_on_two_qubit_panics() {
        Gate::Swap { a: 0, b: 1 }.matrix2();
    }

    #[test]
    fn display_includes_angle() {
        let s = Gate::Rz {
            qubit: 2,
            theta: 0.5,
        }
        .to_string();
        assert!(s.starts_with("rz(0.5000)"), "{s}");
        assert!(s.ends_with("q2"));
        assert_eq!(
            Gate::Cx {
                control: 0,
                target: 1
            }
            .to_string(),
            "cx q0,q1"
        );
    }
}
