//! # qsim — a state-vector quantum circuit simulator
//!
//! The execution substrate for the Invert-and-Measure reproduction
//! (Tannu & Qureshi, MICRO-52 2019). It provides:
//!
//! * [`c64::C64`] — in-crate complex arithmetic,
//! * [`BitString`] — fixed-width classical measurement outcomes,
//! * [`Gate`] and [`Circuit`] — the gate-level program representation,
//!   including the pre-measurement inversion transform at the heart of the
//!   paper ([`Circuit::with_premeasure_inversion`]),
//! * [`StateVector`] — dense `2^n` amplitude simulation with Born-rule
//!   sampling, specialized monomial/dense kernels, gate fusion
//!   ([`fuse::FusedProgram`]) and optional threaded apply on a persistent
//!   worker pool ([`pool`]) with per-thread buffer reuse ([`arena`]),
//! * [`Counts`] / [`Distribution`] — the trial logs and exact distributions
//!   the reliability metrics are computed from.
//!
//! Noise (readout error, gate error, T1 decay) deliberately lives in the
//! sibling `qnoise` crate; this crate simulates ideal quantum mechanics.
//!
//! ## Example
//!
//! Prepare a GHZ state and sample it:
//!
//! ```
//! use qsim::{Circuit, Counts, StateVector};
//! use rand::SeedableRng;
//!
//! let mut ghz = Circuit::new(5);
//! ghz.h(0);
//! for q in 0..4 {
//!     ghz.cx(q, q + 1);
//! }
//! let psi = StateVector::from_circuit(&ghz);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut log = Counts::new(5);
//! for _ in 0..1000 {
//!     log.record(psi.sample(&mut rng));
//! }
//! // Only the all-zeros and all-ones states ever appear.
//! assert_eq!(log.distinct(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod bitstring;
pub mod c64;
pub mod circuit;
pub mod counts;
pub mod density;
pub mod fuse;
pub mod gate;
pub mod optimize;
pub mod pool;
pub mod qasm;
pub mod sampler;
pub mod statevector;
pub mod transpile;

pub use bitstring::{BitString, ParseBitStringError, MAX_WIDTH};
pub use circuit::Circuit;
pub use counts::{Counts, Distribution};
pub use density::{DensityMatrix, KrausChannel};
pub use fuse::FusedProgram;
pub use gate::Gate;
pub use pool::{SpinBarrier, WorkerPool};
pub use sampler::AliasSampler;
pub use statevector::{simulation_count, StateVector};
