//! Fixed-width classical bit strings — the values produced by measurement.
//!
//! A [`BitString`] is the fundamental classical datum in the NISQ execution
//! model: every trial of a program ends in a measurement that yields one
//! bit string, and the output log analyzed by the reliability metrics is a
//! histogram over bit strings (see `Counts` in this crate).
//!
//! Bit `i` corresponds to qubit `i`. Textual representations follow the
//! convention used in the paper (and by IBM): the **leftmost** character of
//! `"01101"` is the highest-index qubit, the rightmost is qubit 0.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};
use std::str::FromStr;

/// Maximum number of qubits a [`BitString`] can hold.
pub const MAX_WIDTH: usize = 64;

/// A classical measurement outcome over `width` qubits, packed into a `u64`.
///
/// # Examples
///
/// ```
/// use qsim::BitString;
///
/// let s: BitString = "01101".parse()?;
/// assert_eq!(s.width(), 5);
/// assert_eq!(s.hamming_weight(), 3);
/// assert!(s.bit(0) && !s.bit(1) && s.bit(2));
/// assert_eq!(s.inverted().to_string(), "10010");
/// # Ok::<(), qsim::ParseBitStringError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitString {
    bits: u64,
    width: u8,
}

impl BitString {
    /// Creates a bit string of `width` zeros.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds [`MAX_WIDTH`].
    pub fn zeros(width: usize) -> Self {
        assert!((1..=MAX_WIDTH).contains(&width), "width must be in 1..=64");
        BitString {
            bits: 0,
            width: width as u8,
        }
    }

    /// Creates a bit string of `width` ones.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds [`MAX_WIDTH`].
    pub fn ones(width: usize) -> Self {
        BitString::zeros(width).inverted()
    }

    /// Creates a bit string from the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0, exceeds [`MAX_WIDTH`], or `value` has bits set
    /// above `width`.
    pub fn from_value(value: u64, width: usize) -> Self {
        assert!((1..=MAX_WIDTH).contains(&width), "width must be in 1..=64");
        assert!(
            width == MAX_WIDTH || value < (1u64 << width),
            "value {value:#x} does not fit in {width} bits"
        );
        BitString {
            bits: value,
            width: width as u8,
        }
    }

    /// Creates the alternating string `…0101` (bit 0 set, bit 1 clear, …).
    ///
    /// This is the "even qubit inversion" string used by SIM's four-mode
    /// configuration.
    pub fn even_mask(width: usize) -> Self {
        let pattern = 0x5555_5555_5555_5555u64;
        BitString::from_value(pattern & Self::width_mask(width), width)
    }

    /// Creates the alternating string `…1010` (bit 1 set, bit 0 clear, …).
    pub fn odd_mask(width: usize) -> Self {
        BitString::even_mask(width).inverted()
    }

    fn width_mask(width: usize) -> u64 {
        assert!((1..=MAX_WIDTH).contains(&width), "width must be in 1..=64");
        if width == MAX_WIDTH {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// The number of qubits this string covers.
    #[inline]
    pub fn width(&self) -> usize {
        self.width as usize
    }

    /// The packed integer value (bit `i` of the result is qubit `i`).
    #[inline]
    pub fn value(&self) -> u64 {
        self.bits
    }

    /// The packed value as an index into a `2^width` array.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `usize` (only possible on 32-bit
    /// targets with width > 32).
    #[inline]
    pub fn index(&self) -> usize {
        usize::try_from(self.bits).expect("bit string value exceeds usize")
    }

    /// Reads qubit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.width(), "bit index {i} out of range");
        (self.bits >> i) & 1 == 1
    }

    /// Returns a copy with qubit `i` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[must_use]
    pub fn with_bit(&self, i: usize, value: bool) -> Self {
        assert!(i < self.width(), "bit index {i} out of range");
        let mut bits = self.bits;
        if value {
            bits |= 1 << i;
        } else {
            bits &= !(1 << i);
        }
        BitString {
            bits,
            width: self.width,
        }
    }

    /// Returns a copy with qubit `i` flipped.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[must_use]
    pub fn with_flipped(&self, i: usize) -> Self {
        self.with_bit(i, !self.bit(i))
    }

    /// The number of 1 bits — the paper's central quantity: states with high
    /// Hamming weight are the most vulnerable to measurement error.
    #[inline]
    pub fn hamming_weight(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn hamming_distance(&self, other: &BitString) -> u32 {
        assert_eq!(self.width, other.width, "width mismatch");
        (self.bits ^ other.bits).count_ones()
    }

    /// The bitwise complement — the state produced by applying an X gate to
    /// every qubit (the "inverted mode" of Invert-and-Measure).
    #[must_use]
    pub fn inverted(&self) -> Self {
        BitString {
            bits: !self.bits & Self::width_mask(self.width()),
            width: self.width,
        }
    }

    /// Iterates over bits from qubit 0 upward.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.width()).map(move |i| self.bit(i))
    }

    /// Iterates over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.width()).filter(move |&i| self.bit(i))
    }

    /// All `2^width` bit strings of a given width in ascending numeric order.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 32 (enumerating more is never
    /// meaningful for characterization).
    pub fn all(width: usize) -> impl Iterator<Item = BitString> {
        assert!((1..=32).contains(&width), "enumeration limited to 32 bits");
        (0u64..(1u64 << width)).map(move |v| BitString::from_value(v, width))
    }

    /// All strings of `width`, ordered by ascending Hamming weight and then
    /// ascending numeric value — the x-axis ordering used by the paper's
    /// characterization figures (Figures 4, 6, 9, 11, 13).
    pub fn all_by_hamming_weight(width: usize) -> Vec<BitString> {
        let mut v: Vec<BitString> = BitString::all(width).collect();
        v.sort_by_key(|s| (s.hamming_weight(), s.value()));
        v
    }

    /// Extracts the sub-string covering qubits `lo..lo+len` (inclusive of
    /// `lo`), used by the sliding-window AWCT characterization.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the string width or `len` is 0.
    pub fn window(&self, lo: usize, len: usize) -> BitString {
        assert!(len >= 1, "window length must be positive");
        assert!(lo + len <= self.width(), "window out of range");
        BitString::from_value((self.bits >> lo) & Self::width_mask(len), len)
    }

    /// Concatenates `high` above `self`: result bits `0..self.width` come
    /// from `self`, bits above come from `high`.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn concat(&self, high: &BitString) -> BitString {
        let width = self.width() + high.width();
        assert!(width <= MAX_WIDTH, "combined width exceeds 64");
        BitString {
            bits: self.bits | (high.bits << self.width()),
            width: width as u8,
        }
    }
}

impl BitXor for BitString {
    type Output = BitString;
    /// XOR of two equal-width strings — the post-measurement correction
    /// applied after measuring under an inversion string.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    fn bitxor(self, rhs: BitString) -> BitString {
        assert_eq!(self.width, rhs.width, "width mismatch");
        BitString {
            bits: self.bits ^ rhs.bits,
            width: self.width,
        }
    }
}

impl BitAnd for BitString {
    type Output = BitString;
    /// # Panics
    ///
    /// Panics if widths differ.
    fn bitand(self, rhs: BitString) -> BitString {
        assert_eq!(self.width, rhs.width, "width mismatch");
        BitString {
            bits: self.bits & rhs.bits,
            width: self.width,
        }
    }
}

impl BitOr for BitString {
    type Output = BitString;
    /// # Panics
    ///
    /// Panics if widths differ.
    fn bitor(self, rhs: BitString) -> BitString {
        assert_eq!(self.width, rhs.width, "width mismatch");
        BitString {
            bits: self.bits | rhs.bits,
            width: self.width,
        }
    }
}

impl Not for BitString {
    type Output = BitString;
    fn not(self) -> BitString {
        self.inverted()
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width()).rev() {
            f.write_str(if self.bit(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitString(\"{self}\")")
    }
}

impl fmt::Binary for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing a [`BitString`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitStringError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    TooLong(usize),
    BadChar(char),
}

impl fmt::Display for ParseBitStringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "bit string is empty"),
            ParseErrorKind::TooLong(n) => {
                write!(f, "bit string has {n} characters, maximum is {MAX_WIDTH}")
            }
            ParseErrorKind::BadChar(c) => {
                write!(f, "invalid character {c:?} in bit string, expected 0 or 1")
            }
        }
    }
}

impl std::error::Error for ParseBitStringError {}

impl FromStr for BitString {
    type Err = ParseBitStringError;

    /// Parses a string like `"01101"`; the leftmost character is the
    /// highest-index qubit.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBitStringError {
                kind: ParseErrorKind::Empty,
            });
        }
        if s.len() > MAX_WIDTH {
            return Err(ParseBitStringError {
                kind: ParseErrorKind::TooLong(s.len()),
            });
        }
        let mut bits = 0u64;
        for c in s.chars() {
            bits <<= 1;
            match c {
                '0' => {}
                '1' => bits |= 1,
                other => {
                    return Err(ParseBitStringError {
                        kind: ParseErrorKind::BadChar(other),
                    })
                }
            }
        }
        Ok(BitString {
            bits,
            width: s.len() as u8,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0", "1", "01101", "11111", "00000", "1010110"] {
            assert_eq!(bs(s).to_string(), s);
        }
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<BitString>().is_err());
        assert!("01x".parse::<BitString>().is_err());
        assert!("0".repeat(65).parse::<BitString>().is_err());
        let msg = "2".parse::<BitString>().unwrap_err().to_string();
        assert!(msg.contains("invalid character"));
    }

    #[test]
    fn endianness_convention() {
        // "01101": leftmost char is qubit 4.
        let s = bs("01101");
        assert!(!s.bit(4));
        assert!(s.bit(3));
        assert!(s.bit(2));
        assert!(!s.bit(1));
        assert!(s.bit(0));
        assert_eq!(s.value(), 0b01101);
    }

    #[test]
    fn zeros_ones_masks() {
        assert_eq!(BitString::zeros(5).to_string(), "00000");
        assert_eq!(BitString::ones(5).to_string(), "11111");
        assert_eq!(BitString::even_mask(5).to_string(), "10101");
        assert_eq!(BitString::odd_mask(5).to_string(), "01010");
        assert_eq!(BitString::even_mask(4).to_string(), "0101");
        assert_eq!(BitString::odd_mask(4).to_string(), "1010");
    }

    #[test]
    fn hamming_weight_and_distance() {
        assert_eq!(bs("00000").hamming_weight(), 0);
        assert_eq!(bs("10101").hamming_weight(), 3);
        assert_eq!(bs("10101").hamming_distance(&bs("01010")), 5);
        assert_eq!(bs("10101").hamming_distance(&bs("10101")), 0);
    }

    #[test]
    fn inversion_is_involution() {
        for v in 0..32u64 {
            let s = BitString::from_value(v, 5);
            assert_eq!(s.inverted().inverted(), s);
            assert_eq!(s.hamming_weight() + s.inverted().hamming_weight(), 5);
        }
    }

    #[test]
    fn xor_correction_recovers_original() {
        // Measuring under inversion string m yields s ^ m; XOR-ing by m
        // again recovers s.
        let m = bs("10101");
        for v in 0..32u64 {
            let s = BitString::from_value(v, 5);
            assert_eq!((s ^ m) ^ m, s);
        }
    }

    #[test]
    fn bit_ops() {
        let a = bs("1100");
        let b = bs("1010");
        assert_eq!((a & b).to_string(), "1000");
        assert_eq!((a | b).to_string(), "1110");
        assert_eq!((a ^ b).to_string(), "0110");
        assert_eq!((!a).to_string(), "0011");
    }

    #[test]
    fn with_bit_and_flip() {
        let s = bs("0000");
        assert_eq!(s.with_bit(2, true).to_string(), "0100");
        assert_eq!(s.with_bit(2, true).with_flipped(2).to_string(), "0000");
        assert_eq!(s.with_flipped(0).to_string(), "0001");
    }

    #[test]
    fn all_enumerates_in_order() {
        let v: Vec<u64> = BitString::all(3).map(|s| s.value()).collect();
        assert_eq!(v, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn hamming_ordering_matches_paper_axis() {
        let states = BitString::all_by_hamming_weight(5);
        assert_eq!(states.len(), 32);
        assert_eq!(states[0].to_string(), "00000");
        assert_eq!(states[31].to_string(), "11111");
        // Weights are non-decreasing along the axis.
        for w in states.windows(2) {
            assert!(w[0].hamming_weight() <= w[1].hamming_weight());
        }
        // First weight-1 block is the 5 single-bit states.
        assert_eq!(states[1].to_string(), "00001");
        assert_eq!(states[5].to_string(), "10000");
    }

    #[test]
    fn window_extraction() {
        let s = bs("110010");
        assert_eq!(s.window(0, 3).to_string(), "010");
        assert_eq!(s.window(1, 4).to_string(), "1001");
        assert_eq!(s.window(4, 2).to_string(), "11");
    }

    #[test]
    fn concat_windows() {
        let lo = bs("010");
        let hi = bs("110");
        assert_eq!(lo.concat(&hi).to_string(), "110010");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn xor_width_mismatch_panics() {
        let _ = bs("00") ^ bs("000");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        bs("01").bit(2);
    }

    #[test]
    fn max_width_edge_cases() {
        let s = BitString::ones(64);
        assert_eq!(s.hamming_weight(), 64);
        assert_eq!(s.inverted().hamming_weight(), 0);
        let v = BitString::from_value(u64::MAX, 64);
        assert_eq!(v, s);
    }
}
