//! Thread-local statevector buffer arena.
//!
//! Characterization sweeps simulate thousands of *small* circuits; at 5
//! qubits the `vec![C64::ZERO; 32]` per circuit is noise, but a Melbourne
//! sweep at 14 qubits allocates and faults in 256 KB per trajectory. The
//! arena recycles amplitude buffers per thread: [`StateVector::recycle`]
//! parks a spent buffer here, and [`StateVector::zero`] reuses one instead
//! of allocating when a parked buffer is big enough. Because the worker
//! pool's threads are persistent, each pool worker keeps its arena warm
//! across every circuit of a batch — that is what turns per-circuit
//! allocation into amortized, page-warm reuse.
//!
//! Reuse is an allocation-level optimization only: a recycled buffer is
//! zeroed through the same `resize` path a fresh one is, so simulation
//! results are unaffected. The process-wide [`arena_reuse_hits`] counter
//! feeds `qmetrics` / `svc status`.
//!
//! [`StateVector::recycle`]: crate::StateVector::recycle
//! [`StateVector::zero`]: crate::StateVector::zero

use crate::c64::C64;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of allocations avoided by arena reuse.
static ARENA_REUSE_HITS: AtomicU64 = AtomicU64::new(0);

/// Total amplitude-buffer allocations this process avoided via reuse.
pub fn arena_reuse_hits() -> u64 {
    ARENA_REUSE_HITS.load(Ordering::Relaxed)
}

/// Parked buffers kept per thread. Small on purpose: one slot per
/// in-flight statevector a worker realistically holds (ideal state,
/// trajectory state, a scratch), so a width change can't strand hundreds
/// of megabytes in idle threads.
const MAX_PER_THREAD: usize = 4;

thread_local! {
    static PARKED: RefCell<Vec<Vec<C64>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a zeroed buffer of exactly `len` amplitudes from this thread's
/// arena, or `None` when no parked buffer has the capacity.
pub(crate) fn take(len: usize) -> Option<Vec<C64>> {
    PARKED.with(|parked| {
        let mut parked = parked.borrow_mut();
        let idx = parked.iter().position(|b| b.capacity() >= len)?;
        let mut buf = parked.swap_remove(idx);
        buf.clear();
        buf.resize(len, C64::ZERO);
        ARENA_REUSE_HITS.fetch_add(1, Ordering::Relaxed);
        Some(buf)
    })
}

/// Parks a spent amplitude buffer for reuse by this thread. When the
/// arena is full the smallest buffer is evicted so repeated sweeps at a
/// larger width converge to keeping the large buffers.
pub(crate) fn recycle(buf: Vec<C64>) {
    if buf.capacity() == 0 {
        return;
    }
    PARKED.with(|parked| {
        let mut parked = parked.borrow_mut();
        if parked.len() < MAX_PER_THREAD {
            parked.push(buf);
            return;
        }
        let (smallest, _) = parked
            .iter()
            .enumerate()
            .min_by_key(|(_, b)| b.capacity())
            .expect("arena is non-empty when full");
        if parked[smallest].capacity() < buf.capacity() {
            parked[smallest] = buf;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_recycled_capacity() {
        // Use a distinctive length to dodge buffers other tests parked on
        // this thread.
        let len = 1 << 9;
        let buf = vec![C64::new(0.25, -1.0); len];
        let ptr = buf.as_ptr();
        recycle(buf);
        let before = arena_reuse_hits();
        let reused = take(len).expect("a parked buffer fits");
        assert_eq!(reused.as_ptr(), ptr, "same allocation comes back");
        assert_eq!(reused.len(), len);
        assert!(reused
            .iter()
            .all(|a| a.re.to_bits() == 0 && a.im.to_bits() == 0));
        assert!(arena_reuse_hits() > before);
    }

    #[test]
    fn smaller_parked_buffers_do_not_satisfy_larger_requests() {
        recycle(vec![C64::ZERO; 8]);
        // Anything parked by this test is ≤ 2^9; a 2^20 request misses
        // unless a *larger* buffer happens to be parked, which recycling a
        // small vec cannot cause.
        let big = 1 << 20;
        if let Some(buf) = take(big) {
            assert_eq!(buf.len(), big);
        }
    }

    #[test]
    fn arena_is_bounded_and_prefers_large_buffers() {
        // Fill the arena beyond its cap with distinguishable capacities.
        for i in 0..(MAX_PER_THREAD + 2) {
            recycle(vec![C64::ZERO; 64 << i]);
        }
        // A buffer bigger than everything parked evicts the smallest.
        let huge_len = 64 << (MAX_PER_THREAD + 3);
        recycle(vec![C64::ZERO; huge_len]);
        assert!(
            take(huge_len).is_some(),
            "the largest recycled buffer must survive eviction"
        );
        PARKED.with(|parked| {
            assert!(parked.borrow().len() <= MAX_PER_THREAD);
        });
    }
}
