//! Dense density-matrix simulation with Kraus channels.
//!
//! The trajectory executor in `qnoise` samples stochastic error instances;
//! this module provides the *exact* mixed-state evolution it converges to.
//! It exists for validation (integration tests check that Monte-Carlo
//! trajectories reproduce the exact channel output) and for computing
//! closed-form noisy distributions on small registers.
//!
//! A [`DensityMatrix`] stores the full `2^n × 2^n` complex matrix, so it is
//! practical up to ~10 qubits — ample for the paper's five-qubit studies.

use crate::bitstring::BitString;
use crate::c64::C64;
use crate::circuit::Circuit;
use crate::gate::Gate;

/// A Kraus operator set `{K_i}` acting on one qubit, satisfying
/// `Σ K_i† K_i = I`.
#[derive(Debug, Clone, PartialEq)]
pub struct KrausChannel {
    ops: Vec<[[C64; 2]; 2]>,
}

impl KrausChannel {
    /// Builds a channel from explicit 2×2 Kraus operators.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty or the completeness relation
    /// `Σ K† K = I` fails beyond `1e-9`.
    #[allow(clippy::needless_range_loop)] // matrix index notation
    pub fn new(ops: Vec<[[C64; 2]; 2]>) -> Self {
        assert!(!ops.is_empty(), "channel needs at least one Kraus operator");
        // Completeness: sum of K† K equals identity.
        let mut acc = [[C64::ZERO; 2]; 2];
        for k in &ops {
            for (r, acc_row) in acc.iter_mut().enumerate() {
                for (c, acc_rc) in acc_row.iter_mut().enumerate() {
                    for m in 0..2 {
                        *acc_rc += k[m][r].conj() * k[m][c];
                    }
                }
            }
        }
        for r in 0..2 {
            for c in 0..2 {
                let expect = if r == c { C64::ONE } else { C64::ZERO };
                assert!(
                    acc[r][c].approx_eq(expect, 1e-9),
                    "Kraus completeness violated at ({r},{c}): {}",
                    acc[r][c]
                );
            }
        }
        KrausChannel { ops }
    }

    /// Amplitude damping with decay probability `gamma` — the T1 relaxation
    /// channel behind the paper's 1→0 measurement bias.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is outside `[0, 1]`.
    pub fn amplitude_damping(gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma out of range");
        let z = C64::ZERO;
        let k0 = [[C64::ONE, z], [z, C64::real((1.0 - gamma).sqrt())]];
        let k1 = [[z, C64::real(gamma.sqrt())], [z, z]];
        KrausChannel::new(vec![k0, k1])
    }

    /// Single-qubit depolarizing channel with error probability `p`
    /// (uniform X/Y/Z with probability `p/3` each).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn depolarizing(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p out of range");
        let z = C64::ZERO;
        let o = C64::ONE;
        let i = C64::I;
        let s = |w: f64, m: [[C64; 2]; 2]| {
            let f = C64::real(w.sqrt());
            [[f * m[0][0], f * m[0][1]], [f * m[1][0], f * m[1][1]]]
        };
        KrausChannel::new(vec![
            s(1.0 - p, [[o, z], [z, o]]),
            s(p / 3.0, [[z, o], [o, z]]),
            s(p / 3.0, [[z, -i], [i, z]]),
            s(p / 3.0, [[o, z], [z, -o]]),
        ])
    }

    /// Classical bit-flip channel (X with probability `p`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bit_flip(p: f64) -> Self {
        let z = C64::ZERO;
        assert!((0.0..=1.0).contains(&p), "p out of range");
        let a = C64::real((1.0 - p).sqrt());
        let b = C64::real(p.sqrt());
        KrausChannel::new(vec![[[a, z], [z, a]], [[z, b], [b, z]]])
    }

    /// The Kraus operators.
    pub fn operators(&self) -> &[[[C64; 2]; 2]] {
        &self.ops
    }
}

/// A mixed quantum state over `n` qubits as a dense `2^n × 2^n` matrix.
///
/// # Examples
///
/// ```
/// use qsim::density::{DensityMatrix, KrausChannel};
/// use qsim::{BitString, Circuit};
///
/// // A Bell pair fully dephased by amplitude damping on qubit 0.
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let mut rho = DensityMatrix::zero(2);
/// rho.apply_circuit(&bell);
/// rho.apply_channel(&KrausChannel::amplitude_damping(1.0), 0);
/// // All population has relaxed into states with qubit 0 = 0.
/// let p = rho.probabilities();
/// assert!(p[0b01] < 1e-12 && p[0b11] < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    /// Row-major dense matrix, `elems[r * dim + c]`.
    elems: Vec<C64>,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is 0 or exceeds 10 (a 10-qubit matrix is
    /// already 2^20 complex numbers).
    pub fn zero(n_qubits: usize) -> Self {
        assert!(
            (1..=10).contains(&n_qubits),
            "density matrix limited to 1..=10 qubits"
        );
        let dim = 1usize << n_qubits;
        let mut elems = vec![C64::ZERO; dim * dim];
        elems[0] = C64::ONE;
        DensityMatrix { n_qubits, elems }
    }

    /// The pure basis state `|s⟩⟨s|`.
    pub fn basis(s: BitString) -> Self {
        let mut rho = DensityMatrix::zero(s.width());
        rho.elems[0] = C64::ZERO;
        let dim = 1usize << s.width();
        rho.elems[s.index() * dim + s.index()] = C64::ONE;
        rho
    }

    /// Builds `|ψ⟩⟨ψ|` from a state vector.
    pub fn from_statevector(psi: &crate::statevector::StateVector) -> Self {
        let n = psi.n_qubits();
        assert!(n <= 10, "density matrix limited to 10 qubits");
        let amps = psi.amplitudes();
        let dim = amps.len();
        let mut elems = vec![C64::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                elems[r * dim + c] = amps[r] * amps[c].conj();
            }
        }
        DensityMatrix { n_qubits: n, elems }
    }

    /// The number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    fn dim(&self) -> usize {
        1usize << self.n_qubits
    }

    /// The matrix element `⟨r|ρ|c⟩`.
    ///
    /// # Panics
    ///
    /// Panics if an index exceeds the dimension.
    pub fn element(&self, r: usize, c: usize) -> C64 {
        let dim = self.dim();
        assert!(r < dim && c < dim, "index out of range");
        self.elems[r * dim + c]
    }

    /// The trace (1 for a normalized state).
    pub fn trace(&self) -> C64 {
        let dim = self.dim();
        (0..dim).map(|i| self.elems[i * dim + i]).sum()
    }

    /// The purity `Tr(ρ²)`: 1 for pure states, `1/2^n` for the maximally
    /// mixed state.
    pub fn purity(&self) -> f64 {
        let dim = self.dim();
        let mut acc = 0.0;
        for r in 0..dim {
            for c in 0..dim {
                acc += (self.elems[r * dim + c] * self.elems[c * dim + r]).re;
            }
        }
        acc
    }

    /// The diagonal as measurement probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        let dim = self.dim();
        (0..dim).map(|i| self.elems[i * dim + i].re).collect()
    }

    /// The probability of measuring `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s.width()` differs.
    pub fn probability_of(&self, s: BitString) -> f64 {
        assert_eq!(s.width(), self.n_qubits, "width mismatch");
        let dim = self.dim();
        self.elems[s.index() * dim + s.index()].re
    }

    /// Applies a unitary gate: `ρ → U ρ U†`.
    ///
    /// # Panics
    ///
    /// Panics if the gate references qubits outside the register.
    #[allow(clippy::needless_range_loop)] // matrix index notation
    pub fn apply_gate(&mut self, gate: &Gate) {
        // Apply U to every column of rho (as ket index), then U* to every
        // row (bra index). Reuse the state-vector kernels by viewing the
        // matrix as 2^n stacked vectors.
        let dim = self.dim();
        // U on ket (row) index: for each fixed column c, the column vector
        // rho[., c] transforms by U.
        let mut col = vec![C64::ZERO; dim];
        for c in 0..dim {
            for r in 0..dim {
                col[r] = self.elems[r * dim + c];
            }
            apply_gate_to_vec(&mut col, gate, self.n_qubits);
            for r in 0..dim {
                self.elems[r * dim + c] = col[r];
            }
        }
        // U* on bra (column) index: each row vector transforms by conj(U);
        // equivalently conj, apply U, conj back.
        let mut row = vec![C64::ZERO; dim];
        for r in 0..dim {
            for c in 0..dim {
                row[c] = self.elems[r * dim + c].conj();
            }
            apply_gate_to_vec(&mut row, gate, self.n_qubits);
            for c in 0..dim {
                self.elems[r * dim + c] = row[c].conj();
            }
        }
    }

    /// Applies every gate of a circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the register.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(
            circuit.n_qubits() <= self.n_qubits,
            "circuit wider than register"
        );
        for g in circuit.gates() {
            self.apply_gate(g);
        }
    }

    /// Applies a single-qubit Kraus channel to `qubit`:
    /// `ρ → Σ_i K_i ρ K_i†`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    #[allow(clippy::needless_range_loop)] // matrix index notation
    pub fn apply_channel(&mut self, channel: &KrausChannel, qubit: usize) {
        assert!(qubit < self.n_qubits, "qubit out of range");
        let dim = self.dim();
        let bit = 1usize << qubit;
        let mut out = vec![C64::ZERO; dim * dim];
        for k in channel.operators() {
            // result += (K ⊗ I) rho (K† ⊗ I), acting on the chosen qubit of
            // both indices.
            for r in 0..dim {
                let rb = usize::from(r & bit != 0);
                for c in 0..dim {
                    let cb = usize::from(c & bit != 0);
                    // K rho K†: out[r][c] = Σ_{rb', cb'} K[rb][rb'] rho[r'][c'] conj(K[cb][cb'])
                    let mut acc = C64::ZERO;
                    for rbp in 0..2 {
                        let rp = (r & !bit) | (rbp << qubit);
                        let krr = k[rb][rbp];
                        if krr == C64::ZERO {
                            continue;
                        }
                        for cbp in 0..2 {
                            let cp = (c & !bit) | (cbp << qubit);
                            acc += krr * self.elems[rp * dim + cp] * k[cb][cbp].conj();
                        }
                    }
                    out[r * dim + c] += acc;
                }
            }
        }
        self.elems = out;
    }
}

/// Applies a gate to a raw amplitude vector (shared kernel for the density
/// matrix's row/column transforms).
fn apply_gate_to_vec(amps: &mut [C64], gate: &Gate, n_qubits: usize) {
    // Delegate through StateVector's tested kernels by transmuting shape:
    // cheaper to re-implement the two small kernels here than to expose
    // StateVector internals; single-qubit case below, two-qubit via matrix4.
    let qs = gate.qubits();
    for &q in &qs {
        assert!(q < n_qubits, "gate out of range");
    }
    if !gate.is_two_qubit() {
        let m = gate.matrix2();
        let bit = 1usize << qs[0];
        let mut base = 0usize;
        while base < amps.len() {
            for offset in 0..bit {
                let i0 = base + offset;
                let i1 = i0 | bit;
                let a0 = amps[i0];
                let a1 = amps[i1];
                amps[i0] = m[0][0] * a0 + m[0][1] * a1;
                amps[i1] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += bit << 1;
        }
    } else {
        let m = gate.matrix4();
        let ba = 1usize << qs[0];
        let bb = 1usize << qs[1];
        let (lo, hi) = if qs[0] < qs[1] { (ba, bb) } else { (bb, ba) };
        let mut block = 0usize;
        while block < amps.len() {
            for mid in (0..hi).step_by(lo << 1) {
                for low in 0..lo {
                    let i00 = block + mid + low;
                    let i_a = i00 | ba;
                    let i_b = i00 | bb;
                    let i_ab = i00 | ba | bb;
                    let v = [amps[i00], amps[i_a], amps[i_b], amps[i_ab]];
                    let mut out = [C64::ZERO; 4];
                    for (r, out_r) in out.iter_mut().enumerate() {
                        for (c, vc) in v.iter().enumerate() {
                            *out_r += m[r][c] * *vc;
                        }
                    }
                    amps[i00] = out[0];
                    amps[i_a] = out[1];
                    amps[i_b] = out[2];
                    amps[i_ab] = out[3];
                }
            }
            block += hi << 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVector;

    const TOL: f64 = 1e-10;

    #[test]
    fn zero_state_is_pure() {
        let rho = DensityMatrix::zero(3);
        assert!((rho.trace().re - 1.0).abs() < TOL);
        assert!((rho.purity() - 1.0).abs() < TOL);
        assert!((rho.probability_of(BitString::zeros(3)) - 1.0).abs() < TOL);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.8).cz(1, 2).rzz(0, 2, 0.5).x(1);
        let psi = StateVector::from_circuit(&c);
        let mut rho = DensityMatrix::zero(3);
        rho.apply_circuit(&c);
        let p_sv = psi.probabilities();
        let p_dm = rho.probabilities();
        for (a, b) in p_sv.iter().zip(&p_dm) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!((rho.purity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_statevector_roundtrip() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let psi = StateVector::from_circuit(&c);
        let rho = DensityMatrix::from_statevector(&psi);
        assert!((rho.purity() - 1.0).abs() < TOL);
        assert!((rho.probability_of("00".parse().unwrap()) - 0.5).abs() < TOL);
        // Coherences present for a pure superposition.
        assert!(rho.element(0, 3).abs() > 0.49);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut rho = DensityMatrix::basis("1".parse().unwrap());
        rho.apply_channel(&KrausChannel::amplitude_damping(0.3), 0);
        let p = rho.probabilities();
        assert!((p[0] - 0.3).abs() < TOL);
        assert!((p[1] - 0.7).abs() < TOL);
        assert!((rho.trace().re - 1.0).abs() < TOL);
    }

    #[test]
    fn amplitude_damping_kills_coherence() {
        let mut c = Circuit::new(1);
        c.h(0);
        let mut rho = DensityMatrix::zero(1);
        rho.apply_circuit(&c);
        let before = rho.element(0, 1).abs();
        rho.apply_channel(&KrausChannel::amplitude_damping(0.5), 0);
        let after = rho.element(0, 1).abs();
        // Off-diagonal scales by sqrt(1-gamma).
        assert!((after - before * 0.5f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn depolarizing_mixes_toward_identity() {
        let mut rho = DensityMatrix::basis("1".parse().unwrap());
        rho.apply_channel(&KrausChannel::depolarizing(0.75), 0);
        // p = 3/4 sends any state to the maximally mixed state.
        let p = rho.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-9, "{p:?}");
        assert!((rho.purity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bit_flip_channel_statistics() {
        let mut rho = DensityMatrix::basis("0".parse().unwrap());
        rho.apply_channel(&KrausChannel::bit_flip(0.2), 0);
        let p = rho.probabilities();
        assert!((p[1] - 0.2).abs() < TOL);
    }

    #[test]
    fn channel_on_specific_qubit_only() {
        let mut rho = DensityMatrix::basis("11".parse().unwrap());
        rho.apply_channel(&KrausChannel::amplitude_damping(1.0), 0);
        // Qubit 0 fully decays; qubit 1 untouched.
        assert!((rho.probability_of("10".parse().unwrap()) - 1.0).abs() < TOL);
    }

    #[test]
    fn ghz_with_damping_is_asymmetric() {
        // The paper's physics in miniature: damping on all qubits pushes
        // the GHZ all-ones branch down while all-zeros survives.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let mut rho = DensityMatrix::zero(3);
        rho.apply_circuit(&c);
        let ch = KrausChannel::amplitude_damping(0.2);
        for q in 0..3 {
            rho.apply_channel(&ch, q);
        }
        let p000 = rho.probability_of("000".parse().unwrap());
        let p111 = rho.probability_of("111".parse().unwrap());
        // All-ones branch loses (1-gamma)^3 of its population; the
        // all-zeros branch only *gains* (the fully decayed tail of the
        // other branch, 0.5 * gamma^3).
        assert!((p111 - 0.5 * 0.8f64.powi(3)).abs() < 1e-9, "p111 = {p111}");
        assert!(
            (p000 - (0.5 + 0.5 * 0.2f64.powi(3))).abs() < 1e-9,
            "p000 = {p000}"
        );
    }

    #[test]
    #[should_panic(expected = "completeness")]
    fn invalid_kraus_rejected() {
        let z = C64::ZERO;
        let o = C64::ONE;
        KrausChannel::new(vec![[[o, z], [z, o]], [[o, z], [z, o]]]);
    }

    #[test]
    fn trace_preserved_by_channels_and_gates() {
        let mut rho = DensityMatrix::zero(2);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        rho.apply_circuit(&c);
        rho.apply_channel(&KrausChannel::depolarizing(0.1), 0);
        rho.apply_channel(&KrausChannel::amplitude_damping(0.2), 1);
        assert!((rho.trace().re - 1.0).abs() < 1e-9);
        assert!(rho.trace().im.abs() < 1e-9);
        // Purity decreased below 1.
        assert!(rho.purity() < 1.0);
    }
}
