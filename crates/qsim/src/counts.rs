//! Output logs: histograms of measured bit strings and exact probability
//! distributions.
//!
//! In the NISQ execution model a program is run for thousands of trials and
//! every measured bit string is logged; [`Counts`] is that log. The paper's
//! reliability metrics (PST, IST, ROCA) and the SIM/AIM merge step all
//! operate on `Counts`. [`Distribution`] is the exact-probability analogue
//! used when a closed-form answer is available (e.g. pushing an ideal Born
//! distribution through a readout confusion channel).

use crate::bitstring::BitString;
use crate::sampler::{self, AliasSampler};
use std::collections::HashMap;
use std::fmt;

/// A histogram of measurement outcomes over a fixed register width.
///
/// # Examples
///
/// ```
/// use qsim::{BitString, Counts};
///
/// let mut counts = Counts::new(3);
/// counts.record("101".parse()?);
/// counts.record("101".parse()?);
/// counts.record("000".parse()?);
/// assert_eq!(counts.total(), 3);
/// assert_eq!(counts.get(&"101".parse()?), 2);
/// assert!((counts.frequency(&"101".parse()?) - 2.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), qsim::ParseBitStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counts {
    width: usize,
    total: u64,
    map: HashMap<BitString, u64>,
}

impl Counts {
    /// Creates an empty log for `width`-qubit outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds [`crate::bitstring::MAX_WIDTH`].
    pub fn new(width: usize) -> Self {
        assert!(
            (1..=crate::bitstring::MAX_WIDTH).contains(&width),
            "width must be in 1..=64"
        );
        Counts {
            width,
            total: 0,
            map: HashMap::new(),
        }
    }

    /// The register width of logged outcomes.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of recorded trials.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The number of distinct outcomes observed.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// Logs one trial outcome.
    ///
    /// # Panics
    ///
    /// Panics if `outcome.width()` differs from the log's width.
    pub fn record(&mut self, outcome: BitString) {
        self.record_n(outcome, 1);
    }

    /// Logs `n` identical trial outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `outcome.width()` differs from the log's width.
    pub fn record_n(&mut self, outcome: BitString, n: u64) {
        assert_eq!(outcome.width(), self.width, "outcome width mismatch");
        if n == 0 {
            return;
        }
        *self.map.entry(outcome).or_insert(0) += n;
        self.total += n;
    }

    /// The raw count for `outcome` (0 if never observed).
    pub fn get(&self, outcome: &BitString) -> u64 {
        self.map.get(outcome).copied().unwrap_or(0)
    }

    /// The empirical frequency of `outcome` (0 for an empty log).
    pub fn frequency(&self, outcome: &BitString) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.get(outcome) as f64 / self.total as f64
        }
    }

    /// Iterates over `(outcome, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&BitString, &u64)> {
        self.map.iter()
    }

    /// Merges another log into this one (the SIM aggregate step).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn merge(&mut self, other: &Counts) {
        assert_eq!(
            self.width, other.width,
            "cannot merge logs of different width"
        );
        for (s, &n) in other.iter() {
            self.record_n(*s, n);
        }
    }

    /// Returns a new log with every key XOR-ed by `mask` — the
    /// post-measurement correction for an inversion string. Counts are
    /// preserved; only labels move.
    ///
    /// # Panics
    ///
    /// Panics if `mask.width()` differs from the log's width.
    #[must_use]
    pub fn xor_corrected(&self, mask: BitString) -> Counts {
        assert_eq!(mask.width(), self.width, "mask width mismatch");
        let mut out = Counts::new(self.width);
        for (s, &n) in self.iter() {
            out.record_n(*s ^ mask, n);
        }
        out
    }

    /// Outcomes sorted by descending count (ties broken by ascending value),
    /// i.e. the ranking used for the Rank-of-Correct-Answer metric.
    pub fn ranked(&self) -> Vec<(BitString, u64)> {
        let mut v: Vec<(BitString, u64)> = self.map.iter().map(|(s, &n)| (*s, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.value().cmp(&b.0.value())));
        v
    }

    /// The most frequent outcome, if any trials were logged.
    pub fn mode(&self) -> Option<BitString> {
        self.ranked().first().map(|&(s, _)| s)
    }

    /// Marginalizes the log onto a subset of qubits: bit `i` of every
    /// output outcome is taken from qubit `qubits[i]` of the original.
    ///
    /// Used when only part of the register carries the answer (e.g.
    /// discarding ancillas, or the sliding-window characterization).
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is empty, contains duplicates, or references a
    /// qubit outside the log's width.
    #[must_use]
    pub fn marginalize(&self, qubits: &[usize]) -> Counts {
        assert!(!qubits.is_empty(), "cannot marginalize onto nothing");
        for (i, &q) in qubits.iter().enumerate() {
            assert!(q < self.width, "qubit {q} outside width {}", self.width);
            assert!(!qubits[..i].contains(&q), "duplicate qubit {q}");
        }
        let mut out = Counts::new(qubits.len());
        for (s, &n) in self.iter() {
            let mut m = BitString::zeros(qubits.len());
            for (i, &q) in qubits.iter().enumerate() {
                m = m.with_bit(i, s.bit(q));
            }
            out.record_n(m, n);
        }
        out
    }

    /// The empirical distribution as a dense vector of length `2^width`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 26` (dense conversion would allocate > 512 MiB).
    pub fn to_distribution(&self) -> Distribution {
        assert!(self.width <= 26, "dense distribution limited to 26 qubits");
        let mut p = vec![0.0; 1usize << self.width];
        if self.total > 0 {
            for (s, &n) in self.iter() {
                p[s.index()] = n as f64 / self.total as f64;
            }
        }
        Distribution::from_probabilities(self.width, p)
    }

    /// Builds a log from a dense per-basis-state count vector, the
    /// accumulation format the batched execution engine uses internally
    /// (indexing a `Vec<u64>` per shot instead of hashing a `BitString`).
    ///
    /// # Panics
    ///
    /// Panics if `dense.len()` is not `2^width` or `width` is outside
    /// `1..=26`.
    pub fn from_dense(width: usize, dense: &[u64]) -> Counts {
        assert!(
            (1..=26).contains(&width),
            "dense counts limited to 1..=26 qubits"
        );
        assert_eq!(dense.len(), 1usize << width, "length must be 2^width");
        let mut counts = Counts::new(width);
        for (i, &n) in dense.iter().enumerate() {
            if n > 0 {
                counts.record_n(BitString::from_value(i as u64, width), n);
            }
        }
        counts
    }

    /// Samples a log of `shots` independent trials from an exact
    /// distribution.
    ///
    /// Builds an alias table once (`O(2^width)`) and then draws each shot in
    /// O(1), accumulating into a dense vector — the per-shot analogue of
    /// [`Counts::synthesize_from`], kept for callers that need the
    /// shot-by-shot RNG stream.
    pub fn sample_from<R: rand::Rng + ?Sized>(
        dist: &Distribution,
        shots: u64,
        rng: &mut R,
    ) -> Counts {
        if shots == 0 {
            return Counts::new(dist.width());
        }
        let sampler = AliasSampler::new(dist.probabilities());
        let mut dense = vec![0u64; dist.probabilities().len()];
        for _ in 0..shots {
            dense[sampler.sample(rng)] += 1;
        }
        Counts::from_dense(dist.width(), &dense)
    }

    /// Synthesizes the log of `shots` independent trials from an exact
    /// distribution in `O(2^width)` time — independent of the shot count.
    ///
    /// The result is an exact sample from the same multinomial law as
    /// [`Counts::sample_from`] (via [`sampler::multinomial`] binomial
    /// splitting), but consumes a different portion of the RNG stream, so
    /// the two are statistically — not bitwise — equivalent for a fixed
    /// seed.
    pub fn synthesize_from<R: rand::Rng + ?Sized>(
        dist: &Distribution,
        shots: u64,
        rng: &mut R,
    ) -> Counts {
        if shots == 0 {
            return Counts::new(dist.width());
        }
        let dense = sampler::multinomial(dist.probabilities(), shots, rng);
        Counts::from_dense(dist.width(), &dense)
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "counts[{} trials, {} outcomes]:",
            self.total,
            self.distinct()
        )?;
        for (s, n) in self.ranked().into_iter().take(16) {
            writeln!(f, "  {s}: {n} ({:.4})", self.frequency(&s))?;
        }
        Ok(())
    }
}

impl FromIterator<BitString> for Counts {
    /// Collects outcomes into a log. The width is taken from the first
    /// outcome.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty or outcomes have mixed widths.
    fn from_iter<T: IntoIterator<Item = BitString>>(iter: T) -> Self {
        let mut it = iter.into_iter();
        let first = it
            .next()
            .expect("cannot collect an empty iterator into Counts");
        let mut counts = Counts::new(first.width());
        counts.record(first);
        for s in it {
            counts.record(s);
        }
        counts
    }
}

impl Extend<BitString> for Counts {
    fn extend<T: IntoIterator<Item = BitString>>(&mut self, iter: T) {
        for s in iter {
            self.record(s);
        }
    }
}

/// An exact probability distribution over `2^width` basis states.
///
/// Guaranteed non-negative and normalized to 1 (within `1e-9`) on
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    width: usize,
    probs: Vec<f64>,
}

impl Distribution {
    /// Creates a distribution from a dense probability vector.
    ///
    /// # Panics
    ///
    /// Panics if the length is not `2^width`, any entry is negative beyond
    /// float slack, or the sum deviates from 1 by more than `1e-6`.
    pub fn from_probabilities(width: usize, probs: Vec<f64>) -> Self {
        assert_eq!(probs.len(), 1usize << width, "length must be 2^width");
        let mut sum = 0.0;
        for &p in &probs {
            assert!(p >= -1e-12, "negative probability {p}");
            sum += p;
        }
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "probabilities sum to {sum}, expected 1"
        );
        Distribution { width, probs }
    }

    /// The uniform distribution over `width` qubits.
    pub fn uniform(width: usize) -> Self {
        let n = 1usize << width;
        Distribution {
            width,
            probs: vec![1.0 / n as f64; n],
        }
    }

    /// A point mass on `s`.
    pub fn point(s: BitString) -> Self {
        let mut probs = vec![0.0; 1usize << s.width()];
        probs[s.index()] = 1.0;
        Distribution {
            width: s.width(),
            probs,
        }
    }

    /// The register width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The dense probability vector (length `2^width`).
    #[inline]
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// The probability of `s`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn probability_of(&self, s: BitString) -> f64 {
        assert_eq!(s.width(), self.width, "bit string width mismatch");
        self.probs[s.index()]
    }

    /// Samples one outcome.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> BitString {
        let mut u: f64 = rng.gen::<f64>();
        for (i, &p) in self.probs.iter().enumerate() {
            if u < p {
                return BitString::from_value(i as u64, self.width);
            }
            u -= p;
        }
        BitString::from_value((self.probs.len() - 1) as u64, self.width)
    }

    /// Returns a new distribution with labels XOR-ed by `mask` (exact
    /// analogue of [`Counts::xor_corrected`]).
    ///
    /// This is both the correction step of Invert-and-Measure *and* the
    /// variant-amortization primitive: appending a pre-measurement X layer
    /// to a circuit permutes its Born distribution by exactly this map, so
    /// one base distribution yields every inversion variant at `O(2^n)`
    /// each with no further simulation (see
    /// [`crate::StateVector::probabilities_xor`]). It is an involution:
    /// permuting twice by the same mask is the identity.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn permute_xor(&self, mask: BitString) -> Distribution {
        assert_eq!(mask.width(), self.width, "mask width mismatch");
        let m = mask.index();
        let mut probs = vec![0.0; self.probs.len()];
        for (i, &p) in self.probs.iter().enumerate() {
            probs[i ^ m] = p;
        }
        Distribution {
            width: self.width,
            probs,
        }
    }

    /// Alias for [`Distribution::permute_xor`], named for symmetry with
    /// [`Counts::xor_corrected`].
    #[must_use]
    pub fn xor_relabeled(&self, mask: BitString) -> Distribution {
        self.permute_xor(mask)
    }

    /// Mixes distributions with the given non-negative weights (weights are
    /// normalized internally) — the exact analogue of the SIM merge.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty, lengths differ, widths differ, or all
    /// weights are zero.
    pub fn mixture(parts: &[(&Distribution, f64)]) -> Distribution {
        assert!(!parts.is_empty(), "mixture of nothing");
        let width = parts[0].0.width;
        let wsum: f64 = parts.iter().map(|&(_, w)| w).sum();
        assert!(wsum > 0.0, "mixture weights sum to zero");
        let mut probs = vec![0.0; 1usize << width];
        for &(d, w) in parts {
            assert_eq!(d.width, width, "mixture width mismatch");
            for (i, &p) in d.probs.iter().enumerate() {
                probs[i] += p * w / wsum;
            }
        }
        Distribution { width, probs }
    }

    /// Total-variation distance to another distribution.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn total_variation(&self, other: &Distribution) -> f64 {
        assert_eq!(self.width, other.width, "width mismatch");
        0.5 * self
            .probs
            .iter()
            .zip(&other.probs)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn record_and_query() {
        let mut c = Counts::new(2);
        c.record(bs("01"));
        c.record_n(bs("11"), 3);
        assert_eq!(c.total(), 4);
        assert_eq!(c.get(&bs("11")), 3);
        assert_eq!(c.get(&bs("00")), 0);
        assert!((c.frequency(&bs("01")) - 0.25).abs() < 1e-12);
        assert_eq!(c.distinct(), 2);
    }

    #[test]
    fn empty_log_frequency_is_zero() {
        let c = Counts::new(2);
        assert_eq!(c.frequency(&bs("00")), 0.0);
        assert_eq!(c.mode(), None);
    }

    #[test]
    fn merge_preserves_mass() {
        let mut a = Counts::new(2);
        a.record_n(bs("00"), 10);
        let mut b = Counts::new(2);
        b.record_n(bs("00"), 5);
        b.record_n(bs("11"), 5);
        a.merge(&b);
        assert_eq!(a.total(), 20);
        assert_eq!(a.get(&bs("00")), 15);
    }

    #[test]
    fn xor_correction_moves_labels() {
        let mut c = Counts::new(3);
        c.record_n(bs("010"), 7);
        c.record_n(bs("111"), 3);
        let fixed = c.xor_corrected(bs("111"));
        assert_eq!(fixed.get(&bs("101")), 7);
        assert_eq!(fixed.get(&bs("000")), 3);
        assert_eq!(fixed.total(), 10);
    }

    #[test]
    fn xor_correction_is_involution() {
        let mut c = Counts::new(3);
        c.record_n(bs("010"), 7);
        c.record_n(bs("110"), 2);
        let mask = bs("101");
        assert_eq!(c.xor_corrected(mask).xor_corrected(mask), c);
    }

    #[test]
    fn ranking_breaks_ties_by_value() {
        let mut c = Counts::new(2);
        c.record_n(bs("10"), 5);
        c.record_n(bs("01"), 5);
        c.record_n(bs("11"), 9);
        let r = c.ranked();
        assert_eq!(r[0].0, bs("11"));
        assert_eq!(r[1].0, bs("01")); // value 1 before value 2
        assert_eq!(r[2].0, bs("10"));
        assert_eq!(c.mode(), Some(bs("11")));
    }

    #[test]
    fn to_distribution_normalizes() {
        let mut c = Counts::new(2);
        c.record_n(bs("00"), 3);
        c.record_n(bs("11"), 1);
        let d = c.to_distribution();
        assert!((d.probability_of(bs("00")) - 0.75).abs() < 1e-12);
        assert!((d.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn marginalize_extracts_and_reorders() {
        let mut c = Counts::new(3);
        c.record_n(bs("101"), 4); // q2=1 q1=0 q0=1
        c.record_n(bs("110"), 2); // q2=1 q1=1 q0=0
                                  // Onto (q0, q2): outcome bit0 = q0, bit1 = q2.
        let m = c.marginalize(&[0, 2]);
        assert_eq!(m.width(), 2);
        assert_eq!(m.get(&bs("11")), 4); // q0=1, q2=1
        assert_eq!(m.get(&bs("10")), 2); // q0=0, q2=1
        assert_eq!(m.total(), 6);
        // Single-qubit marginal merges outcomes.
        let q2 = c.marginalize(&[2]);
        assert_eq!(q2.get(&bs("1")), 6);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn marginalize_rejects_duplicates() {
        let _ = Counts::new(3).marginalize(&[1, 1]);
    }

    #[test]
    fn collect_from_iterator() {
        let c: Counts = vec![bs("01"), bs("01"), bs("10")].into_iter().collect();
        assert_eq!(c.total(), 3);
        assert_eq!(c.get(&bs("01")), 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn record_wrong_width_panics() {
        Counts::new(3).record(bs("01"));
    }

    #[test]
    fn distribution_construction_checks() {
        let d = Distribution::from_probabilities(1, vec![0.25, 0.75]);
        assert!((d.probability_of(bs("1")) - 0.75).abs() < 1e-12);
        assert!(std::panic::catch_unwind(|| {
            Distribution::from_probabilities(1, vec![0.5, 0.6])
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            Distribution::from_probabilities(1, vec![1.5, -0.5])
        })
        .is_err());
    }

    #[test]
    fn uniform_and_point() {
        let u = Distribution::uniform(3);
        assert!((u.probability_of(bs("101")) - 0.125).abs() < 1e-12);
        let p = Distribution::point(bs("101"));
        assert_eq!(p.probability_of(bs("101")), 1.0);
        assert_eq!(p.probability_of(bs("000")), 0.0);
    }

    #[test]
    fn xor_relabeled_matches_counts_behaviour() {
        let d = Distribution::from_probabilities(2, vec![0.1, 0.2, 0.3, 0.4]);
        let r = d.xor_relabeled(bs("11"));
        assert!((r.probability_of(bs("00")) - 0.4).abs() < 1e-12);
        assert!((r.probability_of(bs("11")) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mixture_weights() {
        let a = Distribution::point(bs("00"));
        let b = Distribution::point(bs("11"));
        let m = Distribution::mixture(&[(&a, 1.0), (&b, 3.0)]);
        assert!((m.probability_of(bs("00")) - 0.25).abs() < 1e-12);
        assert!((m.probability_of(bs("11")) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn total_variation_distance() {
        let a = Distribution::point(bs("0"));
        let b = Distribution::point(bs("1"));
        assert!((a.total_variation(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.total_variation(&a), 0.0);
    }

    #[test]
    fn sampling_from_distribution_converges() {
        let d = Distribution::from_probabilities(2, vec![0.5, 0.25, 0.125, 0.125]);
        let mut rng = StdRng::seed_from_u64(42);
        let c = Counts::sample_from(&d, 40_000, &mut rng);
        for (i, &p) in d.probabilities().iter().enumerate() {
            let s = BitString::from_value(i as u64, 2);
            assert!(
                (c.frequency(&s) - p).abs() < 0.01,
                "state {s}: {} vs {p}",
                c.frequency(&s)
            );
        }
    }

    #[test]
    fn from_dense_roundtrips() {
        let c = Counts::from_dense(2, &[3, 0, 1, 6]);
        assert_eq!(c.total(), 10);
        assert_eq!(c.get(&bs("00")), 3);
        assert_eq!(c.get(&bs("01")), 0);
        assert_eq!(c.get(&bs("11")), 6);
        assert_eq!(c.distinct(), 3);
    }

    #[test]
    fn synthesize_matches_sample_statistics() {
        let d = Distribution::from_probabilities(2, vec![0.5, 0.25, 0.125, 0.125]);
        let mut rng = StdRng::seed_from_u64(43);
        let shots = 200_000u64;
        let synth = Counts::synthesize_from(&d, shots, &mut rng);
        assert_eq!(synth.total(), shots);
        for (i, &p) in d.probabilities().iter().enumerate() {
            let s = BitString::from_value(i as u64, 2);
            let sd = (p * (1.0 - p) / shots as f64).sqrt();
            assert!(
                (synth.frequency(&s) - p).abs() < 6.0 * sd,
                "state {s}: {} vs {p}",
                synth.frequency(&s)
            );
        }
    }

    #[test]
    fn synthesize_zero_shots() {
        let d = Distribution::uniform(3);
        let mut rng = StdRng::seed_from_u64(1);
        let c = Counts::synthesize_from(&d, 0, &mut rng);
        assert_eq!(c.total(), 0);
        assert_eq!(c.distinct(), 0);
    }
}
