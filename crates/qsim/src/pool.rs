//! Persistent simulation worker pool and a lightweight phase barrier.
//!
//! The threaded statevector path used to spawn a scoped thread pool per
//! fused program and synchronize with a heavyweight [`std::sync::Barrier`]
//! per op — so much fixed cost that 4 threads lost to 1 on a 16-qubit
//! apply. This module replaces both halves:
//!
//! * [`WorkerPool`] — threads are spawned **once** and parked on a condvar;
//!   dispatching a parallel region costs one mutex round-trip instead of
//!   `threads` clone-and-spawns. The caller participates as worker 0, so a
//!   pool of `t` threads holds `t − 1` parked helpers. Dispatch is
//!   serialized by an internal mutex held for the whole epoch; a
//!   concurrent or re-entrant `run` on the same pool executes on plain
//!   scoped threads instead (bitwise-identical results).
//! * [`SpinBarrier`] — a sense-reversing barrier for the *inside* of a
//!   parallel region (one wait per schedule phase). It spins briefly and
//!   then yields, so it stays cheap when workers outnumber cores (CI
//!   containers are routinely 1–2 vCPUs).
//! * [`run`] — a process-global pool, grown on demand and reused across
//!   programs, batches and service jobs. Concurrent dispatchers (service
//!   workers) fall back to plain scoped threads; results are bitwise
//!   identical either way because chunk arithmetic never depends on the
//!   executing thread.
//!
//! Two process-wide counters ([`pool_tasks`], [`barrier_waits`]) feed the
//! `qmetrics` snapshot so `svc status` can show how much work the pool is
//! actually absorbing.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, TryLockError};
use std::thread::JoinHandle;

/// Process-wide count of worker tasks dispatched through any pool entry
/// point (one per participating worker per parallel region, including the
/// caller's own share).
static POOL_TASKS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of completed [`SpinBarrier`] episodes (one per
/// barrier crossing, not per waiting thread).
static BARRIER_WAITS: AtomicU64 = AtomicU64::new(0);

/// Total pool tasks dispatched by this process so far.
pub fn pool_tasks() -> u64 {
    POOL_TASKS.load(Ordering::Relaxed)
}

/// Total barrier episodes completed by this process so far.
pub fn barrier_waits() -> u64 {
    BARRIER_WAITS.load(Ordering::Relaxed)
}

/// The number of hardware threads available to this process, detected once.
///
/// Thread-count *requests* above this are requests for oversubscription;
/// the statevector entry points clamp to it (which cannot change results —
/// see [`StateVector::apply_fused_threaded`]), while
/// [`StateVector::apply_fused_with_workers`] honors the exact count for
/// tests and benchmarks.
///
/// [`StateVector::apply_fused_threaded`]: crate::StateVector::apply_fused_threaded
/// [`StateVector::apply_fused_with_workers`]: crate::StateVector::apply_fused_with_workers
pub fn available_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Locks a mutex, recovering the guard if a previous holder panicked —
/// pool state is a plain bookkeeping struct that stays consistent across
/// unwinds, so poisoning carries no information here.
fn lock_state(m: &Mutex<DispatchState>) -> MutexGuard<'_, DispatchState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Type-erased pointer to the job closure of the current epoch.
///
/// The pointee is borrowed from the dispatching caller's stack;
/// [`WorkerPool::run`] does not return until every participant has finished
/// with it, which is what makes handing it to other threads sound.
#[derive(Clone, Copy)]
struct SendJob(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the dispatch protocol guarantees it outlives every use.
unsafe impl Send for SendJob {}

/// Pool bookkeeping behind the dispatch mutex.
struct DispatchState {
    /// Bumped once per dispatched job; workers track the last epoch they
    /// observed so a wakeup is never mistaken for a new job.
    epoch: u64,
    /// The current job, present from dispatch until the caller reclaims it.
    job: Option<SendJob>,
    /// Workers participating in the current epoch (including the caller).
    participants: usize,
    /// Helper threads still running the current job.
    remaining: usize,
    /// True once a helper's job closure panicked (re-raised by the caller).
    panicked: bool,
    /// Set by `Drop` to unpark and retire every helper.
    shutdown: bool,
}

struct Shared {
    state: Mutex<DispatchState>,
    /// Helpers park here between epochs.
    work_cv: Condvar,
    /// The caller parks here until `remaining` drains to zero.
    done_cv: Condvar,
}

/// A persistent pool of parked worker threads.
///
/// Construction spawns `threads − 1` helpers (the dispatching caller is
/// worker 0); [`WorkerPool::run`] wakes them for one parallel region and
/// returns when all participants have finished. Most code should go
/// through the process-global [`run`] instead of owning a pool.
///
/// # Examples
///
/// ```
/// use qsim::pool::WorkerPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let sum = AtomicU64::new(0);
/// pool.run(4, &|worker| {
///     sum.fetch_add(worker as u64 + 1, Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Held by [`WorkerPool::run`] for the full duration of an epoch, so
    /// only one dispatcher at a time can touch the epoch bookkeeping. A
    /// concurrent (or re-entrant) `run` observes contention and executes
    /// its region on plain scoped threads instead — same worker indices,
    /// same closure, bitwise-identical results.
    dispatch: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool able to run `threads`-wide parallel regions.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(DispatchState {
                epoch: 0,
                job: None,
                participants: 0,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qsim-pool-{index}"))
                    .spawn(move || helper_loop(&shared, index))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            dispatch: Mutex::new(()),
            handles,
        }
    }

    /// The widest parallel region this pool can run (helpers + caller).
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `f(worker)` once per worker `0..participants`, on the calling
    /// thread (worker 0) and `participants − 1` parked helpers, returning
    /// when all of them have finished. `participants` is clamped to the
    /// pool width.
    ///
    /// Dispatch is serialized internally: when another thread is already
    /// running a region on this pool (or `f` itself calls back into the
    /// same pool), the region executes on plain scoped threads instead of
    /// the parked helpers — same worker indices, same closure, so the
    /// results are bitwise identical either way.
    ///
    /// # Panics
    ///
    /// Panics if any worker's `f` panicked (after every other participant
    /// has finished, so the borrow of `f` never dangles).
    pub fn run(&self, participants: usize, f: &(dyn Fn(usize) + Sync)) {
        let participants = participants.clamp(1, self.threads());
        POOL_TASKS.fetch_add(participants as u64, Ordering::Relaxed);
        if participants == 1 {
            f(0);
            return;
        }
        // Exactly one dispatcher may own the epoch bookkeeping at a time:
        // a second concurrent `run` overwriting `remaining` could drain the
        // first caller's completion wait early and dangle the job borrow.
        // Held for the whole epoch (dispatch through drain). Poisoning just
        // means a previous region panicked — the bookkeeping is already
        // drained, so the guard is safe to recover. Contention (including a
        // re-entrant call from inside a job) falls back to scoped threads.
        let _dispatch = match self.dispatch.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => {
                std::thread::scope(|scope| {
                    for worker in 1..participants {
                        scope.spawn(move || f(worker));
                    }
                    f(0);
                });
                return;
            }
        };
        // SAFETY: only the fat-pointer layout changes; the completion wait
        // below (including the unwind path, via `WaitGuard`) keeps the
        // borrow alive for as long as any helper can dereference it.
        let job = SendJob(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        });
        {
            let mut st = lock_state(&self.shared.state);
            debug_assert_eq!(st.remaining, 0, "previous epoch still running");
            st.epoch = st.epoch.wrapping_add(1);
            st.job = Some(job);
            st.participants = participants;
            st.remaining = participants - 1;
            // A stale flag can survive an epoch whose caller-side `f(0)`
            // unwound before the check below; it must not fail this epoch.
            st.panicked = false;
            self.shared.work_cv.notify_all();
        }
        {
            // Waits for the helpers even if `f(0)` unwinds: the job borrow
            // must outlive every helper's use of it.
            let _wait = WaitGuard {
                shared: &self.shared,
            };
            f(0);
        }
        let mut st = lock_state(&self.shared.state);
        st.job = None;
        if st.panicked {
            st.panicked = false;
            drop(st);
            panic!("a pool worker panicked during the parallel region");
        }
    }
}

/// Blocks until the current epoch's helpers have drained, on drop.
struct WaitGuard<'a> {
    shared: &'a Shared,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock_state(&self.shared.state);
        while st.remaining != 0 {
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_state(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Body of a parked helper thread: wait for a new epoch, run the job if
/// the helper is a participant, decrement the drain count, repeat.
fn helper_loop(shared: &Shared, index: usize) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock_state(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    last_epoch = st.epoch;
                    if index < st.participants {
                        break st.job;
                    }
                    // Not a participant this epoch: keep waiting. A helper
                    // can never miss an epoch it participates in, because a
                    // new epoch is only posted after `remaining` drains.
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        if let Some(SendJob(ptr)) = job {
            // SAFETY: the dispatching caller blocks in `run` until this
            // helper decrements `remaining` below, so the pointee is alive.
            let f = unsafe { &*ptr };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(index)));
            let mut st = lock_state(&shared.state);
            if outcome.is_err() {
                st.panicked = true;
            }
            st.remaining -= 1;
            if st.remaining == 0 {
                shared.done_cv.notify_all();
            }
        }
    }
}

/// The process-global pool, grown on demand and reused across programs.
static GLOBAL: Mutex<Option<WorkerPool>> = Mutex::new(None);

/// Runs `f(worker)` for workers `0..threads` on the process-global
/// persistent pool, creating or growing it on first use.
///
/// The calling thread always executes worker 0. When another thread is
/// already dispatching on the global pool (concurrent service jobs, or a
/// nested parallel region), this falls back to plain scoped threads — the
/// same worker indices run the same closure, so results are identical.
///
/// # Panics
///
/// Panics if `threads` is 0 or any worker's `f` panics.
pub fn run(threads: usize, f: &(dyn Fn(usize) + Sync)) {
    assert!(threads >= 1, "need at least one worker");
    if threads == 1 {
        POOL_TASKS.fetch_add(1, Ordering::Relaxed);
        f(0);
        return;
    }
    // `try_lock`, not `lock`: a blocked dispatcher would serialize
    // independent parallel regions, and a *nested* region (a threaded
    // apply inside a pooled batch) would deadlock against its own caller.
    // Only genuine contention (`WouldBlock`) falls back to scoped threads;
    // a poisoned guard just means a previous job panicked while this mutex
    // was held — the pool itself survives worker panics, so recover it
    // rather than silently degrading every later region to scoped
    // spawning for the rest of the process.
    let guard = match GLOBAL.try_lock() {
        Ok(guard) => Some(guard),
        Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
        Err(TryLockError::WouldBlock) => None,
    };
    if let Some(mut guard) = guard {
        let wide_enough = guard.as_ref().is_some_and(|p| p.threads() >= threads);
        if !wide_enough {
            // Assigning drops (and joins) the old, narrower pool first.
            *guard = Some(WorkerPool::new(threads));
        }
        guard
            .as_ref()
            .expect("pool installed above")
            .run(threads, f);
        return;
    }
    POOL_TASKS.fetch_add(threads as u64, Ordering::Relaxed);
    std::thread::scope(|scope| {
        for worker in 1..threads {
            scope.spawn(move || f(worker));
        }
        f(0);
    });
}

/// A sense-reversing barrier for the inside of one parallel region.
///
/// Unlike [`std::sync::Barrier`] there is no mutex and no syscall on the
/// fast path: arrival is one `fetch_add`, release is one store of the next
/// generation. Waiters spin briefly, then `yield_now` so an oversubscribed
/// region (more workers than cores) degrades to scheduler round-robin
/// instead of livelock-grade spinning.
///
/// Every participating worker must call [`SpinBarrier::wait`] the same
/// number of times; the barrier is reusable across generations.
#[derive(Debug)]
pub struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

/// Spin iterations before a waiter starts yielding its timeslice.
const SPIN_LIMIT: u32 = 64;

impl SpinBarrier {
    /// Creates a barrier for `parties` workers.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is 0.
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "a barrier needs at least one party");
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all parties of the current generation have arrived.
    #[inline]
    pub fn wait(&self) {
        if self.parties == 1 {
            return;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            BARRIER_WAITS.fetch_add(1, Ordering::Relaxed);
            // Reset before release: late waiters load `generation` with
            // Acquire, so they observe the reset before they can re-arrive.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if spins < SPIN_LIMIT {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_runs_every_worker_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits = [const { AtomicU64::new(0) }; 4];
        pool.run(4, &|w| {
            hits[w].fetch_add(1, Ordering::Relaxed);
        });
        for (w, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "worker {w}");
        }
    }

    #[test]
    fn pool_is_reusable_and_clamps_participants() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        for round in 1..=5u64 {
            let sum = AtomicU64::new(0);
            // Requests wider than the pool are clamped to its width.
            pool.run(64, &|w| {
                sum.fetch_add(round + w as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 3 * round + 3);
        }
    }

    #[test]
    fn single_participant_runs_inline() {
        let pool = WorkerPool::new(2);
        let before = pool_tasks();
        pool.run(1, &|w| assert_eq!(w, 0));
        assert!(pool_tasks() > before);
    }

    #[test]
    fn spin_barrier_orders_phases() {
        let pool = WorkerPool::new(4);
        let barrier = SpinBarrier::new(4);
        let phase1 = [const { AtomicU64::new(0) }; 4];
        let sums = [const { AtomicU64::new(0) }; 4];
        pool.run(4, &|w| {
            phase1[w].store(w as u64 + 10, Ordering::Release);
            barrier.wait();
            // After the barrier every phase-1 write is visible.
            let total: u64 = phase1.iter().map(|p| p.load(Ordering::Acquire)).sum();
            sums[w].store(total, Ordering::Relaxed);
            barrier.wait();
        });
        for s in &sums {
            assert_eq!(s.load(Ordering::Relaxed), 10 + 11 + 12 + 13);
        }
    }

    #[test]
    fn worker_panic_is_contained_and_reraised() {
        let pool = WorkerPool::new(2);
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(2, &|w| {
                if w == 1 {
                    panic!("scripted worker failure");
                }
            });
        }));
        assert!(died.is_err(), "the worker panic must surface to the caller");
        // The pool survives and keeps dispatching.
        let sum = AtomicU64::new(0);
        pool.run(2, &|w| {
            sum.fetch_add(w as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn global_run_counts_tasks_and_reuses_the_pool() {
        let before = pool_tasks();
        let sum = AtomicU64::new(0);
        run(3, &|w| {
            sum.fetch_add(w as u64 + 1, Ordering::Relaxed);
        });
        run(3, &|w| {
            sum.fetch_add(w as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 12);
        assert!(pool_tasks() >= before + 6);
    }

    #[test]
    fn nested_dispatch_falls_back_without_deadlock() {
        let sum = AtomicU64::new(0);
        run(2, &|_| {
            // The outer dispatch holds the global pool; the nested region
            // must fall back to scoped threads instead of deadlocking.
            run(2, &|w| {
                sum.fetch_add(w as u64 + 1, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn concurrent_dispatchers_on_one_pool_are_safe() {
        // Regression test: two threads calling `run(&pool, ..)` at once
        // used to race on the epoch bookkeeping (a second dispatcher could
        // drain the first caller's wait early and dangle the job borrow).
        // Now one wins the dispatch lock and the rest run scoped.
        let pool = Arc::new(WorkerPool::new(4));
        let total = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        pool.run(4, &|w| {
                            total.fetch_add(w as u64 + 1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 4 dispatchers x 50 regions x (1 + 2 + 3 + 4) per region.
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 10);
    }

    #[test]
    fn reentrant_dispatch_on_one_pool_falls_back() {
        let pool = WorkerPool::new(2);
        let sum = AtomicU64::new(0);
        pool.run(2, &|_| {
            // Calling back into the same pool from inside a job must not
            // deadlock against the held dispatch lock.
            pool.run(2, &|w| {
                sum.fetch_add(w as u64 + 1, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn global_pool_survives_a_worker_panic() {
        // A worker panic unwinds through `run` while the GLOBAL guard is
        // held, poisoning it. The next dispatch must recover the guard and
        // keep using the persistent pool, not degrade to scoped spawning
        // for the rest of the process.
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(2, &|w| {
                if w == 1 {
                    panic!("scripted worker failure");
                }
            });
        }));
        assert!(died.is_err(), "the worker panic must surface");

        // Persistent-pool helpers are named qsim-pool-N; the scoped
        // fallback runs on anonymous threads. Concurrent tests can steal
        // the global pool for a moment (legitimate fallback), so retry a
        // few times before declaring the pool dead.
        let mut on_pool = false;
        for _ in 0..100 {
            let helper_pooled = AtomicU64::new(0);
            run(2, &|w| {
                if w == 1 {
                    let named = std::thread::current()
                        .name()
                        .is_some_and(|n| n.starts_with("qsim-pool"));
                    helper_pooled.store(named as u64, Ordering::Relaxed);
                }
            });
            if helper_pooled.load(Ordering::Relaxed) == 1 {
                on_pool = true;
                break;
            }
            std::thread::yield_now();
        }
        assert!(
            on_pool,
            "after a panic the global pool should keep dispatching on persistent helpers"
        );
    }

    #[test]
    fn barrier_counts_episodes_not_waiters() {
        let before = barrier_waits();
        let pool = WorkerPool::new(3);
        let barrier = SpinBarrier::new(3);
        pool.run(3, &|_| {
            barrier.wait();
            barrier.wait();
        });
        assert!(barrier_waits() >= before + 2);
    }
}
