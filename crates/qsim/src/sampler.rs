//! Batched sampling kernels: O(1) categorical draws and O(outcomes) shot
//! synthesis.
//!
//! The NISQ trial loop draws thousands to millions of outcomes from the same
//! distribution (one Born distribution per circuit, one confusion row per
//! ideal state). Two kernels remove the per-shot costs:
//!
//! * [`AliasSampler`] — Walker/Vose alias tables. One `O(2^n)` build per
//!   distribution, then every draw is O(1): one uniform index plus one
//!   biased coin. Replaces the `O(2^n)` linear CDF scan of
//!   `StateVector::sample` / `Distribution::sample` in shot loops.
//! * [`multinomial`] — synthesizes the *entire* histogram of `shots` draws
//!   in `O(outcomes)` time by sequential binomial splitting, with cost
//!   independent of the shot count. This is exact sampling (the synthesized
//!   histogram has precisely the multinomial distribution), not an
//!   approximation — see [`binomial`] for the two-regime sampler
//!   underneath.
//!
//! Both kernels consume the caller's RNG stream, so results are
//! deterministic per seed like every other sampling path in the workspace.

use rand::Rng;

/// A Walker/Vose alias table over `k` outcomes: O(k) to build from weights,
/// O(1) per sample.
///
/// # Examples
///
/// ```
/// use qsim::sampler::AliasSampler;
/// use rand::SeedableRng;
///
/// let sampler = AliasSampler::new(&[0.5, 0.25, 0.25]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut hist = [0u64; 3];
/// for _ in 0..10_000 {
///     hist[sampler.sample(&mut rng)] += 1;
/// }
/// assert!(hist[0] > hist[1] && hist[0] > hist[2]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasSampler {
    /// Probability of keeping column `i` (vs. jumping to `alias[i]`).
    keep: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasSampler {
    /// Builds the table from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or longer than `u32::MAX`, contains a
    /// negative or non-finite weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        let k = weights.len();
        assert!(k >= 1, "alias table over no outcomes");
        assert!(k <= u32::MAX as usize, "too many outcomes");
        let mut total = 0.0f64;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
            total += w;
        }
        assert!(total > 0.0, "weights sum to zero");

        // Vose's algorithm: scale weights to mean 1, split into columns
        // below/above the mean, and pair each light column with a heavy
        // donor.
        let scale = k as f64 / total;
        let mut keep = vec![0.0f64; k];
        let mut alias = vec![0u32; k];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            keep[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            // The donor gives away (1 - scaled[s]) of its mass.
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers (float slack) keep their own column with certainty.
        for &i in small.iter().chain(large.iter()) {
            keep[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        AliasSampler { keep, alias }
    }

    /// The number of outcomes.
    #[inline]
    pub fn n_outcomes(&self) -> usize {
        self.keep.len()
    }

    /// Draws one outcome index in O(1).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        // One u64 funds both the column choice and the coin; splitting it
        // would correlate them, so draw the coin separately.
        let col = rng.gen_range(0..self.keep.len());
        if rng.gen::<f64>() < self.keep[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

/// Samples a Binomial(n, p) variate exactly.
///
/// Two regimes, following Kachitvichyanukul & Schmeiser:
///
/// * small mean (`n·min(p,q) < 10`) — BINV, the sequential CDF inversion,
///   O(mean) per draw;
/// * large mean — BTPE, a rejection sampler over a four-piece envelope
///   (triangle / parallelograms / exponential tails), O(1) expected.
///
/// # Panics
///
/// Panics if `p` is not a probability.
pub fn binomial<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // Work with p ≤ 1/2 and mirror at the end.
    let flipped = p > 0.5;
    let p = if flipped { 1.0 - p } else { p };
    let np = n as f64 * p;
    let x = if np < 10.0 {
        binomial_inversion(n, p, rng)
    } else {
        binomial_btpe(n, p, rng)
    };
    if flipped {
        n - x
    } else {
        x
    }
}

/// BINV: invert the CDF by walking the probability mass from 0 upward.
/// Requires n·p small enough that `q^n` does not underflow (guaranteed by
/// the caller's `np < 10`, `p ≤ 1/2` regime split).
fn binomial_inversion<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let a = (n + 1) as f64 * s;
    loop {
        // P(X = 0) = q^n; the recurrence multiplies by (a/x - s) each step.
        let mut r = q.powf(n as f64);
        let mut u: f64 = rng.gen();
        let mut x = 0u64;
        loop {
            if u < r {
                return x;
            }
            if x >= n {
                // Accumulated float error exhausted the mass; resample.
                break;
            }
            u -= r;
            x += 1;
            r *= a / x as f64 - s;
        }
    }
}

/// The Stirling-series tail correction used in BTPE's final acceptance
/// test: `ln(k!) ≈ stirling(k) + …` remainder for the exact binomial pmf.
#[inline]
fn stirling_tail(v: f64) -> f64 {
    let sq = v * v;
    (13860.0 - (462.0 - (132.0 - (99.0 - 140.0 / sq) / sq) / sq) / sq) / v / 166320.0
}

/// BTPE (Binomial Triangle-Parallelogram-Exponential) for n·p ≥ 10, p ≤ ½.
fn binomial_btpe<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let nf = n as f64;
    let r = p;
    let q = 1.0 - p;
    let npq = nf * r * q;
    let f_m = nf * r + r;
    let m = f_m.floor();
    // Envelope geometry (§3 of the paper): a central triangle over
    // [x_l, x_r], parallelogram shoulders, and exponential tails.
    let p1 = (2.195 * npq.sqrt() - 4.6 * q).floor() + 0.5;
    let x_m = m + 0.5;
    let x_l = x_m - p1;
    let x_r = x_m + p1;
    let c = 0.134 + 20.5 / (15.3 + m);
    let a_l = (f_m - x_l) / (f_m - x_l * r);
    let lambda_l = a_l * (1.0 + 0.5 * a_l);
    let a_r = (x_r - f_m) / (x_r * q);
    let lambda_r = a_r * (1.0 + 0.5 * a_r);
    let p2 = p1 * (1.0 + 2.0 * c);
    let p3 = p2 + c / lambda_l;
    let p4 = p3 + c / lambda_r;

    loop {
        let u: f64 = rng.gen::<f64>() * p4;
        let mut v: f64 = rng.gen();
        let y: f64;
        if u <= p1 {
            // Central triangle: accept immediately.
            y = (x_m - p1 * v + u).floor();
            return y.max(0.0) as u64;
        } else if u <= p2 {
            // Parallelogram shoulders.
            let x = x_l + (u - p1) / c;
            v = v * c + 1.0 - (m - x + 0.5).abs() / p1;
            if v > 1.0 || v <= 0.0 {
                continue;
            }
            y = x.floor();
        } else if u <= p3 {
            // Left exponential tail.
            y = (x_l + v.ln() / lambda_l).floor();
            if y < 0.0 {
                continue;
            }
            v *= (u - p2) * lambda_l;
        } else {
            // Right exponential tail.
            y = (x_r - v.ln() / lambda_r).floor();
            if y > nf {
                continue;
            }
            v *= (u - p3) * lambda_r;
        }

        // Acceptance: compare v against the pmf ratio f(y)/f(M).
        let k = (y - m).abs();
        if k <= 20.0 || k >= npq / 2.0 - 1.0 {
            // Small distance: evaluate the ratio by direct recurrence.
            let s = r / q;
            let a = s * (nf + 1.0);
            let mut f = 1.0;
            if m < y {
                let mut i = m;
                while i < y {
                    i += 1.0;
                    f *= a / i - s;
                }
            } else if m > y {
                let mut i = y;
                while i < m {
                    i += 1.0;
                    f /= a / i - s;
                }
            }
            if v <= f {
                return y as u64;
            }
        } else {
            // Squeeze test on log scale.
            let rho = (k / npq) * ((k * (k / 3.0 + 0.625) + 1.0 / 6.0) / npq + 0.5);
            let t = -k * k / (2.0 * npq);
            let big_a = v.ln();
            if big_a < t - rho {
                return y as u64;
            }
            if big_a <= t + rho {
                // Full acceptance test with Stirling corrections.
                let x1 = y + 1.0;
                let f1 = m + 1.0;
                let z = nf + 1.0 - m;
                let w = nf - y + 1.0;
                let bound = x_m * (f1 / x1).ln()
                    + (nf - m + 0.5) * (z / w).ln()
                    + (y - m) * (w * r / (x1 * q)).ln()
                    + stirling_tail(f1)
                    + stirling_tail(z)
                    - stirling_tail(x1)
                    - stirling_tail(w);
                if big_a <= bound {
                    return y as u64;
                }
            }
        }
    }
}

/// Synthesizes the histogram of `shots` i.i.d. draws from the categorical
/// distribution `probs` by sequential binomial splitting, in
/// `O(probs.len())` time — independent of `shots`.
///
/// The output vector has `probs.len()` entries summing to exactly `shots`,
/// distributed as Multinomial(shots, probs). `probs` may be unnormalized;
/// it is normalized by its sum.
///
/// # Panics
///
/// Panics if `probs` is empty, contains a negative or non-finite entry, or
/// sums to zero.
///
/// # Examples
///
/// ```
/// use qsim::sampler::multinomial;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let hist = multinomial(&[0.7, 0.2, 0.1], 100_000, &mut rng);
/// assert_eq!(hist.iter().sum::<u64>(), 100_000);
/// assert!(hist[0] > hist[1] && hist[1] > hist[2]);
/// ```
pub fn multinomial<R: Rng + ?Sized>(probs: &[f64], shots: u64, rng: &mut R) -> Vec<u64> {
    assert!(!probs.is_empty(), "multinomial over no outcomes");
    let mut total = 0.0f64;
    for &p in probs {
        assert!(p.is_finite() && p >= 0.0, "invalid probability {p}");
        total += p;
    }
    assert!(total > 0.0, "probabilities sum to zero");

    let mut counts = vec![0u64; probs.len()];
    let mut remaining_shots = shots;
    let mut remaining_mass = total;
    for (i, &p) in probs.iter().enumerate() {
        if remaining_shots == 0 {
            break;
        }
        if p <= 0.0 {
            continue;
        }
        if p >= remaining_mass {
            // Last outcome with mass (up to float slack): takes the rest.
            counts[i] = remaining_shots;
            remaining_shots = 0;
            break;
        }
        // Conditional on the first i outcomes, shots land here w.p. p/rest.
        let drawn = binomial(remaining_shots, (p / remaining_mass).min(1.0), rng);
        counts[i] = drawn;
        remaining_shots -= drawn;
        remaining_mass -= p;
    }
    if remaining_shots > 0 {
        // Float slack starved the tail; give the leftovers to the largest
        // outcome so mass stays exact.
        let argmax = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
            .map(|(i, _)| i)
            .expect("probs is non-empty");
        counts[argmax] += remaining_shots;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5EED)
    }

    #[test]
    fn alias_matches_weights() {
        let weights = [4.0, 2.0, 1.0, 1.0, 0.0, 8.0];
        let total: f64 = weights.iter().sum();
        let sampler = AliasSampler::new(&weights);
        let mut r = rng();
        let n = 200_000;
        let mut hist = [0u64; 6];
        for _ in 0..n {
            hist[sampler.sample(&mut r)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = hist[i] as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.005,
                "outcome {i}: {got} vs {expect}"
            );
        }
        assert_eq!(hist[4], 0, "zero-weight outcome sampled");
    }

    #[test]
    fn alias_single_outcome() {
        let sampler = AliasSampler::new(&[3.7]);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut r), 0);
        }
    }

    #[test]
    fn alias_point_mass() {
        let sampler = AliasSampler::new(&[0.0, 0.0, 1.0, 0.0]);
        let mut r = rng();
        for _ in 0..1000 {
            assert_eq!(sampler.sample(&mut r), 2);
        }
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn alias_rejects_zero_mass() {
        AliasSampler::new(&[0.0, 0.0]);
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng();
        assert_eq!(binomial(0, 0.3, &mut r), 0);
        assert_eq!(binomial(100, 0.0, &mut r), 0);
        assert_eq!(binomial(100, 1.0, &mut r), 100);
        for _ in 0..100 {
            let x = binomial(1, 0.5, &mut r);
            assert!(x <= 1);
        }
    }

    #[test]
    fn binomial_moments_match_both_regimes() {
        // (n, p) pairs hitting BINV (np < 10), BTPE (np ≥ 10), and the
        // p > 1/2 mirror of each.
        let cases = [
            (40u64, 0.05f64),
            (40, 0.95),
            (1000, 0.004),
            (8192, 0.5),
            (8192, 0.9),
            (100_000, 0.37),
        ];
        let mut r = rng();
        let reps = 4000;
        for (n, p) in cases {
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for _ in 0..reps {
                let x = binomial(n, p, &mut r) as f64;
                assert!(x <= n as f64);
                sum += x;
                sum_sq += x * x;
            }
            let mean = sum / reps as f64;
            let var = sum_sq / reps as f64 - mean * mean;
            let expect_mean = n as f64 * p;
            let expect_var = n as f64 * p * (1.0 - p);
            // Sample mean of `reps` draws has sd sqrt(var/reps); allow 5 sd.
            let mean_tol = 5.0 * (expect_var / reps as f64).sqrt();
            assert!(
                (mean - expect_mean).abs() < mean_tol.max(0.05),
                "n={n} p={p}: mean {mean} vs {expect_mean}"
            );
            assert!(
                (var / expect_var - 1.0).abs() < 0.15,
                "n={n} p={p}: var {var} vs {expect_var}"
            );
        }
    }

    #[test]
    fn binomial_distribution_matches_exact_pmf() {
        // Goodness-of-fit for a BTPE case small enough to enumerate.
        let (n, p) = (50u64, 0.4f64);
        let mut r = rng();
        let reps = 60_000u64;
        let mut hist = vec![0u64; n as usize + 1];
        for _ in 0..reps {
            hist[binomial(n, p, &mut r) as usize] += 1;
        }
        // Exact pmf by recurrence.
        let mut pmf = vec![0.0f64; n as usize + 1];
        pmf[0] = (1.0 - p).powi(n as i32);
        for k in 1..=n as usize {
            pmf[k] = pmf[k - 1] * (n as f64 - k as f64 + 1.0) / k as f64 * p / (1.0 - p);
        }
        for k in 0..=n as usize {
            let got = hist[k] as f64 / reps as f64;
            let sd = (pmf[k] * (1.0 - pmf[k]) / reps as f64).sqrt();
            assert!(
                (got - pmf[k]).abs() < 6.0 * sd + 1e-4,
                "k={k}: {got} vs {} (sd {sd})",
                pmf[k]
            );
        }
    }

    #[test]
    fn multinomial_preserves_shots_exactly() {
        let mut r = rng();
        for shots in [0u64, 1, 7, 100, 8192, 1_000_000] {
            let hist = multinomial(&[0.5, 0.3, 0.15, 0.05], shots, &mut r);
            assert_eq!(hist.iter().sum::<u64>(), shots);
        }
    }

    #[test]
    fn multinomial_matches_frequencies() {
        let probs = [0.45, 0.25, 0.2, 0.07, 0.03];
        let mut r = rng();
        let shots = 2_000_000u64;
        let hist = multinomial(&probs, shots, &mut r);
        for (i, &p) in probs.iter().enumerate() {
            let got = hist[i] as f64 / shots as f64;
            let sd = (p * (1.0 - p) / shots as f64).sqrt();
            assert!((got - p).abs() < 6.0 * sd, "outcome {i}: {got} vs {p}");
        }
    }

    #[test]
    fn multinomial_zero_and_point_outcomes() {
        let mut r = rng();
        let hist = multinomial(&[0.0, 1.0, 0.0], 500, &mut r);
        assert_eq!(hist, vec![0, 500, 0]);
        // Fewer shots than outcomes is fine.
        let hist = multinomial(&[1.0; 32], 8, &mut r);
        assert_eq!(hist.iter().sum::<u64>(), 8);
    }

    #[test]
    fn multinomial_deterministic_per_seed() {
        let probs = [0.3, 0.3, 0.2, 0.2];
        let a = multinomial(&probs, 10_000, &mut StdRng::seed_from_u64(11));
        let b = multinomial(&probs, 10_000, &mut StdRng::seed_from_u64(11));
        let c = multinomial(&probs, 10_000, &mut StdRng::seed_from_u64(12));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
