//! OpenQASM 2.0 interchange for circuits.
//!
//! The paper's experiments ran as OpenQASM jobs on the IBM Q cloud; this
//! module lets the reproduction's circuits round-trip through the same
//! format, so they can be inspected with standard tooling or submitted to
//! a real backend unchanged.
//!
//! [`to_qasm`] emits the full supported gate set; [`from_qasm`] parses the
//! subset that `to_qasm` produces (one quantum register, optional final
//! measurement of every qubit).

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::fmt::Write as _;

/// Serializes a circuit as OpenQASM 2.0, ending with a full-register
/// measurement (the NISQ execution model always measures every qubit).
///
/// # Examples
///
/// ```
/// use qsim::{qasm, Circuit};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("h q[0];"));
/// assert!(text.contains("cx q[0],q[1];"));
/// let back = qasm::from_qasm(&text)?;
/// assert_eq!(back, c);
/// # Ok::<(), qsim::qasm::QasmError>(())
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let n = circuit.n_qubits();
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{n}];");
    let _ = writeln!(out, "creg c[{n}];");
    for g in circuit.gates() {
        match *g {
            Gate::X(q) => {
                let _ = writeln!(out, "x q[{q}];");
            }
            Gate::Y(q) => {
                let _ = writeln!(out, "y q[{q}];");
            }
            Gate::Z(q) => {
                let _ = writeln!(out, "z q[{q}];");
            }
            Gate::H(q) => {
                let _ = writeln!(out, "h q[{q}];");
            }
            Gate::S(q) => {
                let _ = writeln!(out, "s q[{q}];");
            }
            Gate::Sdg(q) => {
                let _ = writeln!(out, "sdg q[{q}];");
            }
            Gate::T(q) => {
                let _ = writeln!(out, "t q[{q}];");
            }
            Gate::Tdg(q) => {
                let _ = writeln!(out, "tdg q[{q}];");
            }
            Gate::Rx { qubit, theta } => {
                let _ = writeln!(out, "rx({theta:.17e}) q[{qubit}];");
            }
            Gate::Ry { qubit, theta } => {
                let _ = writeln!(out, "ry({theta:.17e}) q[{qubit}];");
            }
            Gate::Rz { qubit, theta } => {
                let _ = writeln!(out, "rz({theta:.17e}) q[{qubit}];");
            }
            Gate::Phase { qubit, lambda } => {
                let _ = writeln!(out, "p({lambda:.17e}) q[{qubit}];");
            }
            Gate::Cx { control, target } => {
                let _ = writeln!(out, "cx q[{control}],q[{target}];");
            }
            Gate::Cz { control, target } => {
                let _ = writeln!(out, "cz q[{control}],q[{target}];");
            }
            Gate::Rzz { a, b, theta } => {
                let _ = writeln!(out, "rzz({theta:.17e}) q[{a}],q[{b}];");
            }
            Gate::Swap { a, b } => {
                let _ = writeln!(out, "swap q[{a}],q[{b}];");
            }
        }
    }
    for q in 0..n {
        let _ = writeln!(out, "measure q[{q}] -> c[{q}];");
    }
    out
}

/// Error parsing OpenQASM text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QasmError {
    line: usize,
    message: String,
}

impl QasmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        QasmError {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for QasmError {}

/// Parses the OpenQASM 2.0 subset produced by [`to_qasm`].
///
/// Supported statements: the version header, `include`, a single `qreg`,
/// `creg` (ignored), `measure` (ignored), `barrier` (ignored), comments,
/// and the gate set of [`Gate`].
///
/// # Errors
///
/// Returns a [`QasmError`] naming the offending line on malformed input,
/// unsupported gates, or missing/duplicate `qreg`.
pub fn from_qasm(text: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            parse_statement(stmt, lineno, &mut circuit)?;
        }
    }
    circuit.ok_or_else(|| QasmError::new(0, "no qreg declaration found"))
}

fn parse_statement(
    stmt: &str,
    lineno: usize,
    circuit: &mut Option<Circuit>,
) -> Result<(), QasmError> {
    if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("qreg") {
        if circuit.is_some() {
            return Err(QasmError::new(lineno, "multiple qreg declarations"));
        }
        let n = parse_reg_size(rest.trim())
            .ok_or_else(|| QasmError::new(lineno, format!("bad qreg declaration {rest:?}")))?;
        *circuit = Some(Circuit::new(n));
        return Ok(());
    }
    if stmt.starts_with("creg") || stmt.starts_with("measure") || stmt.starts_with("barrier") {
        return Ok(());
    }
    let circuit = circuit
        .as_mut()
        .ok_or_else(|| QasmError::new(lineno, "gate before qreg declaration"))?;
    let (head, args) = stmt
        .split_once(' ')
        .ok_or_else(|| QasmError::new(lineno, format!("malformed statement {stmt:?}")))?;
    let (name, params) = match head.split_once('(') {
        Some((n, p)) => {
            let p = p
                .strip_suffix(')')
                .ok_or_else(|| QasmError::new(lineno, "unterminated parameter list"))?;
            (n, Some(p))
        }
        None => (head, None),
    };
    let qubits: Vec<usize> = args
        .split(',')
        .map(|a| parse_qubit(a.trim()))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| QasmError::new(lineno, format!("bad qubit operands {args:?}")))?;
    let theta = || -> Result<f64, QasmError> {
        params
            .ok_or_else(|| QasmError::new(lineno, format!("{name} requires a parameter")))?
            .trim()
            .parse::<f64>()
            .map_err(|_| QasmError::new(lineno, format!("bad angle in {stmt:?}")))
    };
    let one = |qubits: &[usize]| -> Result<usize, QasmError> {
        if qubits.len() == 1 {
            Ok(qubits[0])
        } else {
            Err(QasmError::new(lineno, format!("{name} takes one qubit")))
        }
    };
    let two = |qubits: &[usize]| -> Result<(usize, usize), QasmError> {
        if qubits.len() == 2 {
            Ok((qubits[0], qubits[1]))
        } else {
            Err(QasmError::new(lineno, format!("{name} takes two qubits")))
        }
    };
    let gate = match name {
        "x" => Gate::X(one(&qubits)?),
        "y" => Gate::Y(one(&qubits)?),
        "z" => Gate::Z(one(&qubits)?),
        "h" => Gate::H(one(&qubits)?),
        "s" => Gate::S(one(&qubits)?),
        "sdg" => Gate::Sdg(one(&qubits)?),
        "t" => Gate::T(one(&qubits)?),
        "tdg" => Gate::Tdg(one(&qubits)?),
        "rx" => Gate::Rx {
            qubit: one(&qubits)?,
            theta: theta()?,
        },
        "ry" => Gate::Ry {
            qubit: one(&qubits)?,
            theta: theta()?,
        },
        "rz" => Gate::Rz {
            qubit: one(&qubits)?,
            theta: theta()?,
        },
        "p" | "u1" => Gate::Phase {
            qubit: one(&qubits)?,
            lambda: theta()?,
        },
        "cx" => {
            let (control, target) = two(&qubits)?;
            Gate::Cx { control, target }
        }
        "cz" => {
            let (control, target) = two(&qubits)?;
            Gate::Cz { control, target }
        }
        "rzz" => {
            let (a, b) = two(&qubits)?;
            Gate::Rzz {
                a,
                b,
                theta: theta()?,
            }
        }
        "swap" => {
            let (a, b) = two(&qubits)?;
            Gate::Swap { a, b }
        }
        other => {
            return Err(QasmError::new(
                lineno,
                format!("unsupported gate {other:?}"),
            ))
        }
    };
    if gate.qubits().iter().any(|&q| q >= circuit.n_qubits()) {
        return Err(QasmError::new(
            lineno,
            format!("qubit out of range in {stmt:?}"),
        ));
    }
    circuit.push(gate);
    Ok(())
}

/// Parses `q[5]` into `5`.
fn parse_qubit(token: &str) -> Option<usize> {
    let rest = token.strip_prefix("q[")?;
    let idx = rest.strip_suffix(']')?;
    idx.parse().ok()
}

/// Parses `q[5]` (a register declaration operand) into `5`.
fn parse_reg_size(token: &str) -> Option<usize> {
    parse_qubit(token)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVector;

    fn rich_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0)
            .x(1)
            .y(2)
            .z(0)
            .s(1)
            .push(Gate::Sdg(2))
            .push(Gate::T(0))
            .push(Gate::Tdg(1))
            .rx(0, 0.25)
            .ry(1, -1.5)
            .rz(2, 3.0)
            .p(0, 0.75)
            .cx(0, 1)
            .cz(1, 2)
            .rzz(0, 2, 0.5)
            .swap(1, 2);
        c
    }

    #[test]
    fn roundtrip_preserves_circuit() {
        let c = rich_circuit();
        let text = to_qasm(&c);
        let back = from_qasm(&text).expect("parse own output");
        assert_eq!(back, c);
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let c = rich_circuit();
        let back = from_qasm(&to_qasm(&c)).unwrap();
        let a = StateVector::from_circuit(&c);
        let b = StateVector::from_circuit(&back);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn emits_headers_and_measurements() {
        let mut c = Circuit::new(2);
        c.h(0);
        let text = to_qasm(&c);
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[2];"));
        assert!(text.contains("creg c[2];"));
        assert!(text.contains("measure q[0] -> c[0];"));
        assert!(text.contains("measure q[1] -> c[1];"));
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "OPENQASM 2.0;\n// a comment\n\nqreg q[1];\nx q[0]; // inline\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.gates(), &[Gate::X(0)]);
    }

    #[test]
    fn parses_u1_alias() {
        let text = "qreg q[1];\nu1(0.5) q[0];";
        let c = from_qasm(text).unwrap();
        assert_eq!(
            c.gates(),
            &[Gate::Phase {
                qubit: 0,
                lambda: 0.5
            }]
        );
    }

    #[test]
    fn error_reporting() {
        let cases = [
            ("x q[0];", "before qreg"),
            ("qreg q[2];\nccx q[0],q[1];", "unsupported gate"),
            ("qreg q[2];\nx q[5];", "out of range"),
            ("qreg q[1];\nrx q[0];", "requires a parameter"),
            ("qreg q[1];\nqreg q[1];", "multiple qreg"),
            ("", "no qreg"),
        ];
        for (text, expect) in cases {
            let err = from_qasm(text).unwrap_err().to_string();
            assert!(err.contains(expect), "{text:?}: {err}");
        }
    }

    #[test]
    fn error_includes_line_number() {
        let err = from_qasm("qreg q[1];\n\nbadgate q[0];").unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }
}
