//! Decomposition into the hardware basis gate set.
//!
//! IBM's 2019 machines executed `{u1, u2, u3, cx}`; everything else was
//! decomposed by the vendor compiler. Gate counts — and therefore gate
//! error — depend on the decomposed form: a QAOA `Rzz` edge is *two* CX
//! gates on hardware, a SWAP is three. [`to_cx_basis`] rewrites a circuit
//! into `{single-qubit rotations, CX}` so noise studies can charge the
//! true two-qubit cost.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::f64::consts::{FRAC_PI_2, PI};

/// Rewrites `circuit` into single-qubit gates plus CX.
///
/// Decompositions used (all standard identities, exact up to global
/// phase):
///
/// * `CZ(a,b)   → H(b) · CX(a,b) · H(b)`
/// * `RZZ(θ)    → CX(a,b) · RZ_b(θ) · CX(a,b)`
/// * `SWAP(a,b) → CX(a,b) · CX(b,a) · CX(a,b)`
///
/// Single-qubit gates pass through unchanged.
///
/// # Examples
///
/// ```
/// use qsim::{transpile, Circuit, StateVector};
///
/// let mut c = Circuit::new(2);
/// c.h(0).rzz(0, 1, 0.7).swap(0, 1);
/// let lowered = transpile::to_cx_basis(&c);
/// // Only CX remains as a two-qubit gate, and semantics are preserved.
/// assert_eq!(lowered.two_qubit_gate_count(), 5);
/// let a = StateVector::from_circuit(&c);
/// let b = StateVector::from_circuit(&lowered);
/// assert!((a.fidelity(&b) - 1.0).abs() < 1e-9);
/// ```
pub fn to_cx_basis(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.n_qubits());
    for g in circuit.gates() {
        match *g {
            Gate::Cz { control, target } => {
                out.h(target).cx(control, target).h(target);
            }
            Gate::Rzz { a, b, theta } => {
                out.cx(a, b).rz(b, theta).cx(a, b);
            }
            Gate::Swap { a, b } => {
                out.cx(a, b).cx(b, a).cx(a, b);
            }
            other => {
                out.push(other);
            }
        }
    }
    out
}

/// Further rewrites every single-qubit gate into `Rz`/`Ry` rotations (the
/// Euler form used when only virtual-Z plus two physical rotations are
/// calibrated). Two-qubit gates must already be CX ([`to_cx_basis`] first).
///
/// # Panics
///
/// Panics if the circuit still contains non-CX two-qubit gates.
pub fn to_rotation_basis(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.n_qubits());
    for g in circuit.gates() {
        match *g {
            Gate::Cx { .. } => {
                out.push(*g);
            }
            Gate::X(q) => {
                // Ry(π)·Rz(π) = (−iY)(−iZ) = −YZ = −iX.
                out.rz(q, PI).ry(q, PI);
            }
            Gate::Y(q) => {
                // Ry(π) = −iY.
                out.ry(q, PI);
            }
            Gate::Z(q) => {
                out.rz(q, PI);
            }
            Gate::H(q) => {
                out.rz(q, PI).ry(q, FRAC_PI_2);
            }
            Gate::S(q) => {
                out.rz(q, FRAC_PI_2);
            }
            Gate::Sdg(q) => {
                out.rz(q, -FRAC_PI_2);
            }
            Gate::T(q) => {
                out.rz(q, PI / 4.0);
            }
            Gate::Tdg(q) => {
                out.rz(q, -PI / 4.0);
            }
            Gate::Rx { qubit, theta } => {
                // Rx(θ) = Rz(-π/2) Ry(θ) Rz(π/2)
                out.rz(qubit, FRAC_PI_2)
                    .ry(qubit, theta)
                    .rz(qubit, -FRAC_PI_2);
            }
            Gate::Phase { qubit, lambda } => {
                out.rz(qubit, lambda);
            }
            Gate::Ry { .. } | Gate::Rz { .. } => {
                out.push(*g);
            }
            two_qubit => panic!("run to_cx_basis first: found {two_qubit}"),
        }
    }
    out
}

/// The number of CX gates a circuit costs once lowered to the hardware
/// basis — the quantity that actually drives gate-error budgets.
pub fn cx_cost(circuit: &Circuit) -> usize {
    circuit
        .gates()
        .iter()
        .map(|g| match g {
            Gate::Cx { .. } => 1,
            Gate::Cz { .. } => 1,
            Gate::Rzz { .. } => 2,
            Gate::Swap { .. } => 3,
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVector;

    fn fidelity_preserved(c: &Circuit, lowered: &Circuit) {
        let a = StateVector::from_circuit(c);
        let b = StateVector::from_circuit(lowered);
        assert!(
            (a.fidelity(&b) - 1.0).abs() < 1e-9,
            "fidelity {}",
            a.fidelity(&b)
        );
    }

    #[test]
    fn cz_decomposition() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cz(0, 1);
        let lowered = to_cx_basis(&c);
        assert!(lowered
            .gates()
            .iter()
            .all(|g| !matches!(g, Gate::Cz { .. })));
        fidelity_preserved(&c, &lowered);
    }

    #[test]
    fn rzz_decomposition() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).rzz(0, 1, 1.234);
        let lowered = to_cx_basis(&c);
        assert_eq!(lowered.two_qubit_gate_count(), 2);
        fidelity_preserved(&c, &lowered);
    }

    #[test]
    fn swap_decomposition() {
        let mut c = Circuit::new(3);
        c.x(0).h(2).swap(0, 2);
        let lowered = to_cx_basis(&c);
        assert_eq!(lowered.two_qubit_gate_count(), 3);
        fidelity_preserved(&c, &lowered);
    }

    #[test]
    fn mixed_circuit_roundtrip() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cz(0, 1)
            .rzz(1, 2, 0.6)
            .swap(0, 2)
            .ry(1, 0.4)
            .cx(2, 1);
        let lowered = to_cx_basis(&c);
        assert!(lowered
            .gates()
            .iter()
            .filter(|g| g.is_two_qubit())
            .all(|g| matches!(g, Gate::Cx { .. })));
        fidelity_preserved(&c, &lowered);
    }

    #[test]
    fn rotation_basis_preserves_probabilities() {
        // Global phases differ, so compare measurement distributions
        // rather than fidelity on states where phases matter... fidelity
        // |<a|b>|^2 is already phase-insensitive.
        let mut c = Circuit::new(2);
        c.h(0)
            .x(1)
            .s(0)
            .push(Gate::Tdg(1))
            .rx(0, 0.3)
            .p(1, 0.9)
            .cx(0, 1)
            .y(0)
            .z(1);
        let lowered = to_rotation_basis(&to_cx_basis(&c));
        assert!(lowered
            .gates()
            .iter()
            .all(|g| matches!(g, Gate::Rz { .. } | Gate::Ry { .. } | Gate::Cx { .. })));
        fidelity_preserved(&c, &lowered);
    }

    #[test]
    fn cx_cost_accounting() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cz(1, 2).rzz(0, 2, 0.1).swap(0, 1).h(2);
        assert_eq!(cx_cost(&c), 1 + 1 + 2 + 3);
        assert_eq!(to_cx_basis(&c).two_qubit_gate_count(), cx_cost(&c));
    }

    #[test]
    #[should_panic(expected = "to_cx_basis first")]
    fn rotation_basis_rejects_raw_two_qubit_gates() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        to_rotation_basis(&c);
    }

    #[test]
    fn qaoa_cx_cost_is_double_edge_count() {
        // The realistic gate budget of a QAOA layer: 2 CX per edge.
        let mut c = Circuit::new(4);
        for &(a, b) in &[(0usize, 1usize), (1, 2), (2, 3), (0, 3)] {
            c.rzz(a, b, 0.4);
        }
        assert_eq!(cx_cost(&c), 8);
    }
}
