//! Property tests for the fused/specialized statevector kernels and the
//! XOR variant-amortization primitives.
//!
//! Fixed-seed [`StdRng`] loops (same convention as `proptests.rs`): every
//! failure reproduces exactly, and assertion messages carry the case index.

use qsim::c64::C64;
use qsim::fuse::FusedProgram;
use qsim::{BitString, Circuit, Distribution, Gate, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-12;

fn distinct_pair(n: usize, rng: &mut StdRng) -> (usize, usize) {
    let a = rng.gen_range(0..n);
    let mut b = rng.gen_range(0..n - 1);
    if b >= a {
        b += 1;
    }
    (a, b)
}

/// A random gate drawn from the full supported gate set.
fn random_gate(n: usize, rng: &mut StdRng) -> Gate {
    let q = rng.gen_range(0..n);
    let theta = rng.gen_range(-3.0..3.0f64);
    match rng.gen_range(0..16u32) {
        0 => Gate::X(q),
        1 => Gate::Y(q),
        2 => Gate::Z(q),
        3 => Gate::H(q),
        4 => Gate::S(q),
        5 => Gate::Sdg(q),
        6 => Gate::T(q),
        7 => Gate::Tdg(q),
        8 => Gate::Rx { qubit: q, theta },
        9 => Gate::Ry { qubit: q, theta },
        10 => Gate::Rz { qubit: q, theta },
        11 => Gate::Phase {
            qubit: q,
            lambda: theta,
        },
        12 => {
            let (control, target) = distinct_pair(n, rng);
            Gate::Cx { control, target }
        }
        13 => {
            let (control, target) = distinct_pair(n, rng);
            Gate::Cz { control, target }
        }
        14 => {
            let (a, b) = distinct_pair(n, rng);
            Gate::Rzz { a, b, theta }
        }
        _ => {
            let (a, b) = distinct_pair(n, rng);
            Gate::Swap { a, b }
        }
    }
}

fn random_circuit(n: usize, len: usize, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..len {
        c.push(random_gate(n, rng));
    }
    c
}

/// A random normalized state (exercises kernels on dense inputs).
fn random_state(n: usize, rng: &mut StdRng) -> StateVector {
    let mut amps: Vec<C64> = (0..1usize << n)
        .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    let norm = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    for a in &mut amps {
        *a = *a / norm;
    }
    StateVector::from_amplitudes(amps)
}

/// Reference implementation: apply a gate by its matrix, straight from the
/// documented basis conventions, with no specialization at all.
fn apply_gate_reference(amps: &mut [C64], gate: &Gate) {
    let qs = gate.qubits();
    let dim = amps.len();
    if gate.is_two_qubit() {
        let m = gate.matrix4();
        let ba = 1usize << qs[0];
        let bb = 1usize << qs[1];
        for i00 in 0..dim {
            if i00 & ba != 0 || i00 & bb != 0 {
                continue;
            }
            let idx = [i00, i00 | ba, i00 | bb, i00 | ba | bb];
            let v = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
            for r in 0..4 {
                let mut acc = C64::ZERO;
                for c in 0..4 {
                    acc += m[r][c] * v[c];
                }
                amps[idx[r]] = acc;
            }
        }
    } else {
        let m = gate.matrix2();
        let bit = 1usize << qs[0];
        for i0 in 0..dim {
            if i0 & bit != 0 {
                continue;
            }
            let i1 = i0 | bit;
            let a0 = amps[i0];
            let a1 = amps[i1];
            amps[i0] = m[0][0] * a0 + m[0][1] * a1;
            amps[i1] = m[1][0] * a0 + m[1][1] * a1;
        }
    }
}

fn max_amp_diff(a: &StateVector, b: &[C64]) -> f64 {
    a.amplitudes()
        .iter()
        .zip(b)
        .map(|(x, y)| (x.re - y.re).abs().max((x.im - y.im).abs()))
        .fold(0.0, f64::max)
}

#[test]
fn specialized_kernels_match_reference_per_gate() {
    let mut rng = StdRng::seed_from_u64(0xF0E1);
    for case in 0..200 {
        let n: usize = rng.gen_range(2..6);
        let gate = random_gate(n, &mut rng);
        let mut sv = random_state(n, &mut rng);
        let mut reference = sv.amplitudes().to_vec();
        sv.apply_gate(&gate);
        apply_gate_reference(&mut reference, &gate);
        let diff = max_amp_diff(&sv, &reference);
        assert!(diff < TOL, "case {case}: gate {gate} diverged by {diff}");
    }
}

#[test]
fn fused_and_unfused_agree_amplitudewise() {
    let mut rng = StdRng::seed_from_u64(0xFA5E);
    for case in 0..120 {
        let n = rng.gen_range(2..7);
        let len = rng.gen_range(0..60);
        let c = random_circuit(n, len, &mut rng);
        // Fused path.
        let fused = StateVector::from_circuit(&c);
        // Unfused gate-by-gate reference path.
        let mut unfused = StateVector::zero(n);
        unfused.apply_circuit(&c);
        let diff = max_amp_diff(&fused, unfused.amplitudes());
        assert!(
            diff < TOL,
            "case {case}: fused/unfused diverged by {diff} on {n} qubits, {len} gates"
        );
    }
}

#[test]
fn fusion_shrinks_layered_circuits() {
    // H wall + CX chain + Rz layer, repeated: fusion must collapse every
    // single-qubit run into the neighboring two-qubit block.
    let n = 8;
    let layers = 4;
    let mut c = Circuit::new(n);
    for l in 0..layers {
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        for q in 0..n {
            c.rz(q, 0.1 * (l * n + q) as f64);
        }
    }
    let prog = FusedProgram::from_circuit(&c);
    // Cost-aware fusion keeps the monomial CX kernels cheap and emits the
    // merged single-qubit runs standalone: at most one two-qubit op plus
    // one single per CX, and every H·Rz run collapses into one kernel.
    assert!(
        prog.n_ops() <= layers * 2 * (n - 1),
        "expected ≤ 2 ops per two-qubit gate, got {} for {} gates",
        prog.n_ops(),
        c.len()
    );
}

#[test]
fn threaded_apply_is_bitwise_identical_to_serial() {
    let mut rng = StdRng::seed_from_u64(0x7EAD);
    for case in 0..40 {
        let n = rng.gen_range(2..9);
        let len = rng.gen_range(1..50);
        let c = random_circuit(n, len, &mut rng);
        let prog = FusedProgram::from_circuit(&c);
        let mut serial = StateVector::zero(n);
        serial.apply_fused(&prog);
        for threads in [1, 2, 8] {
            let mut threaded = StateVector::zero(n);
            threaded.apply_fused_threaded(&prog, threads);
            for (i, (a, b)) in serial
                .amplitudes()
                .iter()
                .zip(threaded.amplitudes())
                .enumerate()
            {
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "case {case}: amplitude {i} differs with {threads} threads: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn probabilities_xor_matches_explicit_inversion_simulation() {
    let mut rng = StdRng::seed_from_u64(0x0A0B);
    for case in 0..60 {
        let n = rng.gen_range(2..7);
        let c = random_circuit(n, rng.gen_range(0..40), &mut rng);
        let mask = BitString::from_value(rng.gen_range(0u64..(1u64 << n)), n);
        let base = StateVector::from_circuit(&c);
        let fast = base.probabilities_xor(mask.index());
        let explicit =
            StateVector::from_circuit(&c.with_premeasure_inversion(mask)).probabilities();
        for (i, (f, e)) in fast.iter().zip(&explicit).enumerate() {
            assert!(
                (f - e).abs() < TOL,
                "case {case}: p[{i}] fast {f} vs explicit {e} (mask {mask})"
            );
        }
    }
}

#[test]
fn born_probabilities_equals_full_simulation() {
    let mut rng = StdRng::seed_from_u64(0xB0A2);
    for case in 0..60 {
        let n = rng.gen_range(2..7);
        let mut c = random_circuit(n, rng.gen_range(0..30), &mut rng);
        // Often end with a genuine trailing X layer to hit the fast path.
        if rng.gen_bool(0.7) {
            let mask = BitString::from_value(rng.gen_range(0u64..(1u64 << n)), n);
            c = c.with_premeasure_inversion(mask);
        }
        let fast = StateVector::born_probabilities(&c);
        let full = StateVector::from_circuit(&c).probabilities();
        for (i, (f, e)) in fast.iter().zip(&full).enumerate() {
            assert!(
                (f - e).abs() < TOL,
                "case {case}: p[{i}] split-path {f} vs full {e}"
            );
        }
    }
}

#[test]
fn born_probabilities_point_mass_for_x_only_circuits() {
    for s in BitString::all(4) {
        let prep = Circuit::basis_state_preparation(s);
        let p = StateVector::born_probabilities(&prep);
        for (i, &pi) in p.iter().enumerate() {
            let expect = if i == s.index() { 1.0 } else { 0.0 };
            assert_eq!(pi, expect, "state {s}, entry {i}");
        }
    }
}

#[test]
fn distribution_permute_xor_properties() {
    let mut rng = StdRng::seed_from_u64(0xD157);
    for case in 0..40 {
        let n = rng.gen_range(2..6);
        let c = random_circuit(n, rng.gen_range(0..20), &mut rng);
        let d = Distribution::from_probabilities(n, StateVector::from_circuit(&c).probabilities());
        let mask = BitString::from_value(rng.gen_range(0u64..(1u64 << n)), n);
        let permuted = d.permute_xor(mask);
        // Involution, alias agreement, and pointwise definition.
        assert_eq!(
            permuted.permute_xor(mask),
            d,
            "case {case}: not an involution"
        );
        assert_eq!(
            permuted,
            d.xor_relabeled(mask),
            "case {case}: alias diverged"
        );
        for s in BitString::all(n) {
            assert_eq!(
                permuted.probability_of(s),
                d.probability_of(s ^ mask),
                "case {case}: entry {s}"
            );
        }
    }
}
