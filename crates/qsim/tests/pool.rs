//! Integration tests for the persistent worker pool: bitwise identity of
//! every pooled kernel against its serial counterpart, pool reuse across
//! successive programs, and arena recycling across batched sweeps.
//!
//! Fixed-seed [`StdRng`] loops (same convention as `fusion.rs`): every
//! failure reproduces exactly, and assertion messages carry the case index.

use qsim::c64::C64;
use qsim::fuse::FusedProgram;
use qsim::{Circuit, Gate, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn distinct_pair(n: usize, rng: &mut StdRng) -> (usize, usize) {
    let a = rng.gen_range(0..n);
    let mut b = rng.gen_range(0..n - 1);
    if b >= a {
        b += 1;
    }
    (a, b)
}

/// A random gate drawn from the full supported gate set.
fn random_gate(n: usize, rng: &mut StdRng) -> Gate {
    let q = rng.gen_range(0..n);
    let theta = rng.gen_range(-3.0..3.0f64);
    match rng.gen_range(0..16u32) {
        0 => Gate::X(q),
        1 => Gate::Y(q),
        2 => Gate::Z(q),
        3 => Gate::H(q),
        4 => Gate::S(q),
        5 => Gate::Sdg(q),
        6 => Gate::T(q),
        7 => Gate::Tdg(q),
        8 => Gate::Rx { qubit: q, theta },
        9 => Gate::Ry { qubit: q, theta },
        10 => Gate::Rz { qubit: q, theta },
        11 => Gate::Phase {
            qubit: q,
            lambda: theta,
        },
        12 => {
            let (control, target) = distinct_pair(n, rng);
            Gate::Cx { control, target }
        }
        13 => {
            let (control, target) = distinct_pair(n, rng);
            Gate::Cz { control, target }
        }
        14 => {
            let (a, b) = distinct_pair(n, rng);
            Gate::Rzz { a, b, theta }
        }
        _ => {
            let (a, b) = distinct_pair(n, rng);
            Gate::Swap { a, b }
        }
    }
}

fn random_circuit(n: usize, len: usize, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..len {
        c.push(random_gate(n, rng));
    }
    c
}

fn assert_bitwise_eq(a: &StateVector, b: &StateVector, what: &str) {
    assert_eq!(a.n_qubits(), b.n_qubits(), "{what}: width mismatch");
    for (i, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: amplitude {i} differs bitwise: {x:?} vs {y:?}"
        );
    }
}

/// The tentpole contract: the pooled tiled schedule produces amplitudes
/// bitwise identical to the serial path for every worker count, including
/// counts above the machine's core count.
#[test]
fn pooled_apply_is_bitwise_identical_for_every_worker_count() {
    let mut rng = StdRng::seed_from_u64(0x600D_F00D);
    for case in 0..24 {
        let n = rng.gen_range(2..=10usize);
        let circuit = random_circuit(n, rng.gen_range(4..40), &mut rng);
        let prog = FusedProgram::from_circuit(&circuit);

        let mut serial = StateVector::zero(n);
        serial.apply_fused_with_workers(&prog, 1);

        for workers in [2usize, 3, 4, 8] {
            let mut pooled = StateVector::zero(n);
            pooled.apply_fused_with_workers(&prog, workers);
            assert_bitwise_eq(
                &serial,
                &pooled,
                &format!("case {case} ({n}q), {workers} workers"),
            );
        }
    }
}

/// The same contract *above* the tile width. The 2–10q cases collapse to
/// a single tile (tile_bits clamps to n), so they never exercise the
/// paths that could actually diverge: here 15–17 qubit registers give
/// every worker several tiles per `Tiled` phase, and explicit gates on
/// the top qubits (at or above every tile width the scheduler can pick
/// for these sizes) force `Phase::Global` chunked sweeps and the
/// barrier-ordered phase transitions between the two kinds.
#[test]
fn pooled_apply_is_bitwise_identical_across_tiles_and_global_phases() {
    let mut rng = StdRng::seed_from_u64(0x7117_BEEF);
    for (case, n) in [15usize, 16, 17].into_iter().enumerate() {
        let mut circuit = random_circuit(n, 24, &mut rng);
        // Top-qubit gates guarantee Global phases in every schedule;
        // interleave more random gates so Tiled phases surround them.
        circuit.push(Gate::H(n - 1));
        circuit.push(Gate::Cx {
            control: n - 1,
            target: 0,
        });
        circuit.push(Gate::Rz {
            qubit: n - 2,
            theta: 0.37,
        });
        for _ in 0..8 {
            circuit.push(random_gate(n, &mut rng));
        }
        let prog = FusedProgram::from_circuit(&circuit);

        let mut serial = StateVector::zero(n);
        serial.apply_fused_with_workers(&prog, 1);

        for workers in [2usize, 3, 4, 8] {
            let mut pooled = StateVector::zero(n);
            pooled.apply_fused_with_workers(&prog, workers);
            assert_bitwise_eq(
                &serial,
                &pooled,
                &format!("case {case} ({n}q), {workers} workers"),
            );
            pooled.recycle();
        }
        serial.recycle();
    }
}

/// Successive programs reuse the parked pool instead of respawning: the
/// task counter keeps climbing while the thread count stays fixed.
#[test]
fn pool_is_reused_across_successive_programs() {
    let n = 9usize;
    let prog = FusedProgram::from_circuit(&Circuit::uniform_superposition(n));
    let before = qsim::pool::pool_tasks();
    for _ in 0..4 {
        let mut sv = StateVector::zero(n);
        sv.apply_fused_with_workers(&prog, 4);
        sv.recycle();
    }
    let after = qsim::pool::pool_tasks();
    // Four dispatches of four participants each. Other tests may run
    // concurrently in this harness, so the delta is a floor, not an exact
    // count.
    assert!(
        after >= before + 16,
        "expected >= 16 new pool tasks, got {before} -> {after}"
    );
}

/// Threaded reductions and scans match their serial counterparts bitwise:
/// the blocked partial-sum schedule is thread-count invariant.
#[test]
fn threaded_scans_match_serial_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xBA55_1234);
    // 16 qubits crosses the `dim >= 1 << 15` gate so the pooled paths
    // actually engage rather than falling back to serial.
    let n = 16usize;
    let circuit = random_circuit(n, 24, &mut rng);
    let sv = StateVector::from_circuit(&circuit);

    let norm_serial = sv.norm_sqr();
    let probs_serial = sv.probabilities();
    let mask = rng.gen_range(0..1usize << n);
    let xor_serial = sv.probabilities_xor(mask);

    for threads in [2usize, 4, 8] {
        assert_eq!(
            norm_serial.to_bits(),
            sv.norm_sqr_threaded(threads).to_bits(),
            "norm_sqr differs at {threads} threads"
        );
        let probs = sv.probabilities_threaded(threads);
        assert!(
            probs
                .iter()
                .zip(&probs_serial)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "probabilities differ at {threads} threads"
        );
        let xor = sv.probabilities_xor_threaded(mask, threads);
        assert!(
            xor.iter()
                .zip(&xor_serial)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "probabilities_xor differs at {threads} threads"
        );
    }

    let mut norm_a = sv.clone();
    norm_a.normalize();
    for threads in [2usize, 4, 8] {
        let mut norm_b = sv.clone();
        norm_b.normalize_threaded(threads);
        assert_bitwise_eq(&norm_a, &norm_b, &format!("normalize at {threads} threads"));
    }
}

/// Recycled statevectors feed later allocations: a batch-style sweep after
/// a warm-up hits the per-thread arena instead of the global allocator, and
/// the reused buffers still come back fully zeroed.
#[test]
fn arena_reuses_buffers_across_batch_runs() {
    let n = 12usize;
    let prog = FusedProgram::from_circuit(&Circuit::uniform_superposition(n));
    // Warm the arena with a first allocation of the right size.
    StateVector::zero(n).recycle();

    let before = qsim::arena::arena_reuse_hits();
    let mut reference: Option<StateVector> = None;
    for run in 0..6 {
        let mut sv = StateVector::zero(n);
        for (i, amp) in sv.amplitudes().iter().enumerate() {
            let (want_re, want_im) = if i == 0 { (1.0f64, 0.0f64) } else { (0.0, 0.0) };
            assert!(
                amp.re.to_bits() == want_re.to_bits() && amp.im.to_bits() == want_im.to_bits(),
                "run {run}: arena handed out a dirty buffer at index {i}: {amp:?}"
            );
        }
        sv.apply_fused_with_workers(&prog, 1);
        match &reference {
            None => reference = Some(sv),
            Some(r) => {
                assert_bitwise_eq(r, &sv, &format!("run {run} vs first run"));
                sv.recycle();
            }
        }
    }
    let after = qsim::arena::arena_reuse_hits();
    assert!(
        after > before,
        "expected arena reuse hits to grow, got {before} -> {after}"
    );

    // The recycled-capacity path must be exercised at least once more by a
    // fresh same-size request.
    let hits = qsim::arena::arena_reuse_hits();
    StateVector::zero(n).recycle();
    let sv = StateVector::zero(n);
    assert!(
        qsim::arena::arena_reuse_hits() > hits,
        "same-size reallocation should hit the arena"
    );
    assert!(sv.amplitudes()[0].re.to_bits() == C64::ONE.re.to_bits());
}
