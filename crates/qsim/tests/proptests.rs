//! Property-based tests for the simulator's core data structures.

use proptest::prelude::*;
use qsim::{qasm, BitString, Circuit, Counts, DensityMatrix, Gate, StateVector};

fn arb_bitstring(width: usize) -> impl Strategy<Value = BitString> {
    (0u64..(1u64 << width)).prop_map(move |v| BitString::from_value(v, width))
}

/// A random gate over `n` qubits.
fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(Gate::X),
        q.clone().prop_map(Gate::Y),
        q.clone().prop_map(Gate::Z),
        q.clone().prop_map(Gate::H),
        q.clone().prop_map(Gate::S),
        q.clone().prop_map(Gate::Tdg),
        (q.clone(), -3.0..3.0f64).prop_map(|(qubit, theta)| Gate::Rx { qubit, theta }),
        (q.clone(), -3.0..3.0f64).prop_map(|(qubit, theta)| Gate::Ry { qubit, theta }),
        (q.clone(), -3.0..3.0f64).prop_map(|(qubit, theta)| Gate::Rz { qubit, theta }),
        (q, -3.0..3.0f64).prop_map(|(qubit, lambda)| Gate::Phase { qubit, lambda }),
        q2.clone()
            .prop_map(|(control, target)| Gate::Cx { control, target }),
        q2.clone()
            .prop_map(|(control, target)| Gate::Cz { control, target }),
        (q2.clone(), -3.0..3.0f64).prop_map(|((a, b), theta)| Gate::Rzz { a, b, theta }),
        q2.prop_map(|(a, b)| Gate::Swap { a, b }),
    ]
}

fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 0..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        c.extend(gates);
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bit-string display/parse round-trips for every width and value.
    #[test]
    fn bitstring_display_parse_roundtrip(width in 1usize..=16, raw in any::<u64>()) {
        let value = raw & ((1u64 << width) - 1);
        let s = BitString::from_value(value, width);
        let text = s.to_string();
        prop_assert_eq!(text.len(), width);
        let back: BitString = text.parse().unwrap();
        prop_assert_eq!(back, s);
    }

    /// Hamming weight is invariant under complement pairs and XOR identity.
    #[test]
    fn bitstring_algebra(a in arb_bitstring(8), b in arb_bitstring(8)) {
        prop_assert_eq!(a.hamming_weight() + a.inverted().hamming_weight(), 8);
        prop_assert_eq!((a ^ b).hamming_weight(), a.hamming_distance(&b));
        prop_assert_eq!(a ^ a, BitString::zeros(8));
        prop_assert_eq!((a ^ b) ^ b, a);
    }

    /// Unitarity: every random circuit preserves the state norm.
    #[test]
    fn circuits_preserve_norm(c in arb_circuit(4, 24)) {
        let psi = StateVector::from_circuit(&c);
        prop_assert!((psi.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Reversibility: a circuit followed by its inverse is the identity.
    #[test]
    fn circuit_inverse_is_identity(c in arb_circuit(4, 16)) {
        let mut psi = StateVector::zero(4);
        psi.apply_circuit(&c);
        psi.apply_circuit(&c.inverse());
        prop_assert!((psi.probability_of(BitString::zeros(4)) - 1.0).abs() < 1e-8);
    }

    /// Density-matrix evolution agrees with the state vector for pure
    /// states.
    #[test]
    fn density_matches_statevector(c in arb_circuit(3, 12)) {
        let psi = StateVector::from_circuit(&c);
        let mut rho = DensityMatrix::zero(3);
        rho.apply_circuit(&c);
        let p_sv = psi.probabilities();
        let p_dm = rho.probabilities();
        for (a, b) in p_sv.iter().zip(&p_dm) {
            prop_assert!((a - b).abs() < 1e-8, "{} vs {}", a, b);
        }
        prop_assert!((rho.purity() - 1.0).abs() < 1e-8);
    }

    /// QASM round-trip preserves arbitrary circuits exactly.
    #[test]
    fn qasm_roundtrip(c in arb_circuit(5, 20)) {
        let text = qasm::to_qasm(&c);
        let back = qasm::from_qasm(&text).unwrap();
        prop_assert_eq!(back, c);
    }

    /// Counts bookkeeping: totals and frequencies stay consistent under
    /// merges and XOR corrections.
    #[test]
    fn counts_invariants(
        outcomes in proptest::collection::vec(arb_bitstring(5), 1..100),
        mask in arb_bitstring(5),
    ) {
        let counts: Counts = outcomes.iter().copied().collect();
        prop_assert_eq!(counts.total(), outcomes.len() as u64);
        let total_freq: f64 = BitString::all(5).map(|s| counts.frequency(&s)).sum();
        prop_assert!((total_freq - 1.0).abs() < 1e-9);

        let corrected = counts.xor_corrected(mask);
        prop_assert_eq!(corrected.total(), counts.total());
        prop_assert_eq!(corrected.distinct(), counts.distinct());
        for s in BitString::all(5) {
            prop_assert_eq!(corrected.get(&(s ^ mask)), counts.get(&s));
        }
    }

    /// Circuit depth is monotone under composition and bounded by length.
    #[test]
    fn depth_bounds(a in arb_circuit(4, 12), b in arb_circuit(4, 12)) {
        let mut ab = a.clone();
        ab.append(&b);
        prop_assert!(ab.depth() <= a.depth() + b.depth());
        prop_assert!(ab.depth() >= a.depth());
        prop_assert!(a.depth() <= a.len());
    }

    /// Born sampling only ever yields states with non-zero probability.
    #[test]
    fn sampling_respects_support(c in arb_circuit(3, 10), seed in any::<u64>()) {
        use rand::SeedableRng;
        let psi = StateVector::from_circuit(&c);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let s = psi.sample(&mut rng);
            prop_assert!(psi.probability_of(s) > 0.0, "sampled zero-probability state {}", s);
        }
    }
}
