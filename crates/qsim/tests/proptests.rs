//! Randomized property tests for the simulator's core data structures.
//!
//! Each test draws its cases from a fixed-seed [`StdRng`], so failures are
//! perfectly reproducible without an external shrinking framework; the case
//! index is included in every assertion message to pinpoint the input.

use qsim::{qasm, BitString, Circuit, Counts, DensityMatrix, Gate, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

fn random_bitstring(width: usize, rng: &mut StdRng) -> BitString {
    BitString::from_value(rng.gen_range(0u64..(1u64 << width)), width)
}

/// Two distinct qubit indices below `n`.
fn distinct_pair(n: usize, rng: &mut StdRng) -> (usize, usize) {
    let a = rng.gen_range(0..n);
    let mut b = rng.gen_range(0..n - 1);
    if b >= a {
        b += 1;
    }
    (a, b)
}

/// A random gate over `n` qubits drawn from the full supported gate set.
fn random_gate(n: usize, rng: &mut StdRng) -> Gate {
    let q = rng.gen_range(0..n);
    let theta = rng.gen_range(-3.0..3.0f64);
    match rng.gen_range(0..14u32) {
        0 => Gate::X(q),
        1 => Gate::Y(q),
        2 => Gate::Z(q),
        3 => Gate::H(q),
        4 => Gate::S(q),
        5 => Gate::Tdg(q),
        6 => Gate::Rx { qubit: q, theta },
        7 => Gate::Ry { qubit: q, theta },
        8 => Gate::Rz { qubit: q, theta },
        9 => Gate::Phase {
            qubit: q,
            lambda: theta,
        },
        10 => {
            let (control, target) = distinct_pair(n, rng);
            Gate::Cx { control, target }
        }
        11 => {
            let (control, target) = distinct_pair(n, rng);
            Gate::Cz { control, target }
        }
        12 => {
            let (a, b) = distinct_pair(n, rng);
            Gate::Rzz { a, b, theta }
        }
        _ => {
            let (a, b) = distinct_pair(n, rng);
            Gate::Swap { a, b }
        }
    }
}

fn random_circuit(n: usize, max_gates: usize, rng: &mut StdRng) -> Circuit {
    let len = rng.gen_range(0..max_gates);
    let mut c = Circuit::new(n);
    c.extend((0..len).map(|_| random_gate(n, rng)));
    c
}

/// Bit-string display/parse round-trips for every width and value.
#[test]
fn bitstring_display_parse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x51a1);
    for case in 0..CASES {
        let width = rng.gen_range(1usize..=16);
        let value = rng.gen::<u64>() & ((1u64 << width) - 1);
        let s = BitString::from_value(value, width);
        let text = s.to_string();
        assert_eq!(text.len(), width, "case {case}");
        let back: BitString = text.parse().unwrap();
        assert_eq!(back, s, "case {case}");
    }
}

/// Hamming weight is invariant under complement pairs and XOR identity.
#[test]
fn bitstring_algebra() {
    let mut rng = StdRng::seed_from_u64(0x51a2);
    for case in 0..CASES {
        let a = random_bitstring(8, &mut rng);
        let b = random_bitstring(8, &mut rng);
        assert_eq!(
            a.hamming_weight() + a.inverted().hamming_weight(),
            8,
            "case {case}"
        );
        assert_eq!(
            (a ^ b).hamming_weight(),
            a.hamming_distance(&b),
            "case {case}"
        );
        assert_eq!(a ^ a, BitString::zeros(8), "case {case}");
        assert_eq!((a ^ b) ^ b, a, "case {case}");
    }
}

/// Unitarity: every random circuit preserves the state norm.
#[test]
fn circuits_preserve_norm() {
    let mut rng = StdRng::seed_from_u64(0x51a3);
    for case in 0..CASES {
        let c = random_circuit(4, 24, &mut rng);
        let psi = StateVector::from_circuit(&c);
        assert!(
            (psi.norm_sqr() - 1.0).abs() < 1e-9,
            "case {case}: norm² {}",
            psi.norm_sqr()
        );
    }
}

/// Reversibility: a circuit followed by its inverse is the identity.
#[test]
fn circuit_inverse_is_identity() {
    let mut rng = StdRng::seed_from_u64(0x51a4);
    for case in 0..CASES {
        let c = random_circuit(4, 16, &mut rng);
        let mut psi = StateVector::zero(4);
        psi.apply_circuit(&c);
        psi.apply_circuit(&c.inverse());
        let p0 = psi.probability_of(BitString::zeros(4));
        assert!((p0 - 1.0).abs() < 1e-8, "case {case}: P(0…0) = {p0}");
    }
}

/// Density-matrix evolution agrees with the state vector for pure states.
#[test]
fn density_matches_statevector() {
    let mut rng = StdRng::seed_from_u64(0x51a5);
    for case in 0..CASES {
        let c = random_circuit(3, 12, &mut rng);
        let psi = StateVector::from_circuit(&c);
        let mut rho = DensityMatrix::zero(3);
        rho.apply_circuit(&c);
        let p_sv = psi.probabilities();
        let p_dm = rho.probabilities();
        for (a, b) in p_sv.iter().zip(&p_dm) {
            assert!((a - b).abs() < 1e-8, "case {case}: {a} vs {b}");
        }
        assert!((rho.purity() - 1.0).abs() < 1e-8, "case {case}");
    }
}

/// QASM round-trip preserves arbitrary circuits exactly.
#[test]
fn qasm_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x51a6);
    for case in 0..CASES {
        let c = random_circuit(5, 20, &mut rng);
        let text = qasm::to_qasm(&c);
        let back = qasm::from_qasm(&text).unwrap();
        assert_eq!(back, c, "case {case}");
    }
}

/// Counts bookkeeping: totals and frequencies stay consistent under
/// merges and XOR corrections.
#[test]
fn counts_invariants() {
    let mut rng = StdRng::seed_from_u64(0x51a7);
    for case in 0..CASES {
        let len = rng.gen_range(1usize..100);
        let outcomes: Vec<BitString> = (0..len).map(|_| random_bitstring(5, &mut rng)).collect();
        let mask = random_bitstring(5, &mut rng);

        let counts: Counts = outcomes.iter().copied().collect();
        assert_eq!(counts.total(), outcomes.len() as u64, "case {case}");
        let total_freq: f64 = BitString::all(5).map(|s| counts.frequency(&s)).sum();
        assert!((total_freq - 1.0).abs() < 1e-9, "case {case}");

        let corrected = counts.xor_corrected(mask);
        assert_eq!(corrected.total(), counts.total(), "case {case}");
        assert_eq!(corrected.distinct(), counts.distinct(), "case {case}");
        for s in BitString::all(5) {
            assert_eq!(corrected.get(&(s ^ mask)), counts.get(&s), "case {case}");
        }
    }
}

/// Circuit depth is monotone under composition and bounded by length.
#[test]
fn depth_bounds() {
    let mut rng = StdRng::seed_from_u64(0x51a8);
    for case in 0..CASES {
        let a = random_circuit(4, 12, &mut rng);
        let b = random_circuit(4, 12, &mut rng);
        let mut ab = a.clone();
        ab.append(&b);
        assert!(ab.depth() <= a.depth() + b.depth(), "case {case}");
        assert!(ab.depth() >= a.depth(), "case {case}");
        assert!(a.depth() <= a.len(), "case {case}");
    }
}

/// Born sampling only ever yields states with non-zero probability — on
/// both the linear-scan path and the alias-table fast path.
#[test]
fn sampling_respects_support() {
    let mut rng = StdRng::seed_from_u64(0x51a9);
    for case in 0..CASES {
        let c = random_circuit(3, 10, &mut rng);
        let psi = StateVector::from_circuit(&c);
        let sampler = psi.sampler();
        for _ in 0..32 {
            let s = psi.sample(&mut rng);
            assert!(
                psi.probability_of(s) > 0.0,
                "case {case}: linear scan sampled zero-probability state {s}"
            );
            let idx = sampler.sample(&mut rng);
            let s = BitString::from_value(idx as u64, 3);
            assert!(
                psi.probability_of(s) > 0.0,
                "case {case}: alias table sampled zero-probability state {s}"
            );
        }
    }
}
