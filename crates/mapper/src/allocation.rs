//! Variability-aware qubit allocation.
//!
//! The paper's methodology (§4.3) maps every benchmark onto the machine's
//! strongest qubits and links: "allocations that are cognizant of
//! underlying noise and variation in the error rate such that benchmarks
//! are mapped on strongest qubits and links with minimum number of SWAPs."
//!
//! [`allocate`] implements that policy: it grows connected candidate sets
//! over the coupling map (so routed circuits need few SWAPs) and scores
//! each set by its qubits' effective readout error plus the error of the
//! links inside the set, returning the cheapest.

use qnoise::DeviceModel;
use qsim::Gate;
use std::fmt;

/// A chosen assignment of logical qubits to physical qubits.
///
/// `physical()[i]` is the physical qubit hosting logical qubit `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    physical: Vec<usize>,
}

impl Placement {
    /// Builds a placement from an explicit logical→physical map.
    ///
    /// # Panics
    ///
    /// Panics if the map is empty or contains duplicates.
    pub fn new(physical: Vec<usize>) -> Self {
        assert!(!physical.is_empty(), "placement cannot be empty");
        for (i, &p) in physical.iter().enumerate() {
            assert!(
                !physical[..i].contains(&p),
                "physical qubit {p} assigned twice"
            );
        }
        Placement { physical }
    }

    /// The identity placement over `n` qubits.
    pub fn identity(n: usize) -> Self {
        Placement::new((0..n).collect())
    }

    /// The logical→physical map.
    pub fn physical(&self) -> &[usize] {
        &self.physical
    }

    /// The number of logical qubits placed.
    pub fn n_logical(&self) -> usize {
        self.physical.len()
    }

    /// The physical qubit hosting logical qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn physical_of(&self, q: usize) -> usize {
        self.physical[q]
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "placement[")?;
        for (i, p) in self.physical.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "q{i}->Q{p}")?;
        }
        write!(f, "]")
    }
}

/// Error returned when allocation is impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocationError {
    /// More logical qubits were requested than the device has.
    TooManyQubits {
        /// Requested logical register size.
        requested: usize,
        /// Physical qubits available.
        available: usize,
    },
    /// No connected subset of the requested size exists on the coupling
    /// map.
    NoConnectedRegion(usize),
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AllocationError::TooManyQubits {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} qubits but the device has {available}"
            ),
            AllocationError::NoConnectedRegion(n) => {
                write!(f, "no connected region of {n} qubits on the coupling map")
            }
        }
    }
}

impl std::error::Error for AllocationError {}

/// Mean effective readout error of a physical qubit plus its single-qubit
/// gate error — the per-qubit component of the allocation cost.
fn qubit_cost(device: &DeviceModel, q: usize) -> f64 {
    let eff = device
        .qubit(q)
        .assignment
        .with_t1_decay(device.qubit(q).t1_us, device.meas_duration_us());
    eff.mean_error() + device.qubit(q).gate_error_1q
}

/// Two-qubit gate error of a coupling edge.
fn edge_cost(device: &DeviceModel, a: usize, b: usize) -> f64 {
    device.gate_noise().gate_error(&Gate::Cx {
        control: a,
        target: b,
    })
}

/// Chooses `n_logical` physical qubits for a benchmark: a connected region
/// of the coupling map minimizing total qubit + internal-link error.
/// Logical indices are assigned to the chosen physical qubits in ascending
/// physical order (routing handles interaction locality).
///
/// Devices without any coupling edges (e.g. [`DeviceModel::ideal`]) are
/// treated as fully connected.
///
/// # Errors
///
/// Returns an [`AllocationError`] if the device is too small or its
/// coupling map has no connected region of the requested size.
pub fn allocate(device: &DeviceModel, n_logical: usize) -> Result<Placement, AllocationError> {
    let n_phys = device.n_qubits();
    if n_logical > n_phys {
        return Err(AllocationError::TooManyQubits {
            requested: n_logical,
            available: n_phys,
        });
    }
    if n_logical == 0 {
        return Err(AllocationError::TooManyQubits {
            requested: 0,
            available: n_phys,
        });
    }
    // Adjacency list; an edgeless device is treated as fully connected.
    let mut adj = vec![Vec::new(); n_phys];
    if device.coupling().is_empty() {
        #[allow(clippy::needless_range_loop)] // symmetric pair enumeration
        for a in 0..n_phys {
            for b in 0..n_phys {
                if a != b {
                    adj[a].push(b);
                }
            }
        }
    } else {
        for &(a, b) in device.coupling() {
            adj[a].push(b);
            adj[b].push(a);
        }
    }

    let region_cost = |region: &[usize]| -> f64 {
        let mut cost: f64 = region.iter().map(|&q| qubit_cost(device, q)).sum();
        for (i, &a) in region.iter().enumerate() {
            for &b in &region[i + 1..] {
                if adj[a].contains(&b) {
                    cost += edge_cost(device, a, b) * 0.5;
                }
            }
        }
        cost
    };

    // Greedy connected growth from every seed; keep the cheapest region.
    let mut best: Option<(f64, Vec<usize>)> = None;
    for seed in 0..n_phys {
        let mut region = vec![seed];
        while region.len() < n_logical {
            // Frontier: neighbours of the region not yet inside.
            let mut candidate: Option<(f64, usize)> = None;
            for &r in &region {
                for &nb in &adj[r] {
                    if region.contains(&nb) {
                        continue;
                    }
                    let c = qubit_cost(device, nb);
                    if candidate.is_none_or(|(bc, _)| c < bc) {
                        candidate = Some((c, nb));
                    }
                }
            }
            match candidate {
                Some((_, nb)) => region.push(nb),
                None => break, // component exhausted
            }
        }
        if region.len() < n_logical {
            continue;
        }
        let cost = region_cost(&region);
        if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
            best = Some((cost, region));
        }
    }
    match best {
        Some((_, mut region)) => {
            region.sort_unstable();
            Ok(Placement::new(region))
        }
        None => Err(AllocationError::NoConnectedRegion(n_logical)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_validation() {
        let p = Placement::new(vec![3, 1, 4]);
        assert_eq!(p.n_logical(), 3);
        assert_eq!(p.physical_of(0), 3);
        assert_eq!(p.to_string(), "placement[q0->Q3, q1->Q1, q2->Q4]");
        assert!(std::panic::catch_unwind(|| Placement::new(vec![1, 1])).is_err());
    }

    #[test]
    fn allocate_all_qubits_uses_everything() {
        let dev = DeviceModel::ibmqx2();
        let p = allocate(&dev, 5).unwrap();
        let mut phys = p.physical().to_vec();
        phys.sort_unstable();
        assert_eq!(phys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn allocate_avoids_worst_qubit() {
        // melbourne's q6 has a 31% readout error; small allocations must
        // skip it.
        let dev = DeviceModel::ibmq_melbourne();
        for n in [4usize, 5, 6] {
            let p = allocate(&dev, n).unwrap();
            assert!(
                !p.physical().contains(&6),
                "allocation of {n} qubits used the worst qubit: {p}"
            );
        }
    }

    #[test]
    fn allocated_region_is_connected() {
        let dev = DeviceModel::ibmq_melbourne();
        let p = allocate(&dev, 7).unwrap();
        // BFS over the coupling map restricted to the region.
        let region: Vec<usize> = p.physical().to_vec();
        let mut seen = vec![region[0]];
        let mut stack = vec![region[0]];
        while let Some(q) = stack.pop() {
            for &(a, b) in dev.coupling() {
                let nb = if a == q {
                    b
                } else if b == q {
                    a
                } else {
                    continue;
                };
                if region.contains(&nb) && !seen.contains(&nb) {
                    seen.push(nb);
                    stack.push(nb);
                }
            }
        }
        assert_eq!(seen.len(), region.len(), "region {region:?} not connected");
    }

    #[test]
    fn allocation_errors() {
        let dev = DeviceModel::ibmqx2();
        assert_eq!(
            allocate(&dev, 6),
            Err(AllocationError::TooManyQubits {
                requested: 6,
                available: 5
            })
        );
        let msg = allocate(&dev, 6).unwrap_err().to_string();
        assert!(msg.contains("requested 6"));
    }

    #[test]
    fn ideal_device_without_coupling_allocates() {
        let dev = DeviceModel::ideal(4);
        let p = allocate(&dev, 3).unwrap();
        assert_eq!(p.n_logical(), 3);
    }
}
