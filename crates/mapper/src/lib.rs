//! # qmapper — variability-aware allocation and SWAP routing
//!
//! The paper's methodology (§4.3) runs every benchmark under "the most
//! optimal qubit allocation … cognizant of underlying noise and variation
//! in the error rate such that benchmarks are mapped on strongest qubits
//! and links with minimum number of SWAPs." This crate implements that
//! compiler layer:
//!
//! * [`allocate`] — picks a connected region of the coupling map whose
//!   qubits and links have the lowest error rates;
//! * [`route`] / [`route_auto`] — lowers a logical circuit onto the
//!   physical register, inserting BFS-shortest-path SWAPs for non-adjacent
//!   interactions and tracking the final layout;
//! * [`RoutedCircuit::logical_counts`] — folds measured physical logs back
//!   into logical outcomes.
//!
//! ## Example
//!
//! Route a GHZ preparation onto the 14-qubit machine:
//!
//! ```
//! use qmapper::route_auto;
//! use qnoise::DeviceModel;
//!
//! let mut ghz = qsim::Circuit::new(5);
//! ghz.h(0);
//! for q in 0..4 {
//!     ghz.cx(q, q + 1);
//! }
//! let device = DeviceModel::ibmq_melbourne();
//! let routed = route_auto(&ghz, &device)?;
//! assert_eq!(routed.circuit().n_qubits(), 14);
//! // The variability-aware allocation avoids the 31%-error qubit.
//! assert!(!routed.output_layout().contains(&6));
//! # Ok::<(), Box<dyn std::error::Error + Send + Sync>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocation;
pub mod routing;

pub use allocation::{allocate, AllocationError, Placement};
pub use routing::{route, route_auto, RoutedCircuit, RoutingError};
