//! SWAP routing onto a coupling map.
//!
//! NISQ machines only execute two-qubit gates between coupled physical
//! qubits; any other interaction must be routed by inserting SWAP gates.
//! [`route`] implements the classic shortest-path router: when a two-qubit
//! gate's operands are not adjacent, one operand is swapped along a BFS
//! shortest path until they meet, and the live logical→physical mapping is
//! updated. The router tracks the final layout so measured physical bit
//! strings can be folded back into logical outcomes
//! ([`RoutedCircuit::logical_counts`]).

use crate::allocation::Placement;
use qnoise::DeviceModel;
use qsim::{BitString, Circuit, Counts, Gate};
use std::collections::VecDeque;
use std::fmt;

/// A circuit lowered onto a device's physical qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedCircuit {
    physical: Circuit,
    output_layout: Vec<usize>,
    swap_count: usize,
    n_logical: usize,
}

impl RoutedCircuit {
    /// The physical circuit (width = device size).
    pub fn circuit(&self) -> &Circuit {
        &self.physical
    }

    /// The physical qubit holding logical qubit `q` *after* execution.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn output_qubit(&self, q: usize) -> usize {
        self.output_layout[q]
    }

    /// The full output layout (`layout[logical] = physical`).
    pub fn output_layout(&self) -> &[usize] {
        &self.output_layout
    }

    /// The number of inserted SWAP gates.
    pub fn swap_count(&self) -> usize {
        self.swap_count
    }

    /// The logical register width.
    pub fn n_logical(&self) -> usize {
        self.n_logical
    }

    /// Extracts the logical outcome from a measured physical bit string.
    ///
    /// # Panics
    ///
    /// Panics if `physical.width()` differs from the physical register.
    pub fn logical_outcome(&self, physical: BitString) -> BitString {
        assert_eq!(
            physical.width(),
            self.physical.n_qubits(),
            "physical outcome width mismatch"
        );
        let mut out = BitString::zeros(self.n_logical);
        for (logical, &phys) in self.output_layout.iter().enumerate() {
            out = out.with_bit(logical, physical.bit(phys));
        }
        out
    }

    /// Folds a physical output log into logical outcomes.
    ///
    /// # Panics
    ///
    /// Panics if the log width differs from the physical register.
    pub fn logical_counts(&self, physical: &Counts) -> Counts {
        let mut out = Counts::new(self.n_logical);
        for (s, &n) in physical.iter() {
            out.record_n(self.logical_outcome(*s), n);
        }
        out
    }
}

impl fmt::Display for RoutedCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "routed[{} logical on {} physical, {} swaps]",
            self.n_logical,
            self.physical.n_qubits(),
            self.swap_count
        )
    }
}

/// Error returned when routing is impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingError {
    /// The placement uses more logical qubits than the circuit or more
    /// physical qubits than the device.
    PlacementMismatch,
    /// Two interacting qubits lie in disconnected components of the
    /// coupling map.
    Disconnected(usize, usize),
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RoutingError::PlacementMismatch => {
                write!(f, "placement does not match the circuit and device sizes")
            }
            RoutingError::Disconnected(a, b) => {
                write!(f, "physical qubits {a} and {b} are not connected")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// Routes `circuit` onto `device` starting from `placement`.
///
/// Devices without coupling edges are treated as fully connected (no SWAPs
/// ever inserted).
///
/// # Errors
///
/// Returns a [`RoutingError`] if the placement sizes are inconsistent or
/// an interaction crosses disconnected components.
pub fn route(
    circuit: &Circuit,
    device: &DeviceModel,
    placement: &Placement,
) -> Result<RoutedCircuit, RoutingError> {
    let n_logical = circuit.n_qubits();
    let n_phys = device.n_qubits();
    if placement.n_logical() != n_logical || placement.physical().iter().any(|&p| p >= n_phys) {
        return Err(RoutingError::PlacementMismatch);
    }
    let fully_connected = device.coupling().is_empty();
    let mut adj = vec![Vec::new(); n_phys];
    for &(a, b) in device.coupling() {
        adj[a].push(b);
        adj[b].push(a);
    }

    // log2phys[l] = physical location of logical l (usize::MAX = unused).
    let mut log2phys: Vec<usize> = placement.physical().to_vec();
    let mut out = Circuit::new(n_phys);
    let mut swap_count = 0usize;

    let adjacent =
        |a: usize, b: usize, adj: &[Vec<usize>]| -> bool { fully_connected || adj[a].contains(&b) };

    for g in circuit.gates() {
        let qs = g.qubits();
        if qs.len() == 1 {
            out.push(retarget(g, &[log2phys[qs[0]]]));
            continue;
        }
        let mut pa = log2phys[qs[0]];
        let pb = log2phys[qs[1]];
        if !adjacent(pa, pb, &adj) {
            // BFS shortest path from pa to pb.
            let path = bfs_path(pa, pb, &adj).ok_or(RoutingError::Disconnected(pa, pb))?;
            // Swap pa along the path until adjacent to pb.
            for &next in path.iter().skip(1).take(path.len().saturating_sub(2)) {
                out.swap(pa, next);
                swap_count += 1;
                // Whatever logical qubits occupy pa/next exchange places.
                for entry in log2phys.iter_mut() {
                    if *entry == pa {
                        *entry = next;
                    } else if *entry == next {
                        *entry = pa;
                    }
                }
                pa = next;
            }
        }
        out.push(retarget(g, &[log2phys[qs[0]], log2phys[qs[1]]]));
    }
    Ok(RoutedCircuit {
        physical: out,
        output_layout: log2phys,
        swap_count,
        n_logical,
    })
}

/// Allocates and routes in one step using the variability-aware policy.
///
/// # Errors
///
/// Propagates allocation and routing failures as a boxed error.
pub fn route_auto(
    circuit: &Circuit,
    device: &DeviceModel,
) -> Result<RoutedCircuit, Box<dyn std::error::Error + Send + Sync>> {
    let placement = crate::allocation::allocate(device, circuit.n_qubits())?;
    Ok(route(circuit, device, &placement)?)
}

/// Rebuilds a gate with new qubit operands.
fn retarget(gate: &Gate, qs: &[usize]) -> Gate {
    match *gate {
        Gate::X(_) => Gate::X(qs[0]),
        Gate::Y(_) => Gate::Y(qs[0]),
        Gate::Z(_) => Gate::Z(qs[0]),
        Gate::H(_) => Gate::H(qs[0]),
        Gate::S(_) => Gate::S(qs[0]),
        Gate::Sdg(_) => Gate::Sdg(qs[0]),
        Gate::T(_) => Gate::T(qs[0]),
        Gate::Tdg(_) => Gate::Tdg(qs[0]),
        Gate::Rx { theta, .. } => Gate::Rx {
            qubit: qs[0],
            theta,
        },
        Gate::Ry { theta, .. } => Gate::Ry {
            qubit: qs[0],
            theta,
        },
        Gate::Rz { theta, .. } => Gate::Rz {
            qubit: qs[0],
            theta,
        },
        Gate::Phase { lambda, .. } => Gate::Phase {
            qubit: qs[0],
            lambda,
        },
        Gate::Cx { .. } => Gate::Cx {
            control: qs[0],
            target: qs[1],
        },
        Gate::Cz { .. } => Gate::Cz {
            control: qs[0],
            target: qs[1],
        },
        Gate::Rzz { theta, .. } => Gate::Rzz {
            a: qs[0],
            b: qs[1],
            theta,
        },
        Gate::Swap { .. } => Gate::Swap { a: qs[0], b: qs[1] },
    }
}

/// BFS shortest path (inclusive of both endpoints).
fn bfs_path(from: usize, to: usize, adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    let mut prev = vec![usize::MAX; adj.len()];
    let mut queue = VecDeque::new();
    prev[from] = from;
    queue.push_back(from);
    while let Some(q) = queue.pop_front() {
        if q == to {
            let mut path = vec![to];
            let mut cur = to;
            while cur != from {
                cur = prev[cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &nb in &adj[q] {
            if prev[nb] == usize::MAX {
                prev[nb] = q;
                queue.push_back(nb);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::StateVector;

    /// Marginal distribution of the routed circuit on its output layout
    /// must match the original circuit's distribution.
    fn assert_equivalent(original: &Circuit, routed: &RoutedCircuit) {
        let p_orig = StateVector::from_circuit(original).probabilities();
        let p_phys = StateVector::from_circuit(routed.circuit()).probabilities();
        let n_log = original.n_qubits();
        let mut p_marg = vec![0.0; 1 << n_log];
        for (idx, &p) in p_phys.iter().enumerate() {
            let phys = BitString::from_value(idx as u64, routed.circuit().n_qubits());
            p_marg[routed.logical_outcome(phys).index()] += p;
        }
        for (a, b) in p_orig.iter().zip(&p_marg) {
            assert!((a - b).abs() < 1e-9, "distribution mismatch: {a} vs {b}");
        }
    }

    fn line_device(n: usize) -> DeviceModel {
        let dev = DeviceModel::ideal(n);
        // Build a line-coupled ideal device for routing tests.
        DeviceModel::from_parts(
            "line",
            (0..n).map(|q| *dev.qubit(q)).collect(),
            (0..n - 1).map(|i| (i, i + 1)).collect(),
            0.0,
            Vec::new(),
            0.0,
            Vec::new(),
        )
    }

    #[test]
    fn adjacent_gates_route_without_swaps() {
        let dev = line_device(3);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let r = route(&c, &dev, &Placement::identity(3)).unwrap();
        assert_eq!(r.swap_count(), 0);
        assert_equivalent(&c, &r);
    }

    #[test]
    fn distant_gate_inserts_swaps() {
        let dev = line_device(4);
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 3);
        let r = route(&c, &dev, &Placement::identity(4)).unwrap();
        assert_eq!(r.swap_count(), 2, "0-3 on a line needs two swaps");
        assert_equivalent(&c, &r);
    }

    #[test]
    fn layout_tracks_moved_qubits() {
        let dev = line_device(3);
        let mut c = Circuit::new(3);
        c.x(0).cx(0, 2);
        let r = route(&c, &dev, &Placement::identity(3)).unwrap();
        assert_equivalent(&c, &r);
        // Logical 0 moved off physical 0.
        assert_ne!(r.output_qubit(0), 0);
    }

    #[test]
    fn ghz_on_melbourne_is_equivalent() {
        let dev = DeviceModel::ibmq_melbourne();
        // GHZ over 5 logical qubits placed by the variability-aware policy.
        let c = qworkloads::ghz_circuit(5);
        let r = route_auto(&c, &dev).unwrap();
        assert_equivalent(&c, &r);
    }

    #[test]
    fn qaoa_on_sparse_map_is_equivalent() {
        // QAOA's all-to-all cost edges on a line force heavy routing; the
        // semantics must survive.
        let dev = line_device(4);
        let g = qworkloads::Graph::complete_bipartite("0101".parse().unwrap());
        let qaoa = qworkloads::Qaoa::new(g, vec![0.7], vec![0.4]);
        let c = qaoa.circuit();
        let r = route(&c, &dev, &Placement::identity(4)).unwrap();
        assert!(r.swap_count() > 0);
        assert_equivalent(&c, &r);
    }

    #[test]
    fn logical_counts_fold_physical_logs() {
        let dev = line_device(3);
        let mut c = Circuit::new(2);
        c.x(0);
        let placement = Placement::new(vec![2, 0]);
        let r = route(&c, &dev, &placement).unwrap();
        let mut physical = Counts::new(3);
        // Physical outcome with bit 2 set corresponds to logical "01".
        physical.record_n("100".parse().unwrap(), 7);
        let logical = r.logical_counts(&physical);
        assert_eq!(logical.get(&"01".parse().unwrap()), 7);
    }

    #[test]
    fn mismatched_placement_rejected() {
        let dev = line_device(3);
        let c = Circuit::new(2);
        assert_eq!(
            route(&c, &dev, &Placement::identity(3)),
            Err(RoutingError::PlacementMismatch)
        );
        assert_eq!(
            route(&c, &dev, &Placement::new(vec![0, 9])),
            Err(RoutingError::PlacementMismatch)
        );
    }

    #[test]
    fn disconnected_device_reported() {
        // Two disconnected pairs.
        let base = DeviceModel::ideal(4);
        let dev = DeviceModel::from_parts(
            "split",
            (0..4).map(|q| *base.qubit(q)).collect(),
            vec![(0, 1), (2, 3)],
            0.0,
            Vec::new(),
            0.0,
            Vec::new(),
        );
        let mut c = Circuit::new(4);
        c.cx(0, 2);
        let err = route(&c, &dev, &Placement::identity(4)).unwrap_err();
        assert!(matches!(err, RoutingError::Disconnected(_, _)));
        assert!(err.to_string().contains("not connected"));
    }

    #[test]
    fn fully_connected_ideal_device_never_swaps() {
        let dev = DeviceModel::ideal(5);
        let mut c = Circuit::new(5);
        c.cx(0, 4).cx(1, 3).cz(0, 2);
        let r = route(&c, &dev, &Placement::identity(5)).unwrap();
        assert_eq!(r.swap_count(), 0);
    }
}
