//! Property-based tests for allocation and routing.

use proptest::prelude::*;
use qmapper::{allocate, route, Placement};
use qnoise::DeviceModel;
use qsim::{BitString, Circuit, Gate, StateVector};

/// A line-coupled noiseless device for routing checks.
fn line_device(n: usize) -> DeviceModel {
    let base = DeviceModel::ideal(n);
    DeviceModel::from_parts(
        "line",
        (0..n).map(|q| *base.qubit(q)).collect(),
        (0..n - 1).map(|i| (i, i + 1)).collect(),
        0.0,
        Vec::new(),
        0.0,
        Vec::new(),
    )
}

fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(Gate::X),
        q.clone().prop_map(Gate::H),
        (q, -2.0..2.0f64).prop_map(|(qubit, theta)| Gate::Rz { qubit, theta }),
        q2.clone()
            .prop_map(|(control, target)| Gate::Cx { control, target }),
        (q2, -2.0..2.0f64).prop_map(|((a, b), theta)| Gate::Rzz { a, b, theta }),
    ]
}

fn arb_circuit(n: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 0..16).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        c.extend(gates);
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any circuit routed onto a line keeps its logical output
    /// distribution exactly (the fundamental router contract).
    #[test]
    fn routing_preserves_semantics(c in arb_circuit(4)) {
        let dev = line_device(5);
        let placement = Placement::new(vec![0, 1, 2, 3]);
        let routed = route(&c, &dev, &placement).expect("line is connected");
        let p_orig = StateVector::from_circuit(&c).probabilities();
        let p_phys = StateVector::from_circuit(routed.circuit()).probabilities();
        let mut p_marg = vec![0.0f64; 16];
        for (idx, &p) in p_phys.iter().enumerate() {
            let phys = BitString::from_value(idx as u64, 5);
            p_marg[routed.logical_outcome(phys).index()] += p;
        }
        for (a, b) in p_orig.iter().zip(&p_marg) {
            prop_assert!((a - b).abs() < 1e-8, "{} vs {}", a, b);
        }
    }

    /// The output layout is always a valid injection of logical into
    /// physical qubits.
    #[test]
    fn output_layout_is_injective(c in arb_circuit(4)) {
        let dev = line_device(6);
        let placement = Placement::new(vec![1, 2, 3, 4]);
        let routed = route(&c, &dev, &placement).unwrap();
        let layout = routed.output_layout();
        prop_assert_eq!(layout.len(), 4);
        for (i, &p) in layout.iter().enumerate() {
            prop_assert!(p < 6);
            prop_assert!(!layout[..i].contains(&p), "layout not injective: {:?}", layout);
        }
    }

    /// Every inserted gate acts on coupled qubits — the router's whole
    /// point.
    #[test]
    fn routed_two_qubit_gates_respect_coupling(c in arb_circuit(4)) {
        let dev = line_device(4);
        let routed = route(&c, &dev, &Placement::identity(4)).unwrap();
        for g in routed.circuit().gates() {
            if g.is_two_qubit() {
                let qs = g.qubits();
                prop_assert!(
                    qs[0].abs_diff(qs[1]) == 1,
                    "gate {} not on a line edge",
                    g
                );
            }
        }
    }

    /// Allocation always returns the requested size with in-range,
    /// distinct physical qubits.
    #[test]
    fn allocation_is_well_formed(k in 1usize..=14) {
        let dev = DeviceModel::ibmq_melbourne();
        let placement = allocate(&dev, k).expect("melbourne is connected");
        prop_assert_eq!(placement.n_logical(), k);
        let phys = placement.physical();
        for (i, &p) in phys.iter().enumerate() {
            prop_assert!(p < 14);
            prop_assert!(!phys[..i].contains(&p));
        }
    }
}
