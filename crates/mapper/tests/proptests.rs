//! Randomized property tests for allocation and routing.
//!
//! Cases come from fixed-seed [`StdRng`] streams; the case index in every
//! assertion message makes any failure reproducible.

use qmapper::{allocate, route, Placement};
use qnoise::DeviceModel;
use qsim::{BitString, Circuit, Gate, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 48;

/// A line-coupled noiseless device for routing checks.
fn line_device(n: usize) -> DeviceModel {
    let base = DeviceModel::ideal(n);
    DeviceModel::from_parts(
        "line",
        (0..n).map(|q| *base.qubit(q)).collect(),
        (0..n - 1).map(|i| (i, i + 1)).collect(),
        0.0,
        Vec::new(),
        0.0,
        Vec::new(),
    )
}

/// A random gate from the router-relevant set (X, H, Rz, Cx, Rzz).
fn random_gate(n: usize, rng: &mut StdRng) -> Gate {
    fn pair(n: usize, rng: &mut StdRng) -> (usize, usize) {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        (a, b)
    }
    let q = rng.gen_range(0..n);
    let theta = rng.gen_range(-2.0..2.0f64);
    match rng.gen_range(0..5u32) {
        0 => Gate::X(q),
        1 => Gate::H(q),
        2 => Gate::Rz { qubit: q, theta },
        3 => {
            let (control, target) = pair(n, rng);
            Gate::Cx { control, target }
        }
        _ => {
            let (a, b) = pair(n, rng);
            Gate::Rzz { a, b, theta }
        }
    }
}

fn random_circuit(n: usize, rng: &mut StdRng) -> Circuit {
    let len = rng.gen_range(0..16usize);
    let mut c = Circuit::new(n);
    c.extend((0..len).map(|_| random_gate(n, rng)));
    c
}

/// Any circuit routed onto a line keeps its logical output distribution
/// exactly (the fundamental router contract).
#[test]
fn routing_preserves_semantics() {
    let mut rng = StdRng::seed_from_u64(0x307);
    for case in 0..CASES {
        let c = random_circuit(4, &mut rng);
        let dev = line_device(5);
        let placement = Placement::new(vec![0, 1, 2, 3]);
        let routed = route(&c, &dev, &placement).expect("line is connected");
        let p_orig = StateVector::from_circuit(&c).probabilities();
        let p_phys = StateVector::from_circuit(routed.circuit()).probabilities();
        let mut p_marg = vec![0.0f64; 16];
        for (idx, &p) in p_phys.iter().enumerate() {
            let phys = BitString::from_value(idx as u64, 5);
            p_marg[routed.logical_outcome(phys).index()] += p;
        }
        for (a, b) in p_orig.iter().zip(&p_marg) {
            assert!((a - b).abs() < 1e-8, "case {case}: {a} vs {b}");
        }
    }
}

/// The output layout is always a valid injection of logical into
/// physical qubits.
#[test]
fn output_layout_is_injective() {
    let mut rng = StdRng::seed_from_u64(0x308);
    for case in 0..CASES {
        let c = random_circuit(4, &mut rng);
        let dev = line_device(6);
        let placement = Placement::new(vec![1, 2, 3, 4]);
        let routed = route(&c, &dev, &placement).unwrap();
        let layout = routed.output_layout();
        assert_eq!(layout.len(), 4, "case {case}");
        for (i, &p) in layout.iter().enumerate() {
            assert!(p < 6, "case {case}");
            assert!(
                !layout[..i].contains(&p),
                "case {case}: layout not injective: {layout:?}"
            );
        }
    }
}

/// Every inserted gate acts on coupled qubits — the router's whole point.
#[test]
fn routed_two_qubit_gates_respect_coupling() {
    let mut rng = StdRng::seed_from_u64(0x309);
    for case in 0..CASES {
        let c = random_circuit(4, &mut rng);
        let dev = line_device(4);
        let routed = route(&c, &dev, &Placement::identity(4)).unwrap();
        for g in routed.circuit().gates() {
            if g.is_two_qubit() {
                let qs = g.qubits();
                assert!(
                    qs[0].abs_diff(qs[1]) == 1,
                    "case {case}: gate {g} not on a line edge"
                );
            }
        }
    }
}

/// Allocation always returns the requested size with in-range, distinct
/// physical qubits.
#[test]
fn allocation_is_well_formed() {
    for k in 1usize..=14 {
        let dev = DeviceModel::ibmq_melbourne();
        let placement = allocate(&dev, k).expect("melbourne is connected");
        assert_eq!(placement.n_logical(), k);
        let phys = placement.physical();
        for (i, &p) in phys.iter().enumerate() {
            assert!(p < 14, "k = {k}");
            assert!(!phys[..i].contains(&p), "k = {k}");
        }
    }
}
