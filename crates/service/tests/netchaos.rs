//! Mesh partition chaos (ISSUE 9): every scenario drives the mesh
//! through the deterministic network fault fabric — scripted by *arrival
//! count*, never wall-clock — and asserts the overload-control layer
//! keeps the damage bounded:
//!
//! * an asymmetric partition that orphans the owner mid-characterization
//!   converges byte-identically via journaled promotion, at 1, 2, and 8
//!   worker threads;
//! * a healed one-way partition re-converges the stale follower through
//!   the resurrection re-ship;
//! * a flapping heartbeat edge never promotes (no ping-pong);
//! * a slow-loris peer cannot pin the forward wait past membership death;
//! * a fully partitioned ladder costs bounded dials per request (dial
//!   gate + retry budget), with control ops never shed;
//! * queue overload sheds expired work, never control frames;
//! * the retry budget caps cache retries below the configured limit;
//! * heartbeat rounds are bounded by one probe budget, not the sum of
//!   every slow peer's timeout.

use invmeas_faults::{Fault, FaultInjector, FaultPlan, FaultSite, NetFault, NetFaultPlan};
use invmeas_service::{
    call, ClusterConfig, HashRing, MethodKind, PolicyKind, Request, Response, Server, ServerConfig,
    SubmitRequest,
};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type ServeHandle = JoinHandle<std::io::Result<qmetrics::CountersSnapshot>>;

/// Reserves `n` distinct loopback ports by holding listeners open while
/// collecting, then releasing them all at once.
fn pick_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").port())
        .collect()
}

/// A mesh node wired to the *shared* fault fabric: every in-process node
/// carries the same `Arc<NetFaultPlan>`, so one script partitions the
/// whole cluster consistently (node `i` is `n{i}` in the script).
fn chaos_node(
    members: &[String],
    index: usize,
    profile_dir: &Path,
    faults: Arc<dyn FaultInjector>,
    plan: &Arc<NetFaultPlan>,
    workers: usize,
    heartbeat_ms: u64,
) -> ServerConfig {
    let mut cluster = ClusterConfig::new(members.to_vec(), &members[index]).expect("cluster");
    cluster.replication = 2;
    cluster.heartbeat_ms = heartbeat_ms;
    cluster.heartbeat_miss_limit = 2;
    ServerConfig {
        addr: members[index].clone(),
        workers,
        profile_shots: 96,
        profile_seed: 7,
        profile_dir: Some(profile_dir.to_path_buf()),
        faults,
        net_faults: Some(Arc::clone(plan)),
        cluster: Some(cluster),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> (SocketAddr, ServeHandle) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: ServeHandle) -> qmetrics::CountersSnapshot {
    assert_eq!(
        call(addr, &Request::Shutdown).expect("shutdown"),
        Response::Shutdown
    );
    handle
        .join()
        .expect("serve thread panicked")
        .expect("serve returned an error")
}

fn status_counters(addr: &str) -> qmetrics::CountersSnapshot {
    match call(addr, &Request::Status).expect("status") {
        Response::Status(s) => s.counters,
        other => panic!("wrong response {other:?}"),
    }
}

fn characterize_req(device: &str) -> Request {
    Request::Characterize(invmeas_service::CharacterizeRequest {
        device: device.into(),
        method: MethodKind::Brute,
        shots: 0, // server default, identical on every node
        fwd: false,
    })
}

fn profile_file(dir: &Path, device: &str) -> PathBuf {
    dir.join(format!("{device}-brute-w0.rbms"))
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// Polls `addr`'s cluster map until member `peer` reaches `alive`.
fn await_liveness(addr: &str, peer: usize, alive: bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let map = match call(addr, &Request::ClusterMap { device: None }).expect("cluster-map") {
            Response::ClusterMap(m) => m,
            other => panic!("wrong response {other:?}"),
        };
        if map.alive[peer] == alive {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "member {peer} never became alive={alive} in {addr}'s view"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// One uninterrupted single-node reference run: the bytes and checkpoint
/// count every chaos scenario must converge to.
fn reference_run(root: &Path, device: &str) -> (Vec<u8>, u64) {
    let ref_dir = root.join("reference");
    let (ref_addr, ref_handle) = start(ServerConfig {
        workers: 2,
        profile_shots: 96,
        profile_seed: 7,
        profile_dir: Some(ref_dir.clone()),
        ..ServerConfig::default()
    });
    match call(ref_addr, &characterize_req(device)).expect("reference characterize") {
        Response::Characterize(_) => {}
        other => panic!("wrong response {other:?}"),
    }
    let counters = shutdown(ref_addr, ref_handle);
    let bytes = std::fs::read(profile_file(&ref_dir, device)).expect("reference profile");
    (bytes, counters.journal_checkpoints)
}

/// The tentpole scenario: the device's owner is cut off *asymmetrically*
/// (it can still dial out — its replicas keep landing — but nobody can
/// reach it) while its characterization dies mid-run. The first follower
/// must promote off the replicated journal and finish exactly the
/// remaining units, byte-identical to an uninterrupted run. Replayed at
/// 1, 2, and 8 worker threads: the converged bytes must not depend on
/// scheduling.
fn asymmetric_partition_scenario(
    root: &Path,
    device: &str,
    workers: usize,
    reference_bytes: &[u8],
    reference_units: u64,
) {
    let ports = pick_ports(3);
    let members: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let dirs: Vec<PathBuf> = (0..3)
        .map(|i| root.join(format!("w{workers}-node{i}")))
        .collect();
    let ring = HashRing::new(&members);
    let route = ring.route(device, 2);
    let owner = route.owner;
    let ladder: Vec<usize> = route.ladder().collect();
    let promoted = ladder[1];
    let bystander = ladder[2];

    // Asymmetric, sustained (`until 0`): every dial *toward* the owner is
    // severed from the first attempt; the owner's outbound edges stay
    // open so its journal checkpoints replicate right up to the crash.
    let plan = Arc::new(
        NetFaultPlan::new(workers as u64)
            .partition(format!("n{promoted}"), format!("n{owner}"), 1, 0)
            .partition(format!("n{bystander}"), format!("n{owner}"), 1, 0),
    );

    let nodes: Vec<(SocketAddr, ServeHandle)> = (0..3)
        .map(|i| {
            let faults: Arc<dyn FaultInjector> = if i == owner {
                Arc::new(FaultPlan::new(1).on_nth(
                    FaultSite::JournalWrite,
                    3,
                    Fault::Panic("owner dies mid-characterization".into()),
                ))
            } else {
                Arc::new(invmeas_faults::NoFaults)
            };
            start(chaos_node(
                &members, i, &dirs[i], faults, &plan, workers, 50,
            ))
        })
        .collect();

    // The owner's characterization dies at its third checkpoint; the two
    // completed units were replicated over its (open) outbound edges.
    match call(members[owner].as_str(), &characterize_req(device)).expect("doomed characterize") {
        Response::Error { code, message } => {
            assert_eq!(code, 500, "{message}");
            assert!(message.contains("panicked"), "{message}");
        }
        other => panic!("wrong response {other:?}"),
    }
    let owner_journal = {
        let mut p = profile_file(&dirs[owner], device).into_os_string();
        p.push(".journal");
        std::fs::read_to_string(PathBuf::from(p)).expect("owner journal survives the crash")
    };
    let (_, owner_units) = invmeas::inspect_journal(&owner_journal).expect("valid journal");
    assert_eq!(owner_units, 2, "the panic fired on the third checkpoint");

    // The partition refuses every probe toward the owner, so the
    // survivors declare it dead — the owner process is still running.
    await_liveness(&members[promoted], owner, false);

    // The promoted follower resumes the replicated journal and serves.
    match call(members[promoted].as_str(), &characterize_req(device)).expect("promoted serve") {
        Response::Characterize(r) => assert_eq!(r.device, device),
        other => panic!("wrong response {other:?}"),
    }
    let promoted_counters = status_counters(&members[promoted]);
    assert_eq!(
        promoted_counters.resumed_jobs, 1,
        "promotion must resume the journal, not start over"
    );
    assert_eq!(
        promoted_counters.journal_checkpoints,
        reference_units - owner_units,
        "promoted node does exactly the unfinished work (exactly-one-run ledger)"
    );
    assert!(promoted_counters.failovers >= 1);
    assert!(promoted_counters.heartbeats_missed >= 2);
    assert!(
        promoted_counters.net_faults_injected > 0,
        "refused probes must surface through the mirrored gauge"
    );
    assert_eq!(
        promoted_counters.partitions_healed, 0,
        "an `until 0` partition never heals"
    );

    // Convergence: promoted and bystander replicas are byte-identical to
    // the uninterrupted reference, independent of worker count.
    let deadline = Instant::now() + Duration::from_secs(10);
    let bystander_path = profile_file(&dirs[bystander], device);
    while !bystander_path.exists() {
        assert!(Instant::now() < deadline, "bystander replica never landed");
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(
        std::fs::read(profile_file(&dirs[promoted], device)).expect("promoted profile"),
        reference_bytes,
        "workers={workers}: journaled handoff must land the reference bytes"
    );
    assert_eq!(
        std::fs::read(&bystander_path).expect("bystander profile"),
        reference_bytes,
        "workers={workers}: replicas must converge to the reference bytes"
    );
    assert!(plan.injected() > 0);
    assert_eq!(plan.partitions_healed(), 0);

    // The orphaned owner is still reachable by direct clients.
    for (addr, handle) in nodes {
        shutdown(addr, handle);
    }
}

#[test]
fn asymmetric_partition_mid_characterization_converges_bit_identically() {
    let device = "ibmqx4";
    let root = fresh_dir("invmeas-netchaos-partition-test");
    let (reference_bytes, reference_units) = reference_run(&root, device);
    assert!(reference_units > 3, "need enough units to kill mid-run");
    for workers in [1, 2, 8] {
        asymmetric_partition_scenario(&root, device, workers, &reference_bytes, reference_units);
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn healed_partition_reships_profiles_and_reconverges() {
    let device = "ibmqx4";
    let root = fresh_dir("invmeas-netchaos-heal-test");
    let ports = pick_ports(2);
    let members: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let dirs: Vec<PathBuf> = (0..2).map(|i| root.join(format!("node{i}"))).collect();
    let ring = HashRing::new(&members);
    let owner = ring.route(device, 1).owner;
    let follower = 1 - owner;

    // One-way: the owner cannot reach the follower for its first 30 dial
    // attempts (≈1.5 s of probes), then the edge heals. The follower's
    // probes toward the owner flow the whole time — an asymmetric view.
    let plan = Arc::new(NetFaultPlan::new(3).partition(
        format!("n{owner}"),
        format!("n{follower}"),
        1,
        30,
    ));
    let nodes: Vec<(SocketAddr, ServeHandle)> = (0..2)
        .map(|i| {
            start(chaos_node(
                &members,
                i,
                &dirs[i],
                Arc::new(invmeas_faults::NoFaults),
                &plan,
                2,
                50,
            ))
        })
        .collect();

    // The owner declares the follower dead, characterizes alone (replicas
    // skipped: no point dialling a corpse per checkpoint) …
    await_liveness(&members[owner], follower, false);
    match call(members[owner].as_str(), &characterize_req(device)).expect("characterize") {
        Response::Characterize(_) => {}
        other => panic!("wrong response {other:?}"),
    }
    let owner_bytes = std::fs::read(profile_file(&dirs[owner], device)).expect("owner profile");

    // … and once the partition heals, the dead → alive transition
    // triggers the full profile re-ship that re-converges the follower.
    await_liveness(&members[owner], follower, true);
    let replica_path = profile_file(&dirs[follower], device);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(replica) = std::fs::read(&replica_path) {
            if replica == owner_bytes {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "re-ship never converged the follower replica"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(
        plan.partitions_healed(),
        1,
        "the window healed exactly once"
    );
    let owner_counters = status_counters(&members[owner]);
    assert_eq!(
        owner_counters.partitions_healed, 1,
        "gauge mirrors the plan"
    );
    assert!(owner_counters.heartbeats_missed >= 2);
    let follower_counters = status_counters(&members[follower]);
    assert!(follower_counters.replication_writes >= 1, "re-ship landed");

    for (addr, handle) in nodes {
        shutdown(addr, handle);
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn flapping_heartbeat_edge_never_promotes() {
    let device = "ibmqx4";
    let root = fresh_dir("invmeas-netchaos-flap-test");
    let ports = pick_ports(3);
    let members: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let dirs: Vec<PathBuf> = (0..3).map(|i| root.join(format!("node{i}"))).collect();
    let ring = HashRing::new(&members);
    let route = ring.route(device, 2);
    let owner = route.owner;
    let watcher = route.ladder().find(|&m| m != owner).expect("a follower");

    // Every *odd* probe from the watcher to the owner is refused — a
    // flapping edge. With miss_limit 2 the misses are never consecutive,
    // so the owner must never be declared dead: no promotion ping-pong.
    let mut plan = NetFaultPlan::new(5);
    for arrival in [1, 3, 5, 7] {
        plan = plan.on_connect(
            format!("n{watcher}"),
            format!("n{owner}"),
            arrival,
            NetFault::Refuse,
        );
    }
    let plan = Arc::new(plan);
    let nodes: Vec<(SocketAddr, ServeHandle)> = (0..3)
        .map(|i| {
            start(chaos_node(
                &members,
                i,
                &dirs[i],
                Arc::new(invmeas_faults::NoFaults),
                &plan,
                2,
                50,
            ))
        })
        .collect();

    // Sample the watcher's view through the flap window: the owner must
    // read alive on every sample.
    let until = Instant::now() + Duration::from_millis(600);
    while Instant::now() < until {
        let map = match call(
            members[watcher].as_str(),
            &Request::ClusterMap { device: None },
        )
        .expect("cluster-map")
        {
            Response::ClusterMap(m) => m,
            other => panic!("wrong response {other:?}"),
        };
        assert!(
            map.alive[owner],
            "a flapping edge must never cross the miss limit"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // Routed work still forwards to the (alive) owner — one run, owned.
    match call(members[watcher].as_str(), &characterize_req(device)).expect("characterize") {
        Response::Characterize(r) => assert_eq!(r.device, device),
        other => panic!("wrong response {other:?}"),
    }
    let watcher_counters = status_counters(&members[watcher]);
    assert!(
        watcher_counters.forwards >= 1,
        "watcher must forward to the owner"
    );
    assert_eq!(watcher_counters.failovers, 0, "no promotion ever happened");
    assert_eq!(watcher_counters.resumed_jobs, 0);
    assert!(watcher_counters.heartbeats_missed >= 1, "the flap was real");
    assert_eq!(
        watcher_counters.journal_checkpoints, 0,
        "the owner did all the work: exactly one run"
    );

    for (addr, handle) in nodes {
        shutdown(addr, handle);
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn slow_loris_forward_aborts_on_membership_death() {
    let device = "ibmqx4";
    let root = fresh_dir("invmeas-netchaos-loris-test");
    let ports = pick_ports(2);
    let members: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let dirs: Vec<PathBuf> = (0..2).map(|i| root.join(format!("node{i}"))).collect();
    let ring = HashRing::new(&members);
    let owner = ring.route(device, 1).owner;
    let forwarder = 1 - owner;

    // The owner is a slow loris: it accepts the forwarded characterize
    // but its measurement stalls for 6 s. Mid-wait, the forwarder's dial
    // attempts toward the owner hit a sustained partition (arrival 30,
    // ≈1.5 s of probes in), its probes start failing, and the owner is
    // declared dead — at which point the forward wait must abort and
    // fail over locally instead of pinning the worker for the full 6 s.
    let plan = Arc::new(NetFaultPlan::new(9).partition(
        format!("n{forwarder}"),
        format!("n{owner}"),
        30,
        0,
    ));
    let nodes: Vec<(SocketAddr, ServeHandle)> = (0..2)
        .map(|i| {
            let faults: Arc<dyn FaultInjector> = if i == owner {
                Arc::new(FaultPlan::new(1).on_nth(
                    FaultSite::Characterize,
                    1,
                    Fault::Latency(6_000),
                ))
            } else {
                Arc::new(invmeas_faults::NoFaults)
            };
            start(chaos_node(&members, i, &dirs[i], faults, &plan, 2, 50))
        })
        .collect();

    // Let a few clean probe rounds pass so the owner reads alive and the
    // forward dial lands well before the partition window opens.
    std::thread::sleep(Duration::from_millis(400));
    await_liveness(&members[forwarder], owner, true);

    let started = Instant::now();
    match call(members[forwarder].as_str(), &characterize_req(device)).expect("characterize") {
        Response::Characterize(r) => assert_eq!(r.device, device),
        other => panic!("wrong response {other:?}"),
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(6),
        "forward wait must abort on membership death, not ride out the loris ({elapsed:?})"
    );
    let c = status_counters(&members[forwarder]);
    assert!(c.failovers >= 1, "the aborted forward fell back locally");
    assert!(c.heartbeats_missed >= 2, "death came from missed probes");
    // The worker is free again: the node answers instantly.
    match call(members[forwarder].as_str(), &Request::Health).expect("health after abort") {
        Response::Health(_) => {}
        other => panic!("wrong response {other:?}"),
    }

    for (addr, handle) in nodes {
        shutdown(addr, handle);
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn fully_partitioned_ladder_costs_bounded_dials_per_request() {
    let device = "ibmqx4";
    let root = fresh_dir("invmeas-netchaos-bounded-test");
    let ports = pick_ports(2);
    let members: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let dirs: Vec<PathBuf> = (0..2).map(|i| root.join(format!("node{i}"))).collect();
    let ring = HashRing::new(&members);
    let owner = ring.route(device, 1).owner;
    let survivor = 1 - owner;

    // Full partition: the survivor can never reach the owner.
    let plan = Arc::new(NetFaultPlan::new(2).partition_symmetric(
        format!("n{survivor}"),
        format!("n{owner}"),
        1,
        0,
    ));
    let nodes: Vec<(SocketAddr, ServeHandle)> = (0..2)
        .map(|i| {
            start(chaos_node(
                &members,
                i,
                &dirs[i],
                Arc::new(invmeas_faults::NoFaults),
                &plan,
                2,
                50,
            ))
        })
        .collect();

    // 30 back-to-back requests for the partitioned device. Ungated, each
    // would dial the dead owner at least once (30+ dials); the dial gate
    // holds the edge off after each failure, so almost every request
    // skips straight to the local failover.
    let requests = 30u64;
    for _ in 0..requests {
        match call(members[survivor].as_str(), &characterize_req(device)).expect("characterize") {
            Response::Characterize(r) => assert_eq!(r.device, device),
            other => panic!("wrong response {other:?}"),
        }
    }

    let c = status_counters(&members[survivor]);
    assert_eq!(c.forwards, 0, "no forward can cross a full partition");
    assert_eq!(c.failovers, requests, "every request fell back locally");
    assert!(
        c.peer_dials_suppressed >= 5,
        "the dial gate must hold the dead edge off: {} suppressions",
        c.peer_dials_suppressed
    );
    assert_eq!(
        c.retry_budget_exhausted, 0,
        "a single-rung ladder never spends retry tokens"
    );
    // Dial attempts on the severed edge (forward dials + heartbeat
    // probes combined) stay far below one-per-request.
    let dials = plan.edge_arrivals(&format!("n{survivor}"), &format!("n{owner}"));
    assert!(
        dials <= 25,
        "a fully partitioned ladder must cost bounded dials, got {dials} for {requests} requests"
    );

    for (addr, handle) in nodes {
        shutdown(addr, handle);
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn overload_sheds_expired_work_but_never_control_ops() {
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        queue_capacity: 3,
        profile_shots: 96,
        profile_seed: 7,
        ..ServerConfig::default()
    });

    let submit = |deadline_ms: Option<u64>| {
        Request::Submit(SubmitRequest {
            device: "ibmqx4".into(),
            qasm: qsim::qasm::to_qasm(&qsim::Circuit::basis_state_preparation(
                "11111".parse().expect("bits"),
            )),
            policy: PolicyKind::Baseline,
            shots: 10,
            seed: 1,
            expected: None,
            deadline_ms,
            fwd: false,
        })
    };

    // Occupy the only worker…
    let sleeper = std::thread::spawn(move || call(addr, &Request::Sleep { ms: 900 }));
    std::thread::sleep(Duration::from_millis(150));

    // …then fill the queue with work whose 1 ms deadline expires while
    // it waits. These are the earliest-deadline-impossible victims.
    let victims: Vec<_> = (0..3)
        .map(|_| std::thread::spawn(move || call(addr, &submit_victim())))
        .collect();
    fn submit_victim() -> Request {
        Request::Submit(SubmitRequest {
            device: "ibmqx4".into(),
            qasm: qsim::qasm::to_qasm(&qsim::Circuit::basis_state_preparation(
                "11111".parse().expect("bits"),
            )),
            policy: PolicyKind::Baseline,
            shots: 10,
            seed: 1,
            expected: None,
            deadline_ms: Some(1),
            fwd: false,
        })
    }
    std::thread::sleep(Duration::from_millis(150));

    // A control op at a full queue must ride the control slack — never
    // competing with work for admission, never shed.
    match call(
        addr,
        &Request::SetWindow {
            window: 4,
            fwd: false,
        },
    )
    .expect("control at capacity")
    {
        Response::Window { window } => assert_eq!(window, 4),
        other => panic!("wrong response {other:?}"),
    }

    // Fresh work with a live deadline evicts an expired victim instead
    // of bouncing 503.
    match call(addr, &submit(Some(10_000))).expect("shedding admission") {
        Response::Submit(_) => {}
        other => panic!("fresh work must be admitted by shedding, got {other:?}"),
    }

    // Exactly one victim was shed early (504 before the worker ever saw
    // it); the rest expire at dequeue. All three answer 504 either way.
    let mut shed_messages = 0;
    for v in victims {
        match v.join().expect("victim thread").expect("victim response") {
            Response::Error { code, message } => {
                assert_eq!(code, 504, "{message}");
                if message.contains("shed") {
                    shed_messages += 1;
                }
            }
            other => panic!("victims must answer 504, got {other:?}"),
        }
    }
    assert_eq!(
        shed_messages, 1,
        "exactly one victim was evicted by the shed"
    );
    sleeper
        .join()
        .expect("sleeper thread")
        .expect("sleeper response");

    let counters = shutdown(addr, handle);
    assert_eq!(counters.requests_shed, 1);
    assert_eq!(
        counters.busy_rejections, 0,
        "shedding replaced the 503 for deadline-impossible queues"
    );
}

#[test]
fn retry_budget_caps_cache_retries_below_the_retry_limit() {
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        profile_shots: 96,
        profile_seed: 7,
        // Five scripted transient failures with a generous retry limit —
        // but only a 2-token budget: the third attempt must be denied.
        retry_limit: 5,
        retry_backoff_ms: 1,
        retry_budget_tokens: 2,
        faults: Arc::new(
            FaultPlan::new(4)
                .on_nth(FaultSite::Characterize, 1, Fault::Error("flaky".into()))
                .on_nth(FaultSite::Characterize, 2, Fault::Error("flaky".into()))
                .on_nth(FaultSite::Characterize, 3, Fault::Error("flaky".into()))
                .on_nth(FaultSite::Characterize, 4, Fault::Error("flaky".into()))
                .on_nth(FaultSite::Characterize, 5, Fault::Error("flaky".into())),
        ),
        ..ServerConfig::default()
    });

    match call(addr, &characterize_req("ibmqx4")).expect("characterize") {
        // `Unavailable` maps to 503: transient measurement failure with
        // no last-good profile to degrade to.
        Response::Error { code, .. } => assert_eq!(code, 503),
        other => panic!("budget-capped characterization must fail, got {other:?}"),
    }

    let counters = shutdown(addr, handle);
    assert_eq!(
        counters.retries, 2,
        "the budget, not the retry limit, must cap the attempts"
    );
    assert!(
        counters.retry_budget_exhausted >= 1,
        "the denied third retry must be counted"
    );
}

#[test]
fn heartbeat_round_is_bounded_by_one_probe_budget_not_the_sum() {
    let root = fresh_dir("invmeas-netchaos-probe-test");
    let ports = pick_ports(3);
    let members: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let dirs: Vec<PathBuf> = (0..3).map(|i| root.join(format!("node{i}"))).collect();

    // Both of node 0's probe edges stall 900 ms per dial. Probed
    // sequentially, a round costs ~1.85 s and only ~2 rounds fit the
    // observation window; probed in parallel, a round costs one probe
    // budget (~0.95 s) and at least 3 fit.
    let mut plan = NetFaultPlan::new(11);
    for peer in [1u64, 2] {
        for arrival in 1..=8 {
            plan = plan.on_connect("n0", format!("n{peer}"), arrival, NetFault::Delay(900));
        }
    }
    let plan = Arc::new(plan);
    let nodes: Vec<(SocketAddr, ServeHandle)> = (0..3)
        .map(|i| {
            start(chaos_node(
                &members,
                i,
                &dirs[i],
                Arc::new(invmeas_faults::NoFaults),
                &plan,
                2,
                50,
            ))
        })
        .collect();

    std::thread::sleep(Duration::from_millis(3_300));
    for peer in [1, 2] {
        let arrivals = plan.edge_arrivals("n0", &format!("n{peer}"));
        assert!(
            arrivals >= 3,
            "sequential probing would have managed ~2 rounds; edge n0→n{peer} saw {arrivals}"
        );
    }
    // Slow probes still answer: nobody was declared dead.
    let map = match call(members[0].as_str(), &Request::ClusterMap { device: None })
        .expect("cluster-map")
    {
        Response::ClusterMap(m) => m,
        other => panic!("wrong response {other:?}"),
    };
    assert!(
        map.alive.iter().all(|a| *a),
        "delayed probes still count as alive"
    );

    for (addr, handle) in nodes {
        shutdown(addr, handle);
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn truncated_replication_frame_heals_by_reship_and_converges() {
    let device = "ibmqx4";
    let root = fresh_dir("invmeas-netchaos-truncate-test");
    let ports = pick_ports(2);
    let members: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let dirs: Vec<PathBuf> = (0..2).map(|i| root.join(format!("node{i}"))).collect();
    let ring = HashRing::new(&members);
    let owner = ring.route(device, 1).owner;
    let follower = 1 - owner;

    // The owner's *second* dial to the follower (the replicator's first
    // push; arrival 1 is the opening heartbeat probe) is cut 64 bytes in:
    // a replication frame truncated mid-wire. The follower never sees a
    // complete line, so nothing is installed from it — and the next push
    // re-ships the whole journal on a fresh connection. On top of that, a
    // scripted `ReplicateSend` corruption bit-flips one later payload,
    // which the follower's CRC must reject and recover via re-fetch.
    let plan = Arc::new(NetFaultPlan::new(13).on_connect(
        format!("n{owner}"),
        format!("n{follower}"),
        2,
        NetFault::TruncateAfter(64),
    ));
    let nodes: Vec<(SocketAddr, ServeHandle)> = (0..2)
        .map(|i| {
            let faults: Arc<dyn FaultInjector> = if i == owner {
                // Corrupt the 4th replicate send (a later journal push).
                Arc::new(FaultPlan::new(1).on_nth(FaultSite::ReplicateSend, 4, Fault::Corrupt))
            } else {
                Arc::new(invmeas_faults::NoFaults)
            };
            start(chaos_node(&members, i, &dirs[i], faults, &plan, 2, 3_000))
        })
        .collect();

    // Give the opening probe round its arrival-1 slot before the
    // characterization triggers the replicator's first dial.
    std::thread::sleep(Duration::from_millis(200));
    match call(members[owner].as_str(), &characterize_req(device)).expect("characterize") {
        Response::Characterize(_) => {}
        other => panic!("wrong response {other:?}"),
    }
    assert!(
        plan.injected() >= 1,
        "the truncation must actually have fired"
    );

    let owner_bytes = std::fs::read(profile_file(&dirs[owner], device)).expect("owner profile");
    let replica_path = profile_file(&dirs[follower], device);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(replica) = std::fs::read(&replica_path) {
            if replica == owner_bytes {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "replica never converged after the truncated frame"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    // No `.quarantined` debris: wire damage must never condemn local files.
    for entry in std::fs::read_dir(&dirs[follower]).expect("read follower dir") {
        let name = entry.expect("dir entry").file_name();
        assert!(
            !name.to_string_lossy().contains("quarantined"),
            "unexpected quarantine file {name:?}"
        );
    }

    for (addr, handle) in nodes {
        shutdown(addr, handle);
    }
    std::fs::remove_dir_all(&root).ok();
}

/// A sustained partition of one device's owner must not degrade service
/// for devices owned by healthy nodes: control ops are never shed, the
/// retry budget never drains, and request latency for the unaffected
/// device stays within 2× of an unpartitioned baseline.
#[test]
fn partitioned_owner_leaves_unaffected_devices_fast() {
    let root = fresh_dir("invmeas-netchaos-load-test");

    // Two devices with different owners under this run's port layout:
    // the first candidate's owner gets partitioned, and any device owned
    // by another node serves as the unaffected control.
    let candidates = ["ibmqx2", "ibmqx4", "ibmq-melbourne", "ideal-3", "ideal-4"];
    let run = |partitioned: bool, sub: &str| -> Option<(Duration, qmetrics::CountersSnapshot)> {
        let ports = pick_ports(3);
        let members: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
        let dirs: Vec<PathBuf> = (0..3)
            .map(|i| root.join(format!("{sub}-node{i}")))
            .collect();
        let ring = HashRing::new(&members);
        let affected = candidates[0];
        let victim = ring.route(affected, 2).owner;
        // Degenerate hash layout (every candidate on one owner): skip the
        // comparison for this port draw rather than fabricate one.
        let unaffected = candidates
            .iter()
            .find(|d| ring.route(d, 2).owner != victim)
            .copied()?;
        // Isolate the affected device's owner from both peers, both
        // directions, forever.
        let mut plan = NetFaultPlan::new(17);
        if partitioned {
            for i in (0..3).filter(|&i| i != victim) {
                plan = plan.partition_symmetric(format!("n{i}"), format!("n{victim}"), 1, 0);
            }
        }
        let plan = Arc::new(plan);
        let nodes: Vec<(SocketAddr, ServeHandle)> = (0..3)
            .map(|i| {
                start(chaos_node(
                    &members,
                    i,
                    &dirs[i],
                    Arc::new(invmeas_faults::NoFaults),
                    &plan,
                    2,
                    50,
                ))
            })
            .collect();
        let query = ring.route(unaffected, 2).owner; // a healthy owner
        if partitioned {
            await_liveness(&members[query], victim, false);
            // The affected device still answers (bounded failover)…
            match call(members[query].as_str(), &characterize_req(affected)).expect("affected") {
                Response::Characterize(_) => {}
                other => panic!("wrong response {other:?}"),
            }
            // …and control ops still run during the partition.
            match call(
                members[query].as_str(),
                &Request::SetWindow {
                    window: 0,
                    fwd: false,
                },
            )
            .expect("set-window under partition")
            {
                Response::Window { .. } => {}
                other => panic!("wrong response {other:?}"),
            }
        }
        // Warm, then measure the unaffected device's worst latency.
        match call(members[query].as_str(), &characterize_req(unaffected)).expect("warm") {
            Response::Characterize(_) => {}
            other => panic!("wrong response {other:?}"),
        }
        let mut worst = Duration::ZERO;
        for _ in 0..30 {
            let t = Instant::now();
            match call(members[query].as_str(), &characterize_req(unaffected)).expect("measure") {
                Response::Characterize(r) => {
                    assert_eq!(r.device, unaffected);
                }
                other => panic!("wrong response {other:?}"),
            }
            worst = worst.max(t.elapsed());
        }
        let counters = status_counters(&members[query]);
        // Every node — the isolated one included — stays reachable by
        // direct (non-mesh) clients, so a plain shutdown works for all.
        for (addr, handle) in nodes {
            shutdown(addr, handle);
        }
        Some((worst, counters))
    };

    let baseline = run(false, "base");
    let partitioned = run(true, "part");
    if let (Some((baseline, _)), Some((partitioned, counters))) = (baseline, partitioned) {
        // Floor the baseline: sub-millisecond cache hits would make 2×
        // a noise test, not an overload test.
        let budget = baseline.max(Duration::from_millis(250)) * 2;
        assert!(
            partitioned <= budget,
            "unaffected-device latency degraded: {partitioned:?} > 2×{baseline:?}"
        );
        assert_eq!(counters.requests_shed, 0, "no shed under partition load");
        assert_eq!(
            counters.retry_budget_exhausted, 0,
            "the partition must not drain the retry budget"
        );
    }
    std::fs::remove_dir_all(&root).ok();
}
