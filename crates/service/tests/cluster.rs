//! Profile-mesh integration tests (ISSUE 8) over real TCP sockets: a
//! replicated profile with a flipped bit is rejected by checksum and
//! re-fetched clean, and a three-node cluster whose owner is killed
//! mid-characterization converges — via journaled handoff — to profiles
//! byte-identical to an uninterrupted single-node run, with the total
//! characterization work adding up to exactly one full run.

use invmeas_faults::{Fault, FaultInjector, FaultPlan, FaultSite};
use invmeas_service::{
    call, Client, ClusterConfig, HashRing, MethodKind, Request, Response, Server, ServerConfig,
};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type ServeHandle = JoinHandle<std::io::Result<qmetrics::CountersSnapshot>>;

/// Reserves `n` distinct loopback ports by holding listeners open while
/// collecting, then releasing them all at once. The servers bind the
/// same ports immediately after, so the reuse window is tiny.
fn pick_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").port())
        .collect()
}

fn mesh_node(
    members: &[String],
    index: usize,
    profile_dir: &Path,
    faults: Arc<dyn FaultInjector>,
) -> ServerConfig {
    let mut cluster = ClusterConfig::new(members.to_vec(), &members[index]).expect("cluster");
    cluster.replication = 2;
    cluster.heartbeat_ms = 50;
    cluster.heartbeat_miss_limit = 2;
    ServerConfig {
        addr: members[index].clone(),
        workers: 2,
        profile_shots: 96,
        profile_seed: 7,
        profile_dir: Some(profile_dir.to_path_buf()),
        faults,
        cluster: Some(cluster),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> (SocketAddr, ServeHandle) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: ServeHandle) -> qmetrics::CountersSnapshot {
    assert_eq!(
        call(addr, &Request::Shutdown).expect("shutdown"),
        Response::Shutdown
    );
    handle
        .join()
        .expect("serve thread panicked")
        .expect("serve returned an error")
}

fn status_counters(addr: &str) -> qmetrics::CountersSnapshot {
    match call(addr, &Request::Status).expect("status") {
        Response::Status(s) => s.counters,
        other => panic!("wrong response {other:?}"),
    }
}

fn characterize_req(device: &str) -> Request {
    Request::Characterize(invmeas_service::CharacterizeRequest {
        device: device.into(),
        method: MethodKind::Brute,
        shots: 0, // server default, identical on every node
        fwd: false,
    })
}

fn profile_file(dir: &Path, device: &str) -> PathBuf {
    dir.join(format!("{device}-brute-w0.rbms"))
}

/// No `.quarantined` debris anywhere under `dir`: wire rejections must
/// never condemn local files.
fn assert_no_quarantine(dir: &Path) {
    for entry in std::fs::read_dir(dir).expect("read profile dir") {
        let name = entry.expect("dir entry").file_name();
        assert!(
            !name.to_string_lossy().contains("quarantined"),
            "unexpected quarantine file {name:?}"
        );
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

#[test]
fn set_window_broadcasts_across_the_mesh() {
    let root = fresh_dir("invmeas-cluster-window-test");
    let ports = pick_ports(2);
    let members: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let dirs: Vec<PathBuf> = (0..2).map(|i| root.join(format!("node{i}"))).collect();
    let nodes: Vec<(SocketAddr, ServeHandle)> = (0..2)
        .map(|i| {
            start(mesh_node(
                &members,
                i,
                &dirs[i],
                Arc::new(invmeas_faults::NoFaults),
            ))
        })
        .collect();

    let window_of = |addr: &str| -> u64 {
        match call(addr, &Request::Status).expect("status") {
            Response::Status(s) => s.window,
            other => panic!("wrong response {other:?}"),
        }
    };

    // A window set on either node must be in force on *both* before the
    // acknowledgement returns: routed submits and characterizes execute
    // under the owner's window, so a seed node acknowledging a window it
    // did not propagate would silently serve stale results.
    match call(
        members[0].as_str(),
        &Request::SetWindow {
            window: 5,
            fwd: false,
        },
    )
    .expect("set-window on node 0")
    {
        Response::Window { window } => assert_eq!(window, 5),
        other => panic!("wrong response {other:?}"),
    }
    assert_eq!(window_of(&members[0]), 5, "setting node must apply locally");
    assert_eq!(window_of(&members[1]), 5, "peer must receive the broadcast");

    match call(
        members[1].as_str(),
        &Request::SetWindow {
            window: 9,
            fwd: false,
        },
    )
    .expect("set-window on node 1")
    {
        Response::Window { window } => assert_eq!(window, 9),
        other => panic!("wrong response {other:?}"),
    }
    assert_eq!(
        window_of(&members[0]),
        9,
        "broadcast works from either node"
    );
    assert_eq!(window_of(&members[1]), 9);

    // A *broadcast* delivery applies locally but never re-broadcasts —
    // otherwise two nodes would ping-pong forever. Proven indirectly:
    // the fwd-marked request is answered inline and the mesh stays
    // responsive afterwards.
    match call(
        members[0].as_str(),
        &Request::SetWindow {
            window: 2,
            fwd: true,
        },
    )
    .expect("fwd set-window")
    {
        Response::Window { window } => assert_eq!(window, 2),
        other => panic!("wrong response {other:?}"),
    }
    assert_eq!(window_of(&members[0]), 2, "fwd delivery applies locally");
    assert_eq!(
        window_of(&members[1]),
        9,
        "fwd delivery must not re-broadcast"
    );

    for (addr, handle) in nodes {
        shutdown(addr, handle);
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn corrupt_replica_is_rejected_by_checksum_and_refetched_clean() {
    let device = "ibmqx4";
    let root = fresh_dir("invmeas-cluster-crc-test");
    let ports = pick_ports(2);
    let members: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let dirs: Vec<PathBuf> = (0..2).map(|i| root.join(format!("node{i}"))).collect();

    let nodes: Vec<(SocketAddr, ServeHandle)> = (0..2)
        .map(|i| {
            start(mesh_node(
                &members,
                i,
                &dirs[i],
                Arc::new(invmeas_faults::NoFaults),
            ))
        })
        .collect();

    // Characterize on the hash-owner; the finished profile replicates to
    // the follower as the exact persisted bytes.
    let ring = HashRing::new(&members);
    let owner = ring.route(device, 1).owner;
    let follower = 1 - owner;
    match call(members[owner].as_str(), &characterize_req(device)).expect("characterize") {
        Response::Characterize(r) => assert_eq!(r.device, device),
        other => panic!("wrong response {other:?}"),
    }
    let clean = std::fs::read(profile_file(&dirs[owner], device)).expect("owner profile");
    let replica_path = profile_file(&dirs[follower], device);
    assert_eq!(
        std::fs::read(&replica_path).expect("follower replica"),
        clean,
        "replica must be byte-identical to the owner's file"
    );

    // A clean replicate is accepted outright.
    let text = String::from_utf8(clean.clone()).expect("profiles are text");
    let replicate = |payload: String| {
        Request::Replicate(invmeas_service::ReplicateRequest {
            device: device.into(),
            method: MethodKind::Brute,
            window: 0,
            profile: Some(payload),
            journal: None,
            from: owner as u64,
        })
    };
    match call(members[follower].as_str(), &replicate(text.clone())).expect("clean replicate") {
        Response::Replicated {
            accepted,
            refetched,
        } => {
            assert!(accepted, "clean payload must be accepted");
            assert!(!refetched, "no re-fetch needed for a clean payload");
        }
        other => panic!("wrong response {other:?}"),
    }

    // Flip the low bit of one mid-file byte: still parseable text, but the
    // CRC no longer agrees. The follower must reject it, quarantine
    // nothing (its own disk was never suspect), and pull a clean copy
    // from the sender.
    std::fs::remove_file(&replica_path).expect("drop replica to prove the re-fetch");
    let mut corrupt = text.clone().into_bytes();
    let mid = (corrupt.len() / 2..corrupt.len())
        .find(|&i| corrupt[i].is_ascii_alphanumeric())
        .expect("profiles contain alphanumerics");
    corrupt[mid] ^= 0x01;
    let corrupt = String::from_utf8(corrupt).expect("ascii flip keeps utf-8");
    assert_ne!(corrupt, text);
    match call(members[follower].as_str(), &replicate(corrupt)).expect("corrupt replicate") {
        Response::Replicated {
            accepted,
            refetched,
        } => {
            assert!(!accepted, "flipped bit must fail checksum verification");
            assert!(
                refetched,
                "follower must recover by re-fetching from the sender"
            );
        }
        other => panic!("wrong response {other:?}"),
    }
    assert_no_quarantine(&dirs[follower]);
    assert_eq!(
        std::fs::read(&replica_path).expect("re-fetched replica"),
        clean,
        "re-fetched copy must be byte-identical to the owner's file"
    );
    let c = status_counters(&members[follower]);
    assert!(
        c.replication_writes >= 2,
        "follower landed at least the original replica and the re-fetch: {}",
        c.replication_writes
    );

    for (addr, handle) in nodes {
        shutdown(addr, handle);
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn killed_owner_hands_off_mid_characterization_and_the_mesh_converges() {
    let device = "ibmqx4";
    let root = fresh_dir("invmeas-cluster-failover-test");

    // Reference: one uninterrupted single-node run with the same
    // characterization parameters. Its persisted bytes and checkpoint
    // count are what the mesh must reproduce.
    let ref_dir = root.join("reference");
    let (ref_addr, ref_handle) = start(ServerConfig {
        workers: 2,
        profile_shots: 96,
        profile_seed: 7,
        profile_dir: Some(ref_dir.clone()),
        ..ServerConfig::default()
    });
    match call(ref_addr, &characterize_req(device)).expect("reference characterize") {
        Response::Characterize(_) => {}
        other => panic!("wrong response {other:?}"),
    }
    let reference_counters = shutdown(ref_addr, ref_handle);
    let reference_units = reference_counters.journal_checkpoints;
    assert!(reference_units > 3, "need enough units to kill mid-run");
    let reference_bytes = std::fs::read(profile_file(&ref_dir, device)).expect("reference profile");

    // Three mesh nodes; the device's hash-owner gets a scripted panic at
    // its third journal checkpoint — a crash with a half-finished
    // characterization whose first two units are already replicated.
    let ports = pick_ports(3);
    let members: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let dirs: Vec<PathBuf> = (0..3).map(|i| root.join(format!("node{i}"))).collect();
    let ring = HashRing::new(&members);
    let route = ring.route(device, 2);
    let owner = route.owner;
    let ladder: Vec<usize> = route.ladder().collect();
    let promoted = ladder[1]; // first follower: first alive once the owner dies
    let bystander = ladder[2];

    let nodes: Vec<Option<(SocketAddr, ServeHandle)>> = (0..3)
        .map(|i| {
            let faults: Arc<dyn FaultInjector> = if i == owner {
                Arc::new(FaultPlan::new(1).on_nth(
                    FaultSite::JournalWrite,
                    3,
                    Fault::Panic("owner dies mid-characterization".into()),
                ))
            } else {
                Arc::new(invmeas_faults::NoFaults)
            };
            Some(start(mesh_node(&members, i, &dirs[i], faults)))
        })
        .collect();
    let mut nodes = nodes;

    // The owner's characterization dies at checkpoint 3.
    match call(members[owner].as_str(), &characterize_req(device)).expect("doomed characterize") {
        Response::Error { code, message } => {
            assert_eq!(code, 500, "{message}");
            assert!(message.contains("panicked"), "{message}");
        }
        other => panic!("wrong response {other:?}"),
    }

    // Both checkpoints the owner completed were shipped to both
    // followers before it died, as the journal's exact bytes.
    let owner_journal = {
        let mut p = profile_file(&dirs[owner], device).into_os_string();
        p.push(".journal");
        std::fs::read_to_string(PathBuf::from(p)).expect("owner journal survives the crash")
    };
    let (_, owner_units) = invmeas::inspect_journal(&owner_journal).expect("valid journal");
    assert_eq!(
        owner_units, 2,
        "the panic fired on the third checkpoint write"
    );
    for i in [promoted, bystander] {
        let mut p = profile_file(&dirs[i], device).into_os_string();
        p.push(".journal");
        let replica = std::fs::read_to_string(PathBuf::from(p)).expect("replicated journal");
        assert_eq!(
            replica, owner_journal,
            "node {i} journal replica must match"
        );
    }

    // Kill the owner for good; the survivors' heartbeats declare it dead.
    let (owner_addr, owner_handle) = nodes[owner].take().expect("owner running");
    let owner_counters = shutdown(owner_addr, owner_handle);
    assert_eq!(
        owner_counters.journal_checkpoints, 0,
        "the owner never finished, so it never banked checkpoint credit"
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let map = match call(
            members[promoted].as_str(),
            &Request::ClusterMap { device: None },
        )
        .expect("cluster-map")
        {
            Response::ClusterMap(m) => m,
            other => panic!("wrong response {other:?}"),
        };
        if !map.alive[owner] {
            break;
        }
        assert!(Instant::now() < deadline, "owner never declared dead");
        std::thread::sleep(Duration::from_millis(25));
    }

    // A client seeded with the whole membership list rotates past the
    // dead owner on its own. The promoted follower serves the
    // characterization by resuming the replicated journal — not by
    // starting over.
    let seeds = [members[owner].clone(), members[promoted].clone()];
    let mut client = Client::connect_seeds(&seeds).expect("seed rotation past the dead owner");
    let resumed = match client
        .request(&characterize_req(device))
        .expect("failover characterize")
    {
        Response::Characterize(r) => r,
        other => panic!("wrong response {other:?}"),
    };
    assert_eq!(resumed.device, device);

    let promoted_counters = status_counters(&members[promoted]);
    assert_eq!(
        promoted_counters.resumed_jobs, 1,
        "promotion resumed the journal"
    );
    assert!(
        promoted_counters.failovers >= 1,
        "serving out of ring order is a failover"
    );
    assert_eq!(
        promoted_counters.journal_checkpoints,
        reference_units - owner_units,
        "the promoted node did exactly the work the owner had not finished"
    );
    assert!(promoted_counters.heartbeats_missed >= 1);

    // Routing through the other survivor forwards to the promoted node
    // (one hop, served from its now-warm cache).
    match call(members[bystander].as_str(), &characterize_req(device)).expect("forwarded") {
        Response::Characterize(_) => {}
        other => panic!("wrong response {other:?}"),
    }
    let bystander_counters = status_counters(&members[bystander]);
    assert!(
        bystander_counters.forwards >= 1,
        "bystander must forward, not serve"
    );
    assert_eq!(
        bystander_counters.journal_checkpoints, 0,
        "only owner + promoted ever characterized: total work is one full run"
    );

    // Convergence: every surviving replica is byte-identical to the
    // uninterrupted reference run.
    let promoted_bytes = std::fs::read(profile_file(&dirs[promoted], device)).expect("promoted");
    let bystander_bytes = std::fs::read(profile_file(&dirs[bystander], device)).expect("bystander");
    assert_eq!(
        promoted_bytes, reference_bytes,
        "journaled handoff must land the exact bytes of an uninterrupted run"
    );
    assert_eq!(bystander_bytes, reference_bytes, "replicas must converge");

    for node in nodes.into_iter().flatten() {
        shutdown(node.0, node.1);
    }
    std::fs::remove_dir_all(&root).ok();
}
