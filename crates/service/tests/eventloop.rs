//! Event-loop front-end tests (ISSUE 7): queue-shard fairness under a
//! multi-connection pipelined load, arrival-order independence of results
//! across shard counts (the PR 3 determinism contract extended to the
//! sharded queue), and the pipelined client against both front ends.

use invmeas_service::{
    CacheOutcome, Client, PolicyKind, Request, Response, Server, ServerConfig, SubmitRequest,
};
use std::net::SocketAddr;
use std::thread::JoinHandle;

type ServeHandle = JoinHandle<std::io::Result<qmetrics::CountersSnapshot>>;

fn start(config: ServerConfig) -> (SocketAddr, ServeHandle) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: ServeHandle) -> qmetrics::CountersSnapshot {
    let resp = invmeas_service::call(addr, &Request::Shutdown).expect("shutdown");
    assert_eq!(resp, Response::Shutdown);
    handle.join().expect("serve panicked").expect("serve error")
}

fn qasm_5q() -> String {
    qsim::qasm::to_qasm(&qsim::Circuit::basis_state_preparation(
        "11111".parse().expect("bits"),
    ))
}

fn submit_req(seed: u64, deadline_ms: Option<u64>) -> Request {
    Request::Submit(SubmitRequest {
        device: "ibmqx4".into(),
        qasm: qasm_5q(),
        policy: PolicyKind::Aim,
        shots: 500,
        seed,
        expected: Some("11111".into()),
        deadline_ms,
        fwd: false,
    })
}

/// `conns` pipelined clients, each sending `per_conn` deadline-carrying
/// submits, against a server with the given shard count. Returns every
/// submit response, normalized for scheduling noise (latency zeroed, the
/// single racy Miss/Hit outcome canonicalized), re-serialized and sorted.
fn run_load(
    shards: usize,
    conns: usize,
    per_conn: usize,
) -> (Vec<String>, qmetrics::CountersSnapshot) {
    let (addr, handle) = start(ServerConfig {
        workers: 4,
        queue_capacity: 256,
        queue_shards: shards,
        profile_shots: 64,
        ..ServerConfig::default()
    });

    let mut all: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    // Every connection sends its whole batch before reading
                    // anything: the shards absorb the burst, the workers
                    // steal across them, and the generous deadline proves
                    // nobody starved.
                    let requests: Vec<Request> = (0..per_conn)
                        .map(|i| submit_req(1000 + (c * per_conn + i) as u64, Some(60_000)))
                        .collect();
                    client.pipeline(&requests).expect("pipelined batch")
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    let counters = shutdown(addr, handle);
    let normalized: Vec<String> = all
        .iter_mut()
        .map(|r| match r {
            Response::Submit(s) => {
                s.latency_us = 0;
                // Exactly one response carries the burst's Miss; which
                // connection wins that race is scheduling, not results.
                s.cache = CacheOutcome::None;
                r.to_line()
            }
            other => panic!("expected submit response, got {other:?}"),
        })
        .collect();
    let mut sorted = normalized;
    sorted.sort();
    (sorted, counters)
}

#[test]
fn sharded_queue_starves_no_connection_and_results_are_shard_count_independent() {
    const CONNS: usize = 8;
    const PER_CONN: usize = 6;

    let (four_shards, counters) = run_load(4, CONNS, PER_CONN);
    // Fairness: every pipelined submit on every connection completed
    // inside its (generous) deadline — no 503, no 504, no starved shard.
    assert_eq!(four_shards.len(), CONNS * PER_CONN);
    assert_eq!(counters.deadline_expirations, 0, "a shard starved");
    assert_eq!(counters.busy_rejections, 0);
    assert_eq!(counters.jobs_executed as usize, CONNS * PER_CONN);
    assert_eq!(counters.jobs_failed, 0);
    // The burst still converged on one characterization (PR 3 contract).
    assert_eq!(
        counters.cache_misses, 1,
        "one characterization for the burst"
    );
    assert_eq!(counters.cache_hits as usize, CONNS * PER_CONN - 1);
    assert!(counters.frames_parsed >= (CONNS * PER_CONN) as u64);

    // Arrival-order independence across shard counts: identical workload,
    // 1 shard vs 4 shards, byte-identical normalized responses.
    let (one_shard, _) = run_load(1, CONNS, PER_CONN);
    assert_eq!(one_shard, four_shards, "results depend on shard count");
}

#[test]
fn pipelined_responses_come_back_in_request_order() {
    for event_loop in [true, false] {
        let (addr, handle) = start(ServerConfig {
            workers: 2,
            event_loop,
            ..ServerConfig::default()
        });
        let mut client = Client::connect(addr).expect("connect");
        // A mix whose response *types* encode the order, including jobs
        // that finish at different times (sleeps) between inline replies.
        let batch = vec![
            Request::SetWindow {
                window: 7,
                fwd: false,
            },
            Request::Sleep { ms: 120 },
            Request::Health,
            Request::Sleep { ms: 0 },
            Request::Status,
        ];
        let responses = client.pipeline(&batch).expect("pipeline");
        assert_eq!(responses.len(), batch.len());
        assert!(
            matches!(responses[0], Response::Window { window: 7 }),
            "{:?}",
            responses[0]
        );
        assert!(
            matches!(responses[1], Response::Slept { ms: 120 }),
            "{:?}",
            responses[1]
        );
        assert!(
            matches!(responses[2], Response::Health(_)),
            "{:?}",
            responses[2]
        );
        assert!(
            matches!(responses[3], Response::Slept { ms: 0 }),
            "{:?}",
            responses[3]
        );
        assert!(
            matches!(responses[4], Response::Status(_)),
            "{:?}",
            responses[4]
        );
        drop(client);
        shutdown(addr, handle);
    }
}

#[test]
fn event_loop_counts_frames_and_wakeups() {
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    for _ in 0..3 {
        let r = client.request(&Request::Health).expect("health");
        assert!(matches!(r, Response::Health(_)));
    }
    drop(client);
    let counters = shutdown(addr, handle);
    assert!(
        counters.frames_parsed >= 4,
        "3 healths + shutdown, got {}",
        counters.frames_parsed
    );
    assert!(counters.epoll_wakeups > 0, "the loop never woke");
}
