//! Partial-frame torture tests (ISSUE 7): the event loop's incremental
//! frame parser must produce byte-identical responses no matter how the
//! kernel slices request bytes across reads. Every deterministic request
//! line is replayed split at **each** byte boundary (two writes with a
//! pause in between, so the halves really arrive as separate reads), and
//! two frames are coalesced into a single write to prove the opposite
//! direction. A threaded-front-end pass guards the baseline the benchmark
//! compares against.

use invmeas_service::{PolicyKind, Request, Server, ServerConfig, SubmitRequest};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

type ServeHandle = JoinHandle<std::io::Result<qmetrics::CountersSnapshot>>;

fn start(config: ServerConfig) -> (SocketAddr, ServeHandle) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: ServeHandle) -> qmetrics::CountersSnapshot {
    let resp = invmeas_service::call(addr, &Request::Shutdown).expect("shutdown");
    assert_eq!(resp, invmeas_service::Response::Shutdown);
    handle.join().expect("serve panicked").expect("serve error")
}

/// Request lines whose responses are byte-deterministic (no latency or
/// counter fields), so a straight `assert_eq!` on the raw response line is
/// meaningful. Worker-path 400s are included on purpose: they cross the
/// run queue and come back through the completion path.
fn deterministic_lines() -> Vec<String> {
    vec![
        Request::Health.to_line(),
        Request::SetWindow {
            window: 5,
            fwd: false,
        }
        .to_line(),
        Request::Sleep { ms: 0 }.to_line(),
        "this is not json".to_string(),
        Request::Submit(SubmitRequest {
            device: "not-a-device".into(),
            qasm: "OPENQASM 2.0;".into(),
            policy: PolicyKind::Baseline,
            shots: 10,
            seed: 1,
            expected: None,
            deadline_ms: None,
            fwd: false,
        })
        .to_line(),
        Request::Submit(SubmitRequest {
            device: "ibmqx4".into(),
            qasm: "OPENQASM 2.0;".into(),
            policy: PolicyKind::Baseline,
            shots: 0, // "shots must be positive"
            seed: 1,
            expected: None,
            deadline_ms: None,
            fwd: false,
        })
        .to_line(),
    ]
}

struct Wire {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Wire {
    fn connect(addr: SocketAddr) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Wire { stream, reader }
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed mid-conversation");
        line
    }

    fn roundtrip_whole(&mut self, line: &str) -> String {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        self.read_line()
    }

    /// Sends `line` in two writes split at `at`, separated long enough
    /// that the server observes two distinct reads.
    fn roundtrip_split(&mut self, line: &str, at: usize) -> String {
        let framed = format!("{line}\n");
        let bytes = framed.as_bytes();
        self.stream.write_all(&bytes[..at]).expect("write head");
        self.stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(2));
        self.stream.write_all(&bytes[at..]).expect("write tail");
        self.read_line()
    }
}

fn torture(config: ServerConfig) {
    let (addr, handle) = start(config);
    let mut wire = Wire::connect(addr);

    for line in deterministic_lines() {
        let reference = wire.roundtrip_whole(&line);
        // Every interior byte boundary, including a 1-byte head and a
        // lone trailing '\n'.
        for at in 1..=line.len() {
            let got = wire.roundtrip_split(&line, at);
            assert_eq!(
                got, reference,
                "response diverged for {line:?} split at byte {at}"
            );
        }
    }

    // Two frames coalesced into one write come back as two in-order
    // responses, identical to their one-frame-per-write replies.
    let lines = deterministic_lines();
    let (a, b) = (&lines[0], &lines[1]);
    let (ref_a, ref_b) = (wire.roundtrip_whole(a), wire.roundtrip_whole(b));
    wire.stream
        .write_all(format!("{a}\n{b}\n").as_bytes())
        .expect("coalesced write");
    assert_eq!(wire.read_line(), ref_a, "first coalesced frame");
    assert_eq!(wire.read_line(), ref_b, "second coalesced frame");

    // And a frame delivered strictly one byte at a time.
    let drip = &lines[4];
    let reference = wire.roundtrip_whole(drip);
    let framed = format!("{drip}\n");
    for chunk in framed.as_bytes().chunks(1) {
        wire.stream.write_all(chunk).expect("drip write");
    }
    assert_eq!(wire.read_line(), reference, "byte-at-a-time frame");

    drop(wire);
    let counters = shutdown(addr, handle);
    assert_eq!(
        counters.connections_reaped, 0,
        "no torture client was reaped"
    );
}

#[test]
fn split_frames_are_byte_identical_on_the_event_loop() {
    torture(ServerConfig {
        workers: 2,
        event_loop: true,
        ..ServerConfig::default()
    });
}

#[test]
fn split_frames_are_byte_identical_on_the_threaded_baseline() {
    torture(ServerConfig {
        workers: 2,
        event_loop: false,
        ..ServerConfig::default()
    });
}

/// The receive half of the torture: [`Client::recv_resumable`] must keep
/// a partially received response banked across read timeouts, for a
/// response split at **every** byte boundary. A scripted server writes
/// the head of the frame, stalls long past the client's read timeout,
/// then writes the tail — the first `recv_resumable` call times out with
/// the head buffered and a later call completes the same line.
#[test]
fn recv_resumable_resumes_partial_lines_at_every_byte_split() {
    use invmeas_service::{Client, ClientError, Response};
    use std::net::TcpListener;

    let canned = Response::Window { window: 9 }.to_line();
    let framed = format!("{canned}\n");
    let reference = Response::from_line(&canned).expect("canned response parses");
    let splits: Vec<usize> = (1..framed.len()).collect();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("addr");
    let server = {
        let framed = framed.clone();
        let splits = splits.clone();
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            for at in splits {
                let mut request = String::new();
                assert!(
                    reader.read_line(&mut request).expect("read request") > 0,
                    "client hung up early"
                );
                let bytes = framed.as_bytes();
                writer.write_all(&bytes[..at]).expect("write head");
                writer.flush().expect("flush head");
                // Long past the client's read timeout: the client *will*
                // observe a timeout with only the head delivered.
                std::thread::sleep(Duration::from_millis(75));
                writer.write_all(&bytes[at..]).expect("write tail");
                writer.flush().expect("flush tail");
            }
        })
    };

    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_millis(25)))
        .expect("set timeout");
    for at in splits {
        client.send(&Request::Health).expect("send probe");
        let mut timeouts = 0u32;
        let got = loop {
            match client.recv_resumable() {
                Ok(response) => break response,
                Err(ClientError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    ) =>
                {
                    timeouts += 1;
                    assert!(timeouts < 1_000, "response never completed (split {at})");
                }
                Err(e) => panic!("unexpected receive error at split {at}: {e}"),
            }
        };
        assert!(
            timeouts >= 1,
            "split {at}: the head must have arrived alone at least once"
        );
        assert_eq!(got, reference, "response diverged for split at byte {at}");
    }
    drop(client);
    server.join().expect("fake server panicked");
}

/// Pipelined batches through a slow-writing fault fabric: the client's
/// request bytes trickle onto the wire in 3-byte chunks with delays, so
/// the server sees maximally sheared frames — responses must still come
/// back in order and byte-identical to an unimpaired client's.
#[test]
fn pipelined_responses_survive_a_slow_write_fabric() {
    use invmeas_faults::{NetFault, NetFaultPlan};
    use invmeas_service::{Client, NetFabric};
    use std::sync::Arc;

    let (addr, handle) = start(ServerConfig {
        workers: 2,
        event_loop: true,
        ..ServerConfig::default()
    });
    // No `health` here: its `queue_depth` legitimately differs between a
    // coalesced batch (later frames already queued) and a trickled one.
    let batch = vec![
        Request::SetWindow {
            window: 5,
            fwd: false,
        },
        Request::Sleep { ms: 0 },
        Request::Submit(SubmitRequest {
            device: "not-a-device".into(),
            qasm: "OPENQASM 2.0;".into(),
            policy: PolicyKind::Baseline,
            shots: 10,
            seed: 1,
            expected: None,
            deadline_ms: None,
            fwd: false,
        }),
        Request::Submit(SubmitRequest {
            device: "ibmqx4".into(),
            qasm: "OPENQASM 2.0;".into(),
            policy: PolicyKind::Baseline,
            shots: 0, // "shots must be positive"
            seed: 1,
            expected: None,
            deadline_ms: None,
            fwd: false,
        }),
        Request::SetWindow {
            window: 5,
            fwd: false,
        },
    ];

    let mut direct = Client::connect(addr).expect("direct client");
    let reference = direct.pipeline(&batch).expect("direct pipeline");

    // Every dial from this fabric slow-writes: 3-byte chunks, 2 ms apart.
    let plan = Arc::new(NetFaultPlan::new(21).on_connect(
        "client",
        "n0",
        1,
        NetFault::SlowWrite {
            chunk: 3,
            delay_ms: 2,
        },
    ));
    let fabric = NetFabric::new("client", vec![(addr, "n0".into())], Some(plan.clone()));
    let mut slow =
        Client::connect_via(&fabric, addr, Some(Duration::from_secs(30))).expect("slow client");
    let got = slow.pipeline(&batch).expect("slow pipeline");

    assert_eq!(got, reference, "slow-written batch must answer identically");
    assert_eq!(plan.injected(), 1, "the slow-write fault must have armed");

    drop(direct);
    drop(slow);
    shutdown(addr, handle);
}
