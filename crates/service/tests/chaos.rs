//! Chaos tests: the ISSUE 4 acceptance scenarios, driven by scripted
//! [`invmeas_faults::FaultPlan`]s over real TCP sockets.
//!
//! Everything here is deterministic by construction — faults fire on
//! arrival *counts*, the breaker cooldown is count-based, and retry
//! jitter is a hash — so the same plan replays the same fault sequence,
//! retry schedule, breaker transitions, and final counters on every run
//! and at every worker-pool size (for a fixed request order).

use invmeas_faults::{Fault, FaultInjector, FaultPlan, FaultSite};
use invmeas_service::{
    call, CacheOutcome, CharacterizeRequest, Client, MethodKind, PolicyKind, Request, Response,
    Server, ServerConfig, SubmitRequest,
};
use std::io::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

type ServeHandle = JoinHandle<std::io::Result<qmetrics::CountersSnapshot>>;

fn start(config: ServerConfig) -> (SocketAddr, ServeHandle) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: ServeHandle) -> qmetrics::CountersSnapshot {
    assert_eq!(
        call(addr, &Request::Shutdown).expect("shutdown"),
        Response::Shutdown
    );
    handle
        .join()
        .expect("serve thread panicked")
        .expect("serve returned an error")
}

/// A fast config: tiny characterization budget, instant retries.
fn chaos_config(faults: Arc<dyn FaultInjector>) -> ServerConfig {
    ServerConfig {
        workers: 1,
        profile_shots: 64,
        retry_limit: 1,
        retry_backoff_ms: 0,
        breaker_failure_threshold: 2,
        breaker_cooldown: 2,
        faults,
        ..ServerConfig::default()
    }
}

fn qasm_5q() -> String {
    qsim::qasm::to_qasm(&qsim::Circuit::basis_state_preparation(
        "11111".parse().expect("bits"),
    ))
}

fn submit_req(deadline_ms: Option<u64>) -> Request {
    Request::Submit(SubmitRequest {
        device: "ibmqx4".into(),
        qasm: qasm_5q(),
        policy: PolicyKind::Baseline,
        shots: 200,
        seed: 7,
        expected: None,
        deadline_ms,
        fwd: false,
    })
}

fn characterize_req() -> Request {
    Request::Characterize(CharacterizeRequest {
        device: "ibmqx4".into(),
        method: MethodKind::Brute,
        shots: 64,
        fwd: false,
    })
}

#[test]
fn transient_characterization_failure_is_retried_to_success() {
    // First measurement attempt fails; the in-cache retry succeeds, so
    // the *client* never sees the fault.
    let plan =
        Arc::new(FaultPlan::new(1).on_nth(FaultSite::Characterize, 1, Fault::Error("blip".into())));
    let (addr, handle) = start(chaos_config(plan));

    match call(addr, &characterize_req()).expect("characterize") {
        Response::Characterize(r) => {
            assert_eq!(r.cache, CacheOutcome::Miss);
            assert!(!r.degraded, "retry recovered — not a degraded serve");
        }
        other => panic!("wrong response {other:?}"),
    }

    let c = shutdown(addr, handle);
    assert_eq!(c.retries, 1, "exactly one retry");
    assert_eq!(c.faults_injected, 1);
    assert_eq!(c.degraded_responses, 0);
    assert_eq!(c.breaker_trips, 0);
    assert_eq!(c.jobs_failed, 0);
}

#[test]
fn breaker_opens_and_serves_last_good_profile_degraded() {
    // Arrival 1 (the warm-up) is clean; arrivals 2-5 fail both requests'
    // attempt+retry pairs, tripping the breaker (threshold 2); arrival 6
    // is the half-open probe, which recovers.
    let mut plan = FaultPlan::new(2);
    for arrival in 2..=5 {
        plan = plan.on_nth(
            FaultSite::Characterize,
            arrival,
            Fault::Error("device offline".into()),
        );
    }
    let (addr, handle) = start(chaos_config(Arc::new(plan)));
    let mut client = Client::connect(addr).expect("connect");

    // Warm the cache in window 0, then advance so it must re-measure.
    match client.request(&characterize_req()).expect("warm") {
        Response::Characterize(r) => assert_eq!(r.cache, CacheOutcome::Miss),
        other => panic!("wrong response {other:?}"),
    }
    client
        .request(&Request::SetWindow {
            window: 1,
            fwd: false,
        })
        .expect("set-window");

    // Two failing requests (attempt + retry each) trip the breaker; both
    // are served the window-0 profile, flagged degraded.
    for _ in 0..2 {
        match client.request(&characterize_req()).expect("degraded") {
            Response::Characterize(r) => {
                assert_eq!(r.cache, CacheOutcome::Stale);
                assert!(r.degraded, "stale serve must be flagged");
            }
            other => panic!("wrong response {other:?}"),
        }
    }

    // Health reflects the open breaker.
    match client.request(&Request::Health).expect("health") {
        Response::Health(h) => {
            assert!(h.degraded);
            assert_eq!(h.open_breakers, 1);
            assert_eq!(h.cache_entries, 1);
        }
        other => panic!("wrong response {other:?}"),
    }

    // Two more serves ride out the cooldown without touching the device…
    for _ in 0..2 {
        match client.request(&characterize_req()).expect("cooldown") {
            Response::Characterize(r) => assert!(r.degraded),
            other => panic!("wrong response {other:?}"),
        }
    }
    // …then the half-open probe re-measures and closes the breaker.
    match client.request(&characterize_req()).expect("probe") {
        Response::Characterize(r) => {
            assert_eq!(r.cache, CacheOutcome::Miss);
            assert!(!r.degraded);
        }
        other => panic!("wrong response {other:?}"),
    }
    match client.request(&Request::Health).expect("health") {
        Response::Health(h) => {
            assert!(!h.degraded, "breaker closed again");
            assert_eq!(h.open_breakers, 0);
        }
        other => panic!("wrong response {other:?}"),
    }

    let c = shutdown(addr, handle);
    assert_eq!(c.breaker_trips, 1);
    assert_eq!(c.degraded_responses, 4);
    assert_eq!(c.retries, 2);
    assert_eq!(c.faults_injected, 4);
}

#[test]
fn worker_panic_answers_500_and_the_pool_survives() {
    // One worker, a panic scripted for the second job it picks up. The
    // same connection must see: success, 500, success — proving the lone
    // worker thread survived its own panic.
    let plan = Arc::new(FaultPlan::new(3).on_nth(
        FaultSite::Worker,
        2,
        Fault::Panic("chaos monkey".into()),
    ));
    let (addr, handle) = start(chaos_config(plan));
    let mut client = Client::connect(addr).expect("connect");

    match client.request(&submit_req(None)).expect("first") {
        Response::Submit(r) => assert_eq!(r.total, 200),
        other => panic!("wrong response {other:?}"),
    }
    match client.request(&submit_req(None)).expect("panicked job") {
        Response::Error { code, message } => {
            assert_eq!(code, 500);
            assert!(message.contains("panicked"), "{message}");
        }
        other => panic!("wrong response {other:?}"),
    }
    match client.request(&submit_req(None)).expect("after panic") {
        Response::Submit(r) => assert_eq!(r.total, 200),
        other => panic!("wrong response {other:?}"),
    }

    let c = shutdown(addr, handle);
    assert_eq!(c.jobs_failed, 1);
    assert_eq!(c.jobs_executed, 2);
    assert_eq!(c.faults_injected, 1);
}

#[test]
fn hung_client_is_reaped_without_consuming_a_worker() {
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        idle_timeout_ms: 150,
        profile_shots: 64,
        ..ServerConfig::default()
    });

    // A client that opens a connection, dribbles half a line, and hangs.
    let hang_started = std::time::Instant::now();
    let mut hung = std::net::TcpStream::connect(addr).expect("connect");
    hung.write_all(b"{\"v\":1,\"op\":\"sta")
        .expect("partial line");
    hung.flush().ok();

    // While it hangs, real work flows through the (single) worker.
    match call(addr, &submit_req(None)).expect("submit during hang") {
        Response::Submit(r) => assert_eq!(r.total, 200),
        other => panic!("wrong response {other:?}"),
    }

    // The reap must land promptly after the 150 ms idle deadline — the
    // event loop scans on a coarse tick derived from the deadline
    // (deadline/8, clamped to [5 ms, 250 ms]), so reap latency is
    // bounded by deadline + tick, not by traffic. Watch the counter.
    let reaped_at = loop {
        let reaped = match call(addr, &Request::Status).expect("status") {
            Response::Status(s) => s.counters.connections_reaped,
            other => panic!("wrong response {other:?}"),
        };
        if reaped >= 1 {
            break hang_started.elapsed();
        }
        assert!(
            hang_started.elapsed() < Duration::from_secs(5),
            "hung connection was never reaped"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        reaped_at >= Duration::from_millis(150),
        "reaped before the idle deadline: {reaped_at:?}"
    );
    assert!(
        reaped_at < Duration::from_millis(600),
        "reap latency out of bounds: {reaped_at:?}"
    );

    let c = shutdown(addr, handle);
    assert_eq!(c.connections_reaped, 1, "the hung connection was reaped");
    assert_eq!(
        c.jobs_executed, 1,
        "the hung client never consumed a worker"
    );
    assert_eq!(c.jobs_failed, 0);
    drop(hung);
}

#[test]
fn expired_deadline_answers_504_and_later_jobs_complete() {
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        profile_shots: 64,
        ..ServerConfig::default()
    });

    // Occupy the single worker…
    let sleeper = std::thread::spawn(move || call(addr, &Request::Sleep { ms: 600 }));
    std::thread::sleep(Duration::from_millis(150));

    // …so this deadline-carrying submit expires in the queue.
    match call(addr, &submit_req(Some(50))).expect("expired submit") {
        Response::Error { code, message } => {
            assert_eq!(code, 504);
            assert!(message.contains("deadline exceeded"), "{message}");
        }
        other => panic!("wrong response {other:?}"),
    }
    sleeper.join().expect("sleeper").expect("sleep response");

    // The expired job cost no worker time: later jobs complete normally.
    match call(addr, &submit_req(Some(30_000))).expect("later submit") {
        Response::Submit(r) => {
            assert_eq!(r.total, 200);
            assert!(!r.degraded);
        }
        other => panic!("wrong response {other:?}"),
    }

    let c = shutdown(addr, handle);
    assert_eq!(c.deadline_expirations, 1);
    assert_eq!(c.jobs_executed, 2, "sleep + the later submit");
    assert_eq!(c.jobs_failed, 1, "the expired job");
}

/// The scripted scenario shared by the determinism runs: a warm-up, a
/// retry recovery, a breaker trip + cooldown + half-open recovery, one
/// worker panic, and a couple of clean submits — every resilience path in
/// one fixed request order.
const DETERMINISM_SCRIPT: &str = "\
faultplan v1
seed 7
# two failing requests (attempt + retry each) trip the breaker
characterize 2 error flaky calibration
characterize 3 error flaky calibration
characterize 4 error flaky calibration
characterize 5 error flaky calibration
# the 8th job a worker picks up dies
worker 8 panic chaos monkey
";

fn run_determinism_scenario(workers: usize) -> qmetrics::CountersSnapshot {
    let plan = FaultPlan::from_text(DETERMINISM_SCRIPT).expect("plan");
    let (addr, handle) = start(ServerConfig {
        workers,
        ..chaos_config(Arc::new(plan))
    });
    let mut client = Client::connect(addr).expect("connect");
    let mut req = |r: &Request| client.request(r).expect("response");

    req(&characterize_req()); // job 1: clean warm-up (arrival 1)
    req(&Request::SetWindow {
        window: 1,
        fwd: false,
    });
    req(&characterize_req()); // job 2: fails twice → failure 1, stale
    req(&characterize_req()); // job 3: fails twice → trips, stale
    req(&characterize_req()); // job 4: open, stale (cooldown 1/2)
    req(&characterize_req()); // job 5: open, stale (cooldown 2/2)
    req(&characterize_req()); // job 6: half-open probe succeeds
    req(&submit_req(None)); // job 7: clean submit
    match req(&submit_req(None)) {
        // job 8: the scripted worker panic
        Response::Error { code, .. } => assert_eq!(code, 500),
        other => panic!("expected the panic 500, got {other:?}"),
    }
    req(&submit_req(None)); // job 9: clean again
    drop(client);
    shutdown(addr, handle)
}

#[test]
fn fault_plan_replays_identically_across_runs_and_worker_counts() {
    let runs = [
        run_determinism_scenario(1),
        run_determinism_scenario(1),
        run_determinism_scenario(3),
    ];

    // Latency fields are wall-clock and excluded; everything else must be
    // bit-identical across runs *and* worker-pool sizes.
    let key = |c: &qmetrics::CountersSnapshot| {
        vec![
            c.requests,
            c.jobs_executed,
            c.jobs_failed,
            c.busy_rejections,
            c.cache_hits,
            c.cache_misses,
            c.queue_depth_peak,
            c.faults_injected,
            c.retries,
            c.degraded_responses,
            c.deadline_expirations,
            c.connections_reaped,
            c.breaker_trips,
        ]
    };
    assert_eq!(key(&runs[0]), key(&runs[1]), "same plan, same counters");
    assert_eq!(key(&runs[0]), key(&runs[2]), "worker count changes nothing");

    let c = &runs[0];
    assert_eq!(c.faults_injected, 5, "4 characterize errors + 1 panic");
    assert_eq!(c.retries, 2);
    assert_eq!(c.degraded_responses, 4);
    assert_eq!(c.breaker_trips, 1);
    assert_eq!(c.deadline_expirations, 0);
    assert_eq!(c.jobs_failed, 1, "only the panicked job");
    assert_eq!(c.jobs_executed, 8);
}
