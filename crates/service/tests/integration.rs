//! End-to-end service tests over real TCP sockets (the ISSUE 3 acceptance
//! scenarios): concurrent submits share one characterization, a full queue
//! answers busy instead of blocking, advancing the calibration window
//! invalidates the cached profile, and shutdown drains in-flight jobs.

use invmeas_service::{
    call, CacheOutcome, CharacterizeRequest, Client, MethodKind, PolicyKind, Request, Response,
    Server, ServerConfig, SubmitRequest,
};
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

type ServeHandle = JoinHandle<std::io::Result<qmetrics::CountersSnapshot>>;

fn start(config: ServerConfig) -> (SocketAddr, ServeHandle) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: ServeHandle) -> qmetrics::CountersSnapshot {
    assert_eq!(
        call(addr, &Request::Shutdown).expect("shutdown"),
        Response::Shutdown
    );
    handle
        .join()
        .expect("serve thread panicked")
        .expect("serve returned an error")
}

fn qasm_5q() -> String {
    qsim::qasm::to_qasm(&qsim::Circuit::basis_state_preparation(
        "11111".parse().expect("bits"),
    ))
}

fn submit_req(seed: u64) -> Request {
    Request::Submit(SubmitRequest {
        device: "ibmqx4".into(),
        qasm: qasm_5q(),
        policy: PolicyKind::Aim,
        shots: 2000,
        seed,
        expected: Some("11111".into()),
        deadline_ms: None,
        fwd: false,
    })
}

fn status(addr: SocketAddr) -> invmeas_service::StatusResponse {
    match call(addr, &Request::Status).expect("status") {
        Response::Status(s) => s,
        other => panic!("wrong response {other:?}"),
    }
}

#[test]
fn concurrent_submits_share_one_characterization_and_window_advance_invalidates() {
    let (addr, handle) = start(ServerConfig {
        workers: 4,
        queue_capacity: 16,
        profile_shots: 128,
        ..ServerConfig::default()
    });

    // ── 8 concurrent AIM submits against one device ─────────────────────
    let responses: Vec<_> = std::thread::scope(|scope| {
        let jobs: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || match call(addr, &submit_req(7)).expect("submit") {
                    Response::Submit(r) => r,
                    other => panic!("wrong response {other:?}"),
                })
            })
            .collect();
        jobs.into_iter()
            .map(|j| j.join().expect("client"))
            .collect()
    });

    // Exactly one characterization ran (cache-hit counter is the witness).
    let s = status(addr);
    assert_eq!(
        s.counters.cache_misses, 1,
        "one characterization for the burst"
    );
    assert_eq!(s.counters.cache_hits, 7, "everyone else hit the cache");
    assert_eq!(s.counters.jobs_executed, 8);
    assert_eq!(s.counters.jobs_failed, 0);
    assert_eq!(s.counters.busy_rejections, 0);

    let miss_count = responses
        .iter()
        .filter(|r| r.cache == CacheOutcome::Miss)
        .count();
    assert_eq!(miss_count, 1, "exactly one response reports the miss");

    // Same seed + shared profile ⇒ bitwise identical logs for all eight,
    // regardless of scheduling (exact counts over a real socket).
    for r in &responses {
        assert_eq!(r.total, 2000);
        assert_eq!(r.window, 0);
        assert_eq!(r.counts, responses[0].counts);
        assert_eq!(r.pst, responses[0].pst);
        let summed: u64 = r.counts.iter().map(|(_, n)| n).sum();
        assert!(summed <= 2000 && r.distinct >= r.counts.len() as u64);
        assert!(r.pst.expect("expected given") > 0.0);
    }

    // ── a characterization request is served from the same cache ────────
    let char_req = Request::Characterize(CharacterizeRequest {
        device: "ibmqx4".into(),
        method: MethodKind::Brute,
        shots: 0, // server default = profile_shots, same cache key
        fwd: false,
    });
    match call(addr, &char_req).expect("characterize") {
        Response::Characterize(r) => {
            assert_eq!(
                r.cache,
                CacheOutcome::Hit,
                "profile already measured by the burst"
            );
            assert_eq!(r.width, 5);
            assert!(r.trials > 0);
        }
        other => panic!("wrong response {other:?}"),
    }
    assert_eq!(status(addr).counters.cache_hits, 8);

    // ── advancing the drift window invalidates the cached profile ───────
    match call(
        addr,
        &Request::SetWindow {
            window: 1,
            fwd: false,
        },
    )
    .expect("set-window")
    {
        Response::Window { window } => assert_eq!(window, 1),
        other => panic!("wrong response {other:?}"),
    }
    let after = match call(addr, &submit_req(7)).expect("submit") {
        Response::Submit(r) => r,
        other => panic!("wrong response {other:?}"),
    };
    assert_eq!(after.window, 1);
    assert_eq!(
        after.cache,
        CacheOutcome::Miss,
        "window advance must re-characterize"
    );
    let s = status(addr);
    assert_eq!(
        s.counters.cache_misses, 2,
        "second characterization after invalidation"
    );
    assert_eq!(s.window, 1);

    shutdown(addr, handle);
}

#[test]
fn submits_are_deterministic_per_seed_across_servers() {
    let run_once = || {
        let (addr, handle) = start(ServerConfig {
            workers: 2,
            profile_shots: 64,
            ..ServerConfig::default()
        });
        let r = match call(addr, &submit_req(42)).expect("submit") {
            Response::Submit(r) => r,
            other => panic!("wrong response {other:?}"),
        };
        shutdown(addr, handle);
        r
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.counts, b.counts, "same seed + config ⇒ exact same counts");
    assert_eq!(a.pst, b.pst);
}

#[test]
fn full_queue_answers_busy_instead_of_blocking() {
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });

    // Occupy the single worker, then fill the single queue slot.
    let sleepers: Vec<_> = (0..2)
        .map(|_| {
            let h = std::thread::spawn(move || call(addr, &Request::Sleep { ms: 1500 }));
            std::thread::sleep(Duration::from_millis(200));
            h
        })
        .collect();

    // Queue is now full: the next job must be rejected immediately.
    let t0 = std::time::Instant::now();
    match call(addr, &Request::Sleep { ms: 10 }).expect("busy call") {
        Response::Error { code, message } => {
            assert_eq!(code, 503);
            assert!(message.contains("busy"), "{message}");
        }
        other => panic!("expected busy, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_millis(1000),
        "busy must not wait for the queue to drain"
    );
    assert!(status(addr).counters.busy_rejections >= 1);

    // The admitted jobs still complete normally.
    for s in sleepers {
        match s.join().expect("sleeper").expect("response") {
            Response::Slept { ms } => assert_eq!(ms, 1500),
            other => panic!("wrong response {other:?}"),
        }
    }
    shutdown(addr, handle);
}

#[test]
fn shutdown_drains_admitted_jobs() {
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServerConfig::default()
    });

    // A job the worker is busy with when shutdown arrives…
    let in_flight = std::thread::spawn(move || call(addr, &Request::Sleep { ms: 800 }));
    std::thread::sleep(Duration::from_millis(150));
    // …and one sitting in the queue behind it.
    let queued = std::thread::spawn(move || call(addr, &Request::Sleep { ms: 10 }));
    std::thread::sleep(Duration::from_millis(50));

    let final_counters = shutdown(addr, handle); // returns only after the drain
    assert_eq!(
        final_counters.jobs_executed, 2,
        "both admitted jobs ran to completion"
    );

    match in_flight.join().expect("join").expect("in-flight response") {
        Response::Slept { ms } => assert_eq!(ms, 800),
        other => panic!("in-flight job lost: {other:?}"),
    }
    match queued.join().expect("join").expect("queued response") {
        Response::Slept { ms } => assert_eq!(ms, 10),
        other => panic!("queued job lost: {other:?}"),
    }

    // And the server is really gone.
    assert!(call(addr, &Request::Status).is_err());
}

#[test]
fn protocol_errors_over_the_wire() {
    use std::io::{BufRead, BufReader, Write};

    let (addr, handle) = start(ServerConfig::default());

    // Raw garbage line → 400 with a parse message, connection stays open.
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream.write_all(b"this is not json\n").expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"ok\":false"), "{line}");
    assert!(line.contains("\"code\":400"), "{line}");

    // The same connection still serves valid requests afterwards.
    stream
        .write_all((Request::Status.to_line() + "\n").as_bytes())
        .expect("write");
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"op\":\"status\""), "{line}");

    // Unknown device and bad QASM surface as 400s, not hangs.
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let bad_device = Request::Submit(SubmitRequest {
        device: "tokyo".into(),
        qasm: qasm_5q(),
        policy: PolicyKind::Baseline,
        shots: 10,
        seed: 1,
        expected: None,
        deadline_ms: None,
        fwd: false,
    });
    match client.request(&bad_device).expect("response") {
        Response::Error { code, message } => {
            assert_eq!(code, 400);
            assert!(message.contains("unknown device"), "{message}");
        }
        other => panic!("wrong response {other:?}"),
    }
    let bad_qasm = Request::Submit(SubmitRequest {
        device: "ibmqx4".into(),
        qasm: "definitely not qasm".into(),
        policy: PolicyKind::Baseline,
        shots: 10,
        seed: 1,
        expected: None,
        deadline_ms: None,
        fwd: false,
    });
    match client.request(&bad_qasm).expect("response") {
        Response::Error { code, message } => {
            assert_eq!(code, 400);
            assert!(message.contains("bad qasm"), "{message}");
        }
        other => panic!("wrong response {other:?}"),
    }

    shutdown(addr, handle);
}
