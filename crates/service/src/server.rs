//! The long-running mitigation server.
//!
//! Two front ends share one worker pool and one protocol implementation:
//!
//! * the **event-loop front end** (default) runs every connection on a
//!   single readiness-driven thread: a [`crate::poll::Poller`] multiplexes
//!   the nonblocking listener, a worker-completion [`crate::poll::Waker`],
//!   and every client socket; [`crate::conn::Conn`] state machines parse
//!   newline-delimited frames incrementally and buffer responses through
//!   reusable write buffers, so thousands of idle connections cost a few
//!   KB each instead of a thread each;
//! * the **thread-per-connection front end** (`event_loop: false`) is the
//!   original blocking design, kept as the benchmark baseline and as a
//!   portability fallback.
//!
//! In both, cheap requests (`status`, `health`, `set-window`, `shutdown`)
//! are answered inline while expensive ones (`submit`, `characterize`,
//! `sleep`, and — on clustered nodes, where it broadcasts to the mesh —
//! `set-window`) become jobs on the sharded run queue
//! ([`crate::queue::ShardedQueue`], hashed by connection, drained with
//! work stealing). The queue is the only buffer: when it is full the
//! request is answered `503 busy` immediately instead of queueing
//! unbounded memory.
//!
//! Resilience (see `DESIGN.md` §12):
//!
//! * **idle reaper** — a client that hangs without completing a request is
//!   closed (counted in `connections_reaped`) without ever consuming a
//!   worker. The threaded front end uses socket read timeouts; the event
//!   loop folds the same deadline into its poll timeout, so a reap costs a
//!   timer wakeup instead of a blocked thread;
//! * **deadlines** — a `submit` carrying `deadline_ms` that is still
//!   queued when the deadline passes is answered `504` at dequeue, again
//!   without consuming worker time;
//! * **panic isolation** — a panicking job answers `500` and the worker
//!   thread survives at full pool strength;
//! * **retry + breaker** — transient characterization failures retry with
//!   deterministic backoff, and a repeatedly failing device's circuit
//!   breaker serves the last good profile with `degraded: true` (see
//!   [`crate::cache::ProfileCache`]);
//! * **fault injection** — every failure path above is rehearsed by
//!   scripting an [`invmeas_faults::FaultPlan`] into
//!   [`ServerConfig::faults`]; production uses the free
//!   [`invmeas_faults::NoFaults`] default.
//!
//! Graceful shutdown: a `shutdown` request is acknowledged, the server
//! stops accepting work (new jobs get `503`), the queue is closed, workers
//! finish every job admitted before the close, and [`Server::serve`]
//! returns after joining them. The event loop additionally flushes every
//! buffered response byte before returning.

use crate::breaker::{BreakerConfig, RetryPolicy};
use crate::cache::{CacheConfig, CacheError, ProfileCache};
use crate::client;
use crate::cluster::{ClusterConfig, HashRing};
use crate::conn::{Conn, FlushOutcome, ReadOutcome};
use crate::membership::Membership;
use crate::net::NetFabric;
use crate::overload::{DialGate, RetryBudget};
use crate::poll::{Interest, PollEvent, Poller, Waker};
use crate::protocol::{
    CacheOutcome, CharacterizeRequest, CharacterizeResponse, ClusterMapResponse, HealthResponse,
    MethodKind, PolicyKind, ReplicateRequest, Request, Response, RouteInfo, StatusResponse,
    SubmitRequest, SubmitResponse,
};
use crate::queue::{PushError, ShardedQueue, ShedClass};
use crate::replicate::MeshReplicator;
use invmeas::{PolicyChoice, Runner};
use invmeas_faults::{Fault, FaultInjector, FaultSite, NetFaultPlan, NoFaults};
use qmetrics::{CorrectSet, ReliabilityReport, ServiceCounters};
use qnoise::{CalibrationDrift, DeviceModel};
use qsim::BitString;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Server configuration. The defaults favour test determinism over raw
/// throughput; a production deployment raises `workers` and
/// `queue_capacity`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker-pool size.
    pub workers: usize,
    /// Bounded job-queue capacity (jobs beyond this get `503 busy`).
    pub queue_capacity: usize,
    /// Serve with the readiness-driven event loop (default) or fall back
    /// to the thread-per-connection front end (the benchmark baseline).
    pub event_loop: bool,
    /// Run-queue shards, hashed by connection id and drained with work
    /// stealing; `0` picks `min(workers, 8)`. The capacity above stays
    /// global regardless of shard count.
    pub queue_shards: usize,
    /// Executor threads per job (keep small: jobs already run in parallel).
    pub exec_threads: usize,
    /// Default characterization budget when a request does not name one.
    pub profile_shots: u64,
    /// Characterization RNG seed (request seeds never reach the cache, so
    /// concurrent bursts converge on one profile) — see
    /// [`crate::cache::ProfileCache`].
    pub profile_seed: u64,
    /// Per-window calibration-drift amplitude (0 disables drift).
    pub drift_amplitude: f64,
    /// Drift RNG seed.
    pub drift_seed: u64,
    /// Cache invalidation threshold on [`qnoise::drift_score`].
    pub drift_threshold: f64,
    /// Optional profile persistence directory.
    pub profile_dir: Option<PathBuf>,
    /// Upper bound honoured for `sleep` requests.
    pub max_sleep_ms: u64,
    /// Idle timeout per connection in milliseconds; a client idle (or
    /// hung mid-frame) past this is reaped. 0 disables the reaper.
    pub idle_timeout_ms: u64,
    /// Write timeout per connection in milliseconds (0 disables) — bounds
    /// the damage of a client that stops draining its socket.
    pub write_timeout_ms: u64,
    /// Retries after a transient characterization failure.
    pub retry_limit: u32,
    /// Base backoff between retries in milliseconds (0 = no waiting).
    pub retry_backoff_ms: u64,
    /// Consecutive characterization failures that open a device's breaker.
    pub breaker_failure_threshold: u32,
    /// Consecutive drift-threshold trips that open a device's breaker.
    pub breaker_drift_trips: u32,
    /// Degraded serves while open before a half-open probe.
    pub breaker_cooldown: u32,
    /// Fault injector threaded through workers, characterization, profile
    /// I/O, and execution. Production leaves the [`NoFaults`] default.
    pub faults: Arc<dyn FaultInjector>,
    /// Profile-mesh clustering (see `DESIGN.md` §16). `None` — the
    /// default — keeps this node byte-compatible single-node behaviour:
    /// no heartbeats, no replication, no routing, no new wire traffic.
    pub cluster: Option<ClusterConfig>,
    /// Deterministic network fault script (see `DESIGN.md` §17) applied
    /// to every socket this node dials *and* accepts. `None` — the
    /// default — is a zero-cost pass-through.
    pub net_faults: Option<Arc<NetFaultPlan>>,
    /// Retry-budget bucket capacity, in whole retry tokens. The budget
    /// is shared by every retry path on the node: cache characterization
    /// retries, forward-ladder failovers, and replication redials.
    pub retry_budget_tokens: u64,
    /// Milli-tokens (1/1000ths of a retry) refilled into the budget per
    /// request arrival. The default `100` couples total retries to ~10%
    /// of the request rate.
    pub retry_budget_refill_milli: u64,
    /// Base per-peer dial backoff after a failed peer call, in
    /// milliseconds (clustered nodes only).
    pub dial_backoff_base_ms: u64,
    /// Cap on the per-peer exponential dial backoff, in milliseconds.
    pub dial_backoff_cap_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 32,
            event_loop: true,
            queue_shards: 0,
            exec_threads: 1,
            profile_shots: 2048,
            profile_seed: 2019,
            drift_amplitude: 0.05,
            drift_seed: 0x1b3_5de7,
            drift_threshold: 0.0,
            profile_dir: None,
            max_sleep_ms: 5_000,
            idle_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            retry_limit: 2,
            retry_backoff_ms: 25,
            breaker_failure_threshold: 3,
            breaker_drift_trips: 4,
            breaker_cooldown: 4,
            faults: Arc::new(NoFaults),
            cluster: None,
            net_faults: None,
            retry_budget_tokens: 10,
            retry_budget_refill_milli: 100,
            dial_backoff_base_ms: 50,
            dial_backoff_cap_ms: 2_000,
        }
    }
}

impl ServerConfig {
    /// Effective shard count (`queue_shards`, with `0` resolved).
    fn effective_shards(&self) -> usize {
        if self.queue_shards == 0 {
            self.workers.clamp(1, 8)
        } else {
            self.queue_shards
        }
    }
}

/// Where a finished job's response goes.
enum Reply {
    /// Threaded front end: a handler thread blocks on this channel.
    Channel(mpsc::Sender<Response>),
    /// Event-loop front end: the worker serializes the response (off the
    /// loop thread), queues it for `(conn, seq)`, and wakes the loop.
    Loop {
        conn: u64,
        seq: u64,
        completions: Arc<Completions>,
    },
}

impl Reply {
    fn send(self, response: Response) {
        match self {
            // The handler may have disconnected; that only loses the reply.
            Reply::Channel(tx) => {
                let _ = tx.send(response);
            }
            Reply::Loop {
                conn,
                seq,
                completions,
            } => {
                let line = response.to_line();
                completions.done.lock().unwrap().push((conn, seq, line));
                completions.waker.wake();
            }
        }
    }
}

/// Finished-job mailbox shared by the workers and the event loop.
struct Completions {
    /// `(connection token, response slot, serialized line)`.
    done: Mutex<Vec<(u64, u64, String)>>,
    waker: Waker,
}

struct Job {
    kind: JobKind,
    respond: Reply,
    enqueued: Instant,
    /// Queue-time budget: expired jobs answer `504` at dequeue.
    deadline: Option<Duration>,
}

enum JobKind {
    Submit(SubmitRequest),
    Characterize(CharacterizeRequest),
    Sleep {
        ms: u64,
    },
    /// A replica push from a peer — queued (not inline) because a corrupt
    /// payload triggers a synchronous clean-copy re-fetch over the wire,
    /// which must not stall the event loop.
    Replicate(ReplicateRequest),
    /// A client's window change on a *clustered* node — queued (not
    /// inline) because it broadcasts to every peer before answering,
    /// which must not stall the event loop. Single-node servers (and
    /// peer-broadcast deliveries) still answer inline.
    SetWindow {
        window: u64,
    },
}

/// Shedding class of a queued job (see [`ShardedQueue::try_push_or_shed`]):
/// mesh control traffic (replica installs, window broadcasts) is never
/// shed — losing it desynchronizes the mesh — while client work
/// (submit, characterize, sleep) competes for capacity and carries its
/// queue-time deadline so the earliest-impossible job is evicted first.
fn job_class(job: &Job) -> ShedClass {
    match &job.kind {
        JobKind::Replicate(_) | JobKind::SetWindow { .. } => ShedClass::Control,
        JobKind::Submit(_) | JobKind::Characterize(_) | JobKind::Sleep { .. } => ShedClass::Work {
            deadline: job.deadline.map(|d| job.enqueued + d),
        },
    }
}

/// Answers a job evicted by priority shedding: a `504`, exactly what the
/// job would have received at dequeue, just earlier — its deadline was
/// already impossible when a new job needed the slot.
fn answer_shed(state: &State, victim: Job) {
    state.counters.inc_requests_shed();
    victim.respond.send(Response::deadline_exceeded(
        "shed while queued: deadline already impossible at admission of newer work",
    ));
}

/// Everything a clustered node knows about the mesh.
struct ClusterState {
    config: ClusterConfig,
    ring: HashRing,
    membership: Arc<Membership>,
}

/// How long a node-to-node *control* call (re-fetch, set-window
/// broadcast) may take — connect included — before the caller gives up.
/// This also bounds the TCP connect of a forwarded work request: a
/// reachable peer accepts in milliseconds, so anything slower is treated
/// as dead rather than left to the OS SYN-retry window (~2 min).
const PEER_CALL_TIMEOUT: Duration = Duration::from_secs(5);

/// Upper bound on how long a forwarder waits for a *forwarded work
/// request* (characterize, AIM submit) to finish on its owner. Work
/// forwards must not use [`PEER_CALL_TIMEOUT`]: a characterization at
/// production shot counts legitimately runs far longer than any
/// transport timeout, and giving up on a slow-but-healthy owner would
/// duplicate the whole job locally — breaking the cluster-wide
/// single-flight invariant. A dead owner is still detected promptly:
/// its socket answers EOF/RST the moment it dies, and a *partitioned*
/// owner (no RST) is abandoned as soon as this node's membership view
/// declares it dead (the wait polls in heartbeat-interval slices). This
/// bound only backstops a peer that is alive, reachable, and wedged.
const FORWARD_WORK_TIMEOUT: Duration = Duration::from_secs(600);

struct State {
    config: ServerConfig,
    counters: Arc<ServiceCounters>,
    cache: ProfileCache,
    window: AtomicU64,
    draining: AtomicBool,
    queue: ShardedQueue<Job>,
    local_addr: SocketAddr,
    faults: Arc<dyn FaultInjector>,
    /// Connection ids for the threaded front end (shard hashing); the
    /// event loop uses poller tokens instead.
    conn_ids: AtomicU64,
    cluster: Option<ClusterState>,
    /// The transport every socket goes through — dials (peer calls,
    /// forwards, probes, replication) and accepts alike. Direct in
    /// production; armed with the scripted [`NetFaultPlan`] under chaos.
    net: NetFabric,
    /// The node-wide retry budget (see [`RetryBudget`]): refilled by
    /// request arrivals, spent by every retry path.
    retry_budget: Arc<RetryBudget>,
    /// Per-peer dial backoff, present only on clustered nodes.
    dial_gate: Option<Arc<DialGate>>,
}

/// A bound, not-yet-serving mitigation server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl std::fmt::Debug for State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("State")
            .field("local_addr", &self.local_addr)
            .field("window", &self.window.load(Ordering::Relaxed))
            .field("draining", &self.draining.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener (without serving yet).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        assert!(config.workers > 0, "need at least one worker");
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let counters = Arc::new(ServiceCounters::new());
        let faults = Arc::clone(&config.faults);
        let cluster = match config.cluster.as_ref() {
            None => None,
            Some(cl) => {
                if config.profile_dir.is_none() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "clustering requires a profile directory \
                         (replication payloads are the persisted profile text)",
                    ));
                }
                Some(ClusterState {
                    config: cl.clone(),
                    ring: HashRing::new(&cl.members),
                    membership: Arc::new(Membership::new(
                        cl.members.len(),
                        cl.self_index,
                        cl.heartbeat_miss_limit,
                    )),
                })
            }
        };
        // The fault fabric names this node `n<self_index>` and its peers
        // `n0..nK` in cluster-index order (the `netfaults v1` naming
        // convention); a single-node server is `n0`. With no plan the
        // fabric is a pass-through.
        let net = match config.cluster.as_ref() {
            Some(cl) => {
                let names = cl
                    .members
                    .iter()
                    .enumerate()
                    .filter_map(|(i, m)| {
                        let addr = m.to_socket_addrs().ok()?.next()?;
                        Some((addr, format!("n{i}")))
                    })
                    .collect();
                NetFabric::new(
                    format!("n{}", cl.self_index),
                    names,
                    config.net_faults.clone(),
                )
            }
            None => NetFabric::new("n0", Vec::new(), config.net_faults.clone()),
        };
        let retry_budget = Arc::new(RetryBudget::new(
            config.retry_budget_tokens,
            config.retry_budget_refill_milli,
        ));
        let dial_gate = config.cluster.as_ref().map(|cl| {
            Arc::new(DialGate::new(
                cl.members.len(),
                Duration::from_millis(config.dial_backoff_base_ms),
                Duration::from_millis(config.dial_backoff_cap_ms.max(1)),
                config.profile_seed,
            ))
        });
        let mut cache = ProfileCache::new(CacheConfig {
            profile_seed: config.profile_seed,
            drift_threshold: config.drift_threshold,
            exec_threads: config.exec_threads,
            profile_dir: config.profile_dir.clone(),
        })
        .with_counters(Arc::clone(&counters))
        .with_faults(Arc::clone(&faults))
        .with_retry(RetryPolicy {
            max_retries: config.retry_limit,
            base_backoff_ms: config.retry_backoff_ms,
        })
        .with_breaker(BreakerConfig {
            failure_threshold: config.breaker_failure_threshold,
            drift_trip_threshold: config.breaker_drift_trips,
            cooldown: config.breaker_cooldown,
        })
        .with_retry_budget(Arc::clone(&retry_budget));
        if let Some(cl) = cluster.as_ref() {
            cache = cache.with_replicator(Arc::new(
                MeshReplicator::new(
                    cl.config.members.clone(),
                    cl.config.self_index,
                    cl.config.effective_replication(),
                    Arc::clone(&cl.membership),
                    Arc::clone(&faults),
                )
                .with_fabric(net.clone())
                .with_retry_budget(Arc::clone(&retry_budget)),
            ));
        }
        let queue = ShardedQueue::new(config.queue_capacity, config.effective_shards());
        Ok(Server {
            listener,
            state: Arc::new(State {
                config,
                counters,
                cache,
                window: AtomicU64::new(0),
                draining: AtomicBool::new(false),
                queue,
                local_addr,
                faults,
                conn_ids: AtomicU64::new(1),
                cluster,
                net,
                retry_budget,
                dial_gate,
            }),
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Serves until a `shutdown` request completes its drain. Blocks the
    /// calling thread and returns the final counter values.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the front end.
    pub fn serve(self) -> std::io::Result<qmetrics::CountersSnapshot> {
        let workers: Vec<_> = (0..self.state.config.workers)
            .map(|i| {
                let state = Arc::clone(&self.state);
                std::thread::Builder::new()
                    .name(format!("invmeas-worker-{i}"))
                    .spawn(move || worker_loop(&state, i))
                    .expect("spawn worker")
            })
            .collect();

        let heartbeat = self.state.cluster.is_some().then(|| {
            let state = Arc::clone(&self.state);
            std::thread::Builder::new()
                .name("invmeas-heartbeat".into())
                .spawn(move || heartbeat_loop(&state))
                .expect("spawn heartbeat")
        });

        let served = if self.state.config.event_loop {
            serve_event_loop(&self.listener, &self.state)
        } else {
            serve_threaded(&self.listener, &self.state);
            Ok(())
        };

        // Drain: no new jobs are admitted (front ends see `draining`), the
        // queue closes, and workers finish everything already accepted.
        self.state.queue.close();
        for w in workers {
            let _ = w.join();
        }
        if let Some(h) = heartbeat {
            let _ = h.join();
        }
        served?;
        self.state
            .counters
            .set_faults_injected(self.state.faults.injected());
        self.state
            .counters
            .set_invariant_clamps(invmeas::validate::invariant_clamps());
        self.state
            .counters
            .set_queue_steals(self.state.queue.steals());
        mirror_simulator_gauges(&self.state.counters);
        mirror_overload_gauges(&self.state);
        Ok(self.state.counters.snapshot())
    }
}

/// Copies the overload-control and fault-fabric tallies (owned by the
/// retry budget, the dial gate, and the net-fault plan) into the counter
/// bundle, so every snapshot carries them.
fn mirror_overload_gauges(state: &State) {
    state
        .counters
        .set_retry_budget_exhausted(state.retry_budget.exhausted());
    if let Some(gate) = state.dial_gate.as_ref() {
        state.counters.set_peer_dials_suppressed(gate.suppressed());
    }
    if let Some(plan) = state.net.plan() {
        state.counters.set_net_faults_injected(plan.injected());
        state
            .counters
            .set_partitions_healed(plan.partitions_healed());
    }
}

/// Copies the simulator-owned gauges (worker-pool tasks, barrier episodes,
/// arena reuse) into the service counter bundle, so a single snapshot
/// carries them alongside the request counters.
fn mirror_simulator_gauges(counters: &qmetrics::ServiceCounters) {
    counters.set_pool_tasks(qsim::pool::pool_tasks());
    counters.set_barrier_waits(qsim::pool::barrier_waits());
    counters.set_arena_reuse_hits(qsim::arena::arena_reuse_hits());
}

fn initiate_shutdown(state: &State) {
    if !state.draining.swap(true, Ordering::SeqCst) {
        // Stop admitting jobs; workers drain what was already accepted.
        state.queue.close();
        // Unblock a threaded accept loop with a throwaway connection (the
        // event loop just sees one more accept it drops while draining).
        let _ = TcpStream::connect(state.local_addr);
    }
}

// ---------------------------------------------------------------------------
// Thread-per-connection front end (benchmark baseline)
// ---------------------------------------------------------------------------

fn serve_threaded(listener: &TcpListener, state: &Arc<State>) {
    for stream in listener.incoming() {
        if state.draining.load(Ordering::SeqCst) {
            break; // the wake connection that unblocked accept
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue, // transient accept failure
        };
        // The fault fabric can refuse the accept (scripted `in → self`
        // refusal): the socket is dropped, the dialer sees a vanished
        // peer.
        let Some(stream) = state.net.wrap_accepted(stream) else {
            continue;
        };
        let state = Arc::clone(state);
        let _ = std::thread::Builder::new()
            .name("invmeas-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &state);
            });
    }
}

/// Whether a read error is the idle timeout firing (spelled `WouldBlock`
/// on unix, `TimedOut` on windows) rather than a real failure.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn handle_connection(stream: crate::net::NetStream, state: &State) -> std::io::Result<()> {
    let conn_id = state.conn_ids.fetch_add(1, Ordering::Relaxed);
    if state.config.idle_timeout_ms > 0 {
        stream.set_read_timeout(Some(Duration::from_millis(state.config.idle_timeout_ms)))?;
    }
    if state.config.write_timeout_ms > 0 {
        stream.set_write_timeout(Some(Duration::from_millis(state.config.write_timeout_ms)))?;
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // clean EOF
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                // The reaper: this client sat idle (or hung mid-line) past
                // the timeout without a completed request in flight —
                // close it without ever having consumed a worker.
                state.counters.inc_connection_reaped();
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        if line.trim().is_empty() {
            continue;
        }
        state.counters.inc_requests();
        state.counters.add_frames_parsed(1);
        state.retry_budget.note_request();
        let (response, shutdown_after) = match Request::from_line(&line) {
            Err(e) => (Response::bad_request(e.to_string()), false),
            Ok(Request::Shutdown) => (Response::Shutdown, true),
            Ok(req) => (handle_request(state, req, conn_id), false),
        };
        writer.write_all(response.to_line().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown_after {
            initiate_shutdown(state);
        }
    }
}

fn handle_request(state: &State, request: Request, conn_id: u64) -> Response {
    match request {
        Request::Status => status_response(state),
        Request::Health => health_response(state),
        Request::SetWindow { window, fwd } => {
            if !fwd && state.cluster.is_some() {
                enqueue_and_wait(state, JobKind::SetWindow { window }, None, conn_id)
            } else {
                set_window_response(state, window)
            }
        }
        Request::ClusterMap { device } => cluster_map_response(state, device.as_deref()),
        Request::FetchProfile {
            device,
            method,
            window,
        } => fetch_profile_response(state, &device, method, window),
        Request::Submit(r) => {
            let deadline = r.deadline_ms.map(Duration::from_millis);
            enqueue_and_wait(state, JobKind::Submit(r), deadline, conn_id)
        }
        Request::Characterize(r) => {
            enqueue_and_wait(state, JobKind::Characterize(r), None, conn_id)
        }
        Request::Replicate(r) => enqueue_and_wait(state, JobKind::Replicate(r), None, conn_id),
        Request::Sleep { ms } => enqueue_and_wait(state, JobKind::Sleep { ms }, None, conn_id),
        Request::Shutdown => unreachable!("handled by the connection loop"),
    }
}

fn enqueue_and_wait(
    state: &State,
    kind: JobKind,
    deadline: Option<Duration>,
    conn_id: u64,
) -> Response {
    if state.draining.load(Ordering::SeqCst) {
        return Response::busy("busy: server is shutting down");
    }
    let (respond, receive) = mpsc::channel();
    let job = Job {
        kind,
        respond: Reply::Channel(respond),
        enqueued: Instant::now(),
        deadline,
    };
    match state
        .queue
        .try_push_or_shed(conn_id, job, Instant::now(), job_class)
    {
        Ok((receipt, victim)) => {
            if let Some(v) = victim {
                answer_shed(state, v);
            }
            state.counters.observe_queue_depth(receipt.depth as u64);
            state
                .counters
                .observe_shard_depth(receipt.shard_depth as u64);
            receive
                .recv()
                .unwrap_or_else(|_| Response::failed("worker dropped the job"))
        }
        Err(PushError::Full(_)) => {
            state.counters.inc_busy_rejection();
            Response::busy("busy: queue is full")
        }
        Err(PushError::Closed(_)) => Response::busy("busy: server is shutting down"),
    }
}

// ---------------------------------------------------------------------------
// Cheap requests (shared by both front ends)
// ---------------------------------------------------------------------------

fn status_response(state: &State) -> Response {
    state.counters.set_faults_injected(state.faults.injected());
    state
        .counters
        .set_invariant_clamps(invmeas::validate::invariant_clamps());
    state.counters.set_queue_steals(state.queue.steals());
    mirror_simulator_gauges(&state.counters);
    mirror_overload_gauges(state);
    Response::Status(StatusResponse {
        window: state.window.load(Ordering::SeqCst),
        workers: state.config.workers as u64,
        queue_depth: state.queue.depth() as u64,
        queue_capacity: state.queue.capacity() as u64,
        draining: state.draining.load(Ordering::SeqCst),
        counters: state.counters.snapshot(),
    })
}

fn health_response(state: &State) -> Response {
    let window = state.window.load(Ordering::SeqCst);
    let health = state.cache.health(window);
    let draining = state.draining.load(Ordering::SeqCst);
    Response::Health(HealthResponse {
        degraded: health.open_breakers > 0 || draining,
        queue_depth: state.queue.depth() as u64,
        open_breakers: health.open_breakers,
        cache_entries: health.entries,
        cache_age_windows: health.oldest_age_windows,
    })
}

fn set_window_response(state: &State, window: u64) -> Response {
    state.window.store(window, Ordering::SeqCst);
    Response::Window { window }
}

/// Applies a window change on a clustered node: locally first, then
/// broadcast to every *alive* peer (marked `fwd` so nobody re-broadcasts)
/// before the client sees the acknowledgement. Without the broadcast the
/// mesh diverges silently: forwarded submits/characterizes execute under
/// the *owner's* window, so a client that set the window on its seed node
/// and then submitted a routed device would get results for the old
/// window with no error. Best effort per peer — a peer that is dead (or
/// unreachable within [`PEER_CALL_TIMEOUT`]) is skipped and will serve
/// its stale window until the next broadcast reaches it; operators drive
/// `set-window` once per calibration window, so the divergence window is
/// one calibration cycle at worst, and `cluster-map` exposes liveness to
/// make the skip observable.
fn execute_set_window(state: &State, window: u64) -> Response {
    let response = set_window_response(state, window);
    if let Some(cl) = state.cluster.as_ref() {
        for peer in 0..cl.config.members.len() {
            if peer == cl.config.self_index || !cl.membership.is_alive(peer) {
                continue;
            }
            let _ = peer_call(
                &state.net,
                &cl.config.members[peer],
                &Request::SetWindow { window, fwd: true },
            );
        }
    }
    response
}

// ---------------------------------------------------------------------------
// Profile mesh (see DESIGN.md §16)
// ---------------------------------------------------------------------------

fn cluster_map_response(state: &State, device: Option<&str>) -> Response {
    let Some(cl) = state.cluster.as_ref() else {
        return Response::bad_request("this server is not clustered");
    };
    let route = device.map(|d| {
        let r = cl.ring.route(d, cl.config.effective_replication());
        RouteInfo {
            device: d.to_string(),
            owner: r.owner as u64,
            followers: r.followers.iter().map(|f| *f as u64).collect(),
        }
    });
    Response::ClusterMap(ClusterMapResponse {
        members: cl.config.members.clone(),
        alive: cl.membership.snapshot(),
        self_index: cl.config.self_index as u64,
        route,
    })
}

fn fetch_profile_response(
    state: &State,
    device: &str,
    method: MethodKind,
    window: u64,
) -> Response {
    match state.cache.read_profile_text(device, method, window) {
        Some(profile) => Response::Profile {
            device: device.to_string(),
            method,
            window,
            profile,
        },
        None => Response::Error {
            code: 404,
            message: format!(
                "no persisted profile for {device:?} {} w{window}",
                method.as_str()
            ),
        },
    }
}

fn execute_replicate(state: &State, r: &ReplicateRequest) -> Response {
    let Some(cl) = state.cluster.as_ref() else {
        return Response::bad_request("this server is not clustered");
    };
    let from = r.from as usize;
    if from < cl.config.members.len() {
        // A replica is proof of life for its sender.
        cl.membership.mark_seen(from);
    }
    let mut accepted = true;
    let mut refetched = false;
    if let Some(journal) = &r.journal {
        // A journal replica that fails verification is just dropped:
        // the next checkpoint ships the whole file again, so the stream
        // self-heals without a re-fetch.
        if state
            .cache
            .install_replica_journal(&r.device, r.method, r.window, journal)
            .is_err()
        {
            accepted = false;
        }
    }
    if let Some(profile) = &r.profile {
        match state
            .cache
            .install_replica_profile(&r.device, r.method, r.window, profile)
        {
            Ok(()) => {}
            Err(_) => {
                // Checksum (or I/O) rejection. Nothing local is suspect —
                // the wire copy failed — so nothing is quarantined; pull
                // a clean copy from the sender instead.
                accepted = false;
                if from < cl.config.members.len() && from != cl.config.self_index {
                    if let Some(text) =
                        fetch_profile_from(state, cl, from, &r.device, r.method, r.window)
                    {
                        refetched = state
                            .cache
                            .install_replica_profile(&r.device, r.method, r.window, &text)
                            .is_ok();
                    }
                }
            }
        }
    }
    Response::Replicated {
        accepted,
        refetched,
    }
}

/// Pulls the persisted profile text from a peer, best effort.
fn fetch_profile_from(
    state: &State,
    cl: &ClusterState,
    member: usize,
    device: &str,
    method: MethodKind,
    window: u64,
) -> Option<String> {
    let response = peer_call(
        &state.net,
        &cl.config.members[member],
        &Request::FetchProfile {
            device: device.to_string(),
            method,
            window,
        },
    )
    .ok()?;
    match response {
        Response::Profile { profile, .. } => Some(profile),
        _ => None,
    }
}

/// One bounded node-to-node control call: connect, send, and receive all
/// complete within [`PEER_CALL_TIMEOUT`] (a partitioned peer costs one
/// timeout, never a worker pinned for minutes).
fn peer_call(
    net: &NetFabric,
    addr: &str,
    request: &Request,
) -> Result<Response, client::ClientError> {
    let mut c = client::Client::connect_via(net, addr, Some(PEER_CALL_TIMEOUT))?;
    c.request(request)
}

/// One forwarded *work* call: the connect is bounded tightly (a live
/// peer accepts instantly), but the response wait is generous — polled
/// in heartbeat-interval slices so the wait aborts the moment this
/// node's membership view declares the peer dead, and capped by
/// [`FORWARD_WORK_TIMEOUT`] against a wedged-but-alive peer.
fn forward_call(
    state: &State,
    cl: &ClusterState,
    member: usize,
    request: &Request,
) -> Result<Response, client::ClientError> {
    let mut c = client::Client::connect_via(
        &state.net,
        cl.config.members[member].as_str(),
        Some(PEER_CALL_TIMEOUT),
    )?;
    c.send(request)?;
    let slice =
        Duration::from_millis(cl.config.heartbeat_ms.max(10)).max(Duration::from_millis(250));
    c.set_timeout(Some(slice))?;
    let started = Instant::now();
    loop {
        match c.recv_resumable() {
            Err(client::ClientError::Io(e)) if is_timeout(&e) => {
                if !cl.membership.is_alive(member) || started.elapsed() >= FORWARD_WORK_TIMEOUT {
                    return Err(client::ClientError::Io(e));
                }
                // Peer still alive by heartbeat: the job is just slow.
                // Keep waiting — failing over now would run it twice.
            }
            other => return other,
        }
    }
}

/// Where a profile-needing request for `device` should run.
enum RouteDecision {
    /// Serve from this node's cache/disk; `failover` marks a serve this
    /// node is only doing because the nodes ahead of it on the ladder
    /// are dead.
    Local { failover: bool },
    /// Forward down this ladder of *alive* candidates (best first, all
    /// ahead of this node); the walker falls down the rungs under dial
    /// gate and retry-budget control.
    Forward(Vec<usize>),
}

/// Routing policy: the hash-owner serves; everyone else forwards to the
/// first *alive* node on the device's ladder (owner, then followers in
/// ring order), keeping the rest of the alive ladder as fallback rungs;
/// a node that finds itself first on that ladder promotes and serves
/// from its replicas. Forwarded requests (`fwd`) always serve locally —
/// one hop maximum, loops impossible.
fn route_request(state: &State, device: &str, fwd: bool) -> RouteDecision {
    let Some(cl) = state.cluster.as_ref() else {
        return RouteDecision::Local { failover: false };
    };
    if fwd {
        return RouteDecision::Local { failover: false };
    }
    let route = cl.ring.route(device, cl.config.effective_replication());
    let me = cl.config.self_index;
    if route.owner == me {
        return RouteDecision::Local { failover: false };
    }
    // Alive ladder nodes ahead of this one, in ladder order. The scan
    // stops at `me`: once every better-placed node is dead, serving our
    // own replica beats forwarding to a worse-placed one.
    let mut candidates = Vec::new();
    for m in route.ladder() {
        if m == me {
            break;
        }
        if cl.membership.is_alive(m) {
            candidates.push(m);
        }
    }
    if candidates.is_empty() {
        // This node is first on the alive ladder (or the entire ladder
        // looks dead, yet the request reached us): serving from
        // whatever we have beats refusing.
        return RouteDecision::Local { failover: true };
    }
    if !route.involves(me) {
        // A client with a current map would have sent this to the
        // ladder directly; its map (or its guess) was stale.
        state.counters.inc_stale_map_retry();
    }
    RouteDecision::Forward(candidates)
}

/// Whether a forwarded request's answer means the target could not serve
/// it (dead worker, open breaker with no last-good, drain) — in which
/// case the forwarder falls back to its own replicas. A `504` is *not*
/// unserved: it is the owner deliberately honouring the client's
/// queue-time deadline, and must reach the client unchanged — serving
/// the job locally after the deadline already passed would hand the
/// client a late success it explicitly asked not to receive.
fn is_unserved(response: &Response) -> bool {
    matches!(
        response,
        Response::Error {
            code: 500 | 503,
            ..
        }
    )
}

/// Walks the forward ladder under overload control; when every rung is
/// suppressed, exhausted, or unserved, promotes locally via `local`
/// (counted as a failover: the mesh served degraded data rather than
/// failing the client).
///
/// Two mechanisms bound what a degraded mesh can cost per request:
///
/// * the **dial gate** skips rungs still inside their per-peer backoff
///   hold-off, so a dead member is not redialed by every request;
/// * the **retry budget** charges every rung *after the first* — the
///   first forward rides on the request itself, each further rung is a
///   retry. A fully partitioned ladder therefore costs at most
///   `1 + available_tokens` dials, not `rungs` dials, per request.
fn forward_or_failover(
    state: &State,
    ladder: &[usize],
    request: Request,
    local: impl FnOnce() -> Response,
) -> Response {
    let cl = state.cluster.as_ref().expect("routed without a cluster");
    let gate = state.dial_gate.as_ref();
    let mut attempted = false;
    for &member in ladder {
        if let Some(g) = gate {
            if !g.allow(member) {
                continue; // held off: the gate counts the suppression
            }
        }
        if attempted && !state.retry_budget.try_spend() {
            break; // budget exhausted: no more rungs this request
        }
        attempted = true;
        match forward_call(state, cl, member, &request) {
            Ok(response) if !is_unserved(&response) => {
                if let Some(g) = gate {
                    g.record_success(member);
                }
                state.counters.inc_forward();
                return response;
            }
            Ok(_) => {
                // The peer answered: transport is healthy, it just could
                // not serve. Reset its backoff and fall down the ladder.
                if let Some(g) = gate {
                    g.record_success(member);
                }
            }
            Err(_) => {
                if let Some(g) = gate {
                    g.record_failure(member);
                }
            }
        }
    }
    state.counters.inc_failover();
    local()
}

/// Peer liveness: probes every peer each interval with an inline
/// `health` request. The `heartbeat` fault site can drop a probe
/// (`Error`) — a deterministic one-sided partition — or delay it.
///
/// The round is structured for determinism *and* boundedness:
///
/// 1. fault-site arrivals are consumed sequentially in peer order
///    before any socket moves, so a scripted plan sees exactly the
///    arrival numbering the old sequential loop produced;
/// 2. the probes themselves run on scoped threads, so one slow or
///    partitioned peer costs the round a single probe budget instead of
///    stretching it by the sum of every peer's timeout — with `k` dead
///    peers the sequential round took `k × budget`, long enough to blow
///    straight through the miss limit for *healthy* peers;
/// 3. membership updates apply in fixed peer order after every probe
///    returned, so the verdict sequence is independent of probe timing.
///
/// A peer transitioning dead → alive triggers a full profile re-ship:
/// it may have missed any number of replicas while unreachable, and the
/// re-ship is what re-converges its disk byte-identically after a
/// healed partition.
fn heartbeat_loop(state: &State) {
    let cl = state.cluster.as_ref().expect("heartbeat without a cluster");
    let interval = Duration::from_millis(cl.config.heartbeat_ms.max(10));
    let peers: Vec<usize> = (0..cl.config.members.len())
        .filter(|&p| p != cl.config.self_index)
        .collect();
    while !state.draining.load(Ordering::SeqCst) {
        let dropped: Vec<bool> = peers
            .iter()
            .map(|_| match state.faults.check(FaultSite::Heartbeat) {
                Some(Fault::Error(_)) => true,
                Some(f) => {
                    f.apply_latency();
                    false
                }
                None => false,
            })
            .collect();
        let answers: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = peers
                .iter()
                .zip(&dropped)
                .map(|(&peer, &dropped)| {
                    s.spawn(move || {
                        !dropped
                            && matches!(
                                probe_health(&state.net, &cl.config.members[peer], interval),
                                Some(Response::Health(_))
                            )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(false))
                .collect()
        });
        for (&peer, answered) in peers.iter().zip(answers) {
            if answered {
                if cl.membership.mark_seen(peer) {
                    state.cache.reship_profiles();
                }
            } else {
                state.counters.inc_heartbeat_missed();
                cl.membership.mark_missed(peer);
            }
        }
        // Sleep in small slices so a drain is noticed promptly.
        let mut slept = Duration::ZERO;
        while slept < interval && !state.draining.load(Ordering::SeqCst) {
            let chunk = (interval - slept).min(Duration::from_millis(50));
            std::thread::sleep(chunk);
            slept += chunk;
        }
    }
}

fn probe_health(net: &NetFabric, addr: &str, interval: Duration) -> Option<Response> {
    // The probe budget bounds the connect too: against a partitioned
    // peer a plain connect blocks for the OS SYN-retry window (~2 min),
    // which would stretch dead-peer detection from `miss_limit ×
    // interval` to `miss_limit × minutes` — the opposite of failover.
    let mut c =
        client::Client::connect_via(net, addr, Some(interval.max(Duration::from_millis(250))))
            .ok()?;
    c.request(&Request::Health).ok()
}

// ---------------------------------------------------------------------------
// Event-loop front end
// ---------------------------------------------------------------------------

/// Poller token of the listening socket.
const LISTENER_TOKEN: u64 = 0;
/// Poller token of the worker-completion waker.
const WAKER_TOKEN: u64 = 1;
/// First connection token (also the first shard-hash key).
const FIRST_CONN_TOKEN: u64 = 2;

/// Everything the event loop owns for its lifetime.
struct EventLoop<'a> {
    state: &'a Arc<State>,
    poller: Poller,
    completions: Arc<Completions>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Jobs dispatched for event-loop connections whose completions have
    /// not been applied yet — the drain-exit gate.
    outstanding: usize,
    scratch: Vec<u8>,
    /// Granularity of the reap scan, derived from the configured
    /// timeouts; `None` when both timeouts are disabled. Scanning every
    /// connection on every wakeup would be O(n) per event at tens of
    /// thousands of connections, so deadlines are only checked on this
    /// tick (a reap may therefore land up to one tick late).
    scan_tick: Option<Duration>,
    /// When the next reap scan is due.
    next_scan: Instant,
}

fn serve_event_loop(listener: &TcpListener, state: &Arc<State>) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let (waker, wake_rx) = Waker::new()?;
    poller.register(listener, LISTENER_TOKEN, Interest::READ)?;
    poller.register(&wake_rx, WAKER_TOKEN, Interest::READ)?;
    let scan_tick = {
        let timeouts = [state.config.idle_timeout_ms, state.config.write_timeout_ms];
        timeouts
            .iter()
            .filter(|&&ms| ms > 0)
            .min()
            .map(|&ms| Duration::from_millis((ms / 8).clamp(5, 250)))
    };
    let mut el = EventLoop {
        state,
        poller,
        completions: Arc::new(Completions {
            done: Mutex::new(Vec::new()),
            waker,
        }),
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        outstanding: 0,
        scratch: vec![0u8; 64 * 1024],
        scan_tick,
        next_scan: Instant::now() + scan_tick.unwrap_or(Duration::from_secs(3600)),
    };

    let mut events: Vec<PollEvent> = Vec::new();
    loop {
        let timeout = el.next_timer();
        el.poller.wait(&mut events, timeout)?;
        state.counters.inc_epoll_wakeup();
        let now = Instant::now();
        for ev in &events {
            match ev.token {
                LISTENER_TOKEN => el.accept_ready(listener, now),
                WAKER_TOKEN => wake_rx.drain(),
                token => el.conn_ready(token, ev.readable || ev.hangup, ev.writable, now),
            }
        }
        el.apply_completions(now);
        if let Some(tick) = el.scan_tick {
            if now >= el.next_scan {
                el.reap(now);
                el.next_scan = now + tick;
            }
        }
        if state.draining.load(Ordering::SeqCst)
            && el.outstanding == 0
            && el.conns.values().all(|c| !c.wants_write())
        {
            // Every admitted job has answered and every response byte is
            // on the wire: the drain is complete.
            return Ok(());
        }
    }
}

impl EventLoop<'_> {
    /// Accepts until the listener would block. While draining, accepted
    /// connections are dropped immediately (their requests would only be
    /// answered `busy` anyway).
    fn accept_ready(&mut self, listener: &TcpListener, now: Instant) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.state.draining.load(Ordering::SeqCst) {
                        continue;
                    }
                    // Scripted `in → self` refusal: drop the socket.
                    let Some(stream) = self.state.net.wrap_accepted(stream) else {
                        continue;
                    };
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    let conn = Conn::from_net(stream, token, now);
                    if self
                        .poller
                        .register(conn.stream(), token, Interest::READ)
                        .is_ok()
                    {
                        self.conns.insert(token, conn);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Per-connection accept failures (reset before accept,
                // out of fds): drop that connection, keep serving.
                Err(_) => break,
            }
        }
    }

    /// Services one connection's readiness: drain reads, parse and answer
    /// frames, flush writes, update interest, or close on error.
    fn conn_ready(&mut self, token: u64, readable: bool, writable: bool, now: Instant) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return; // already closed this iteration
        };
        let mut keep = true;
        if readable {
            match conn.fill(&mut self.scratch, now) {
                Ok(outcome) => {
                    let mut parsed = 0u64;
                    while let Some(frame) = conn.next_frame() {
                        parsed += 1;
                        self.process_frame(&mut conn, &frame, now);
                    }
                    self.state.counters.add_frames_parsed(parsed);
                    if outcome == ReadOutcome::Eof && conn.is_idle() {
                        keep = false; // clean EOF with nothing pending
                    }
                }
                Err(_) => keep = false,
            }
        }
        if keep && (writable || conn.wants_write()) {
            keep = self.flush_conn(&mut conn, now);
        }
        if keep {
            self.conns.insert(token, conn);
        } else {
            let _ = self.poller.deregister(conn.stream(), token);
        }
    }

    /// Parses and answers one frame. Cheap requests complete their
    /// response slot inline; expensive ones dispatch to the run queue and
    /// complete later via [`Completions`].
    fn process_frame(&mut self, conn: &mut Conn, frame: &[u8], now: Instant) {
        let line = String::from_utf8_lossy(frame);
        if line.trim().is_empty() {
            return; // blank keep-alives are not requests
        }
        let state = self.state;
        state.counters.inc_requests();
        state.retry_budget.note_request();
        let seq = conn.alloc_seq();
        let inline = match Request::from_line(&line) {
            Err(e) => Some(Response::bad_request(e.to_string())),
            Ok(Request::Shutdown) => {
                // Ack first so the ack is ordered before the drain.
                conn.complete(seq, Response::Shutdown.to_line(), now);
                initiate_shutdown(state);
                return;
            }
            Ok(Request::Status) => Some(status_response(state)),
            Ok(Request::Health) => Some(health_response(state)),
            Ok(Request::SetWindow { window, fwd }) => {
                if !fwd && state.cluster.is_some() {
                    // Clustered: the broadcast is wire I/O, so it runs on
                    // a worker instead of stalling the loop thread.
                    self.dispatch(conn, seq, JobKind::SetWindow { window }, None)
                } else {
                    Some(set_window_response(state, window))
                }
            }
            Ok(Request::ClusterMap { device }) => {
                Some(cluster_map_response(state, device.as_deref()))
            }
            Ok(Request::FetchProfile {
                device,
                method,
                window,
            }) => Some(fetch_profile_response(state, &device, method, window)),
            Ok(Request::Submit(r)) => {
                let deadline = r.deadline_ms.map(Duration::from_millis);
                self.dispatch(conn, seq, JobKind::Submit(r), deadline)
            }
            Ok(Request::Characterize(r)) => {
                self.dispatch(conn, seq, JobKind::Characterize(r), None)
            }
            Ok(Request::Replicate(r)) => self.dispatch(conn, seq, JobKind::Replicate(r), None),
            Ok(Request::Sleep { ms }) => self.dispatch(conn, seq, JobKind::Sleep { ms }, None),
        };
        if let Some(response) = inline {
            conn.complete(seq, response.to_line(), now);
        }
    }

    /// Hands a job to the run queue; `Some(response)` means it was
    /// rejected and must be answered inline.
    fn dispatch(
        &mut self,
        conn: &mut Conn,
        seq: u64,
        kind: JobKind,
        deadline: Option<Duration>,
    ) -> Option<Response> {
        let state = self.state;
        if state.draining.load(Ordering::SeqCst) {
            return Some(Response::busy("busy: server is shutting down"));
        }
        let job = Job {
            kind,
            respond: Reply::Loop {
                conn: conn.token(),
                seq,
                completions: Arc::clone(&self.completions),
            },
            enqueued: Instant::now(),
            deadline,
        };
        match state
            .queue
            .try_push_or_shed(conn.token(), job, Instant::now(), job_class)
        {
            Ok((receipt, victim)) => {
                if let Some(v) = victim {
                    // The victim's 504 flows back through the completion
                    // mailbox like any finished job, so its connection's
                    // inflight/outstanding accounting balances normally.
                    answer_shed(state, v);
                }
                state.counters.observe_queue_depth(receipt.depth as u64);
                state
                    .counters
                    .observe_shard_depth(receipt.shard_depth as u64);
                conn.inflight += 1;
                self.outstanding += 1;
                None
            }
            Err(PushError::Full(_)) => {
                state.counters.inc_busy_rejection();
                Some(Response::busy("busy: queue is full"))
            }
            Err(PushError::Closed(_)) => Some(Response::busy("busy: server is shutting down")),
        }
    }

    /// Flushes a connection's write buffer and keeps its poller interest
    /// in sync with whether bytes remain. Returns `false` to close.
    fn flush_conn(&mut self, conn: &mut Conn, now: Instant) -> bool {
        match conn.flush(now) {
            Ok(FlushOutcome::Flushed) => {
                if conn.watching_write {
                    conn.watching_write = false;
                    if self
                        .poller
                        .modify(conn.stream(), conn.token(), Interest::READ)
                        .is_err()
                    {
                        return false;
                    }
                }
                !(conn.close_after_flush || (conn.peer_closed && conn.is_idle()))
            }
            Ok(FlushOutcome::Pending) => {
                if !conn.watching_write {
                    // Entering backpressure: the socket refused bytes, so
                    // ask for writable-readiness to finish later.
                    self.state.counters.inc_write_backpressure_event();
                    conn.watching_write = true;
                    if self
                        .poller
                        .modify(conn.stream(), conn.token(), Interest::READ_WRITE)
                        .is_err()
                    {
                        return false;
                    }
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Applies worker completions to their connections and flushes the
    /// newly contiguous responses.
    fn apply_completions(&mut self, now: Instant) {
        let done = std::mem::take(&mut *self.completions.done.lock().unwrap());
        for (token, seq, line) in done {
            self.outstanding -= 1;
            let Some(mut conn) = self.conns.remove(&token) else {
                continue; // connection died while its job ran
            };
            conn.inflight -= 1;
            conn.complete(seq, line, now);
            if self.flush_conn(&mut conn, now) {
                self.conns.insert(token, conn);
            } else {
                let _ = self.poller.deregister(conn.stream(), token);
            }
        }
    }

    /// The poll timeout: time until the next reap-scan tick, or `None`
    /// (block until I/O) when timeouts are disabled or no connection is
    /// open. Per-connection deadlines are deliberately NOT scanned here —
    /// that would be O(n) on every wakeup; the coarse tick bounds the
    /// scan rate instead.
    fn next_timer(&self) -> Option<Duration> {
        if self.scan_tick.is_none() || self.conns.is_empty() {
            return None;
        }
        Some(self.next_scan.saturating_duration_since(Instant::now()))
    }

    /// The timer wheel's firing edge: closes idle connections past the
    /// idle timeout (counted in `connections_reaped`, exactly like the
    /// threaded reaper) and write-stalled connections past the write
    /// timeout (a socket error in the threaded design, so not counted).
    fn reap(&mut self, now: Instant) {
        let idle = Duration::from_millis(self.state.config.idle_timeout_ms);
        let stall = Duration::from_millis(self.state.config.write_timeout_ms);
        let mut dead: Vec<(u64, bool)> = Vec::new();
        for (token, conn) in &self.conns {
            if self.state.config.idle_timeout_ms > 0
                && conn.is_idle()
                && now.duration_since(conn.last_activity) >= idle
            {
                dead.push((*token, true));
            } else if self.state.config.write_timeout_ms > 0
                && conn.wants_write()
                && now.duration_since(conn.last_activity) >= stall
            {
                dead.push((*token, false));
            }
        }
        for (token, idle_reap) in dead {
            if idle_reap {
                self.state.counters.inc_connection_reaped();
            }
            if let Some(conn) = self.conns.remove(&token) {
                let _ = self.poller.deregister(conn.stream(), token);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool (shared by both front ends)
// ---------------------------------------------------------------------------

fn worker_loop(state: &State, worker: usize) {
    while let Some(job) = state.queue.pop(worker) {
        // Deadline check at dequeue: an expired job is answered without
        // consuming worker time, so one slow job cannot cascade 504s into
        // wasted execution for everything queued behind it.
        if let Some(deadline) = job.deadline {
            let waited = job.enqueued.elapsed();
            if waited > deadline {
                state.counters.inc_deadline_expiration();
                state.counters.inc_jobs_failed();
                job.respond.send(Response::deadline_exceeded(format!(
                    "deadline exceeded: waited {} ms in queue (budget {} ms)",
                    waited.as_millis(),
                    deadline.as_millis()
                )));
                continue;
            }
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // The worker fault site: one arrival per job picked up.
            if let Some(f) = state.faults.check(FaultSite::Worker) {
                f.apply_latency();
                match f {
                    Fault::Error(m) => return Response::failed(m),
                    Fault::Panic(m) => panic!("{m}"),
                    _ => {}
                }
            }
            execute_job(state, &job.kind, job.enqueued)
        }));
        let mut response =
            result.unwrap_or_else(|_| Response::failed("job panicked; see server log"));
        let latency_us = u64::try_from(job.enqueued.elapsed().as_micros()).unwrap_or(u64::MAX);
        state.counters.record_latency_us(latency_us);
        match &mut response {
            Response::Submit(r) => r.latency_us = latency_us,
            Response::Characterize(r) => r.latency_us = latency_us,
            _ => {}
        }
        if matches!(response, Response::Error { .. }) {
            state.counters.inc_jobs_failed();
        } else {
            state.counters.inc_jobs_executed();
        }
        job.respond.send(response);
    }
}

/// The device as calibrated in the current window.
fn snapshot_device(state: &State, name: &str, window: u64) -> Option<DeviceModel> {
    let nominal = DeviceModel::by_name(name)?;
    Some(
        CalibrationDrift::new(nominal, state.config.drift_amplitude)
            .with_seed(state.config.drift_seed)
            .window(window),
    )
}

fn count_cache_outcome(state: &State, outcome: CacheOutcome) {
    match outcome {
        CacheOutcome::Hit | CacheOutcome::DiskHit => state.counters.inc_cache_hit(),
        CacheOutcome::Miss => state.counters.inc_cache_miss(),
        // Stale serves are tracked in `degraded_responses` by the cache;
        // they are neither a hit (the entry was invalid) nor a miss (no
        // characterization ran).
        CacheOutcome::Stale | CacheOutcome::None => {}
    }
}

fn cache_error_response(e: CacheError) -> Response {
    match e {
        CacheError::Invalid(m) => Response::bad_request(m),
        CacheError::Unavailable(m) => Response::busy(m),
    }
}

fn execute_job(state: &State, kind: &JobKind, enqueued: Instant) -> Response {
    match kind {
        JobKind::Sleep { ms } => {
            let ms = (*ms).min(state.config.max_sleep_ms);
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Response::Slept { ms }
        }
        JobKind::Characterize(r) => execute_characterize(state, r),
        JobKind::Submit(r) => execute_submit(state, r, enqueued),
        JobKind::Replicate(r) => execute_replicate(state, r),
        JobKind::SetWindow { window } => execute_set_window(state, *window),
    }
}

fn execute_characterize(state: &State, r: &CharacterizeRequest) -> Response {
    match route_request(state, &r.device, r.fwd) {
        RouteDecision::Forward(ladder) => {
            let mut forwarded = r.clone();
            forwarded.fwd = true;
            forward_or_failover(state, &ladder, Request::Characterize(forwarded), || {
                characterize_local(state, r)
            })
        }
        RouteDecision::Local { failover } => {
            if failover {
                state.counters.inc_failover();
            }
            characterize_local(state, r)
        }
    }
}

fn characterize_local(state: &State, r: &CharacterizeRequest) -> Response {
    let window = state.window.load(Ordering::SeqCst);
    let Some(snapshot) = snapshot_device(state, &r.device, window) else {
        return Response::bad_request(format!("unknown device {:?}", r.device));
    };
    let shots = if r.shots == 0 {
        state.config.profile_shots
    } else {
        r.shots
    };
    match state
        .cache
        .get_or_measure(&r.device, &snapshot, window, r.method, shots)
    {
        Ok((table, outcome)) => {
            count_cache_outcome(state, outcome);
            Response::Characterize(CharacterizeResponse {
                device: r.device.clone(),
                window,
                method: r.method,
                width: table.width() as u64,
                trials: table.trials_used(),
                strongest: table.strongest_state().to_string(),
                weakest: table.weakest_state().to_string(),
                cache: outcome,
                latency_us: 0, // patched by the worker loop
                degraded: outcome == CacheOutcome::Stale,
            })
        }
        Err(e) => cache_error_response(e),
    }
}

fn execute_submit(state: &State, r: &SubmitRequest, enqueued: Instant) -> Response {
    // Only AIM consults a profile, so only AIM routes; baseline and SIM
    // jobs run wherever they land, clustered or not.
    if r.policy == PolicyKind::Aim {
        match route_request(state, &r.device, r.fwd) {
            RouteDecision::Forward(ladder) => {
                let mut forwarded = r.clone();
                forwarded.fwd = true;
                // The queue-time budget is end-to-end, not per-hop: spend
                // what this node's queue already consumed before handing
                // the remainder to the owner, so the total wait a client
                // can see never exceeds the deadline it asked for.
                if let Some(budget) = forwarded.deadline_ms {
                    let spent = u64::try_from(enqueued.elapsed().as_millis()).unwrap_or(u64::MAX);
                    forwarded.deadline_ms = Some(budget.saturating_sub(spent));
                }
                return forward_or_failover(state, &ladder, Request::Submit(forwarded), || {
                    submit_local(state, r)
                });
            }
            RouteDecision::Local { failover } => {
                if failover {
                    state.counters.inc_failover();
                }
            }
        }
    }
    submit_local(state, r)
}

fn submit_local(state: &State, r: &SubmitRequest) -> Response {
    if r.shots == 0 {
        return Response::bad_request("shots must be positive");
    }
    let window = state.window.load(Ordering::SeqCst);
    let Some(snapshot) = snapshot_device(state, &r.device, window) else {
        return Response::bad_request(format!("unknown device {:?}", r.device));
    };
    let circuit = match qsim::qasm::from_qasm(&r.qasm) {
        Ok(c) => c,
        Err(e) => return Response::bad_request(format!("bad qasm: {e}")),
    };
    let n = snapshot.n_qubits();
    if circuit.n_qubits() != n {
        return Response::bad_request(format!(
            "program has {} qubits but {} has {n}; route it before submitting",
            circuit.n_qubits(),
            r.device
        ));
    }

    let mut runner = Runner::new(snapshot)
        .with_seed(r.seed)
        .with_threads(state.config.exec_threads)
        .with_faults(Arc::clone(&state.faults));
    let (choice, cache_outcome) = match r.policy {
        PolicyKind::Baseline => (PolicyChoice::Baseline, CacheOutcome::None),
        PolicyKind::Sim => (PolicyChoice::Sim, CacheOutcome::None),
        PolicyKind::Aim => {
            // AIM's profile comes from the shared cache, never measured
            // per-request — the whole point of the service (§6.2.1).
            let method = if n <= 5 {
                MethodKind::Brute
            } else {
                MethodKind::Awct
            };
            let window_snapshot = runner.device().clone();
            match state.cache.get_or_measure(
                &r.device,
                &window_snapshot,
                window,
                method,
                state.config.profile_shots,
            ) {
                Ok((table, outcome)) => {
                    count_cache_outcome(state, outcome);
                    runner.set_profile(table);
                    (PolicyChoice::Aim, outcome)
                }
                Err(e) => return cache_error_response(e),
            }
        }
    };

    let log = runner.run(choice, &circuit, r.shots);
    let ranked = log.ranked();
    let distinct = ranked.len() as u64;
    let counts: Vec<(String, u64)> = ranked
        .into_iter()
        .take(SubmitResponse::MAX_COUNTS)
        .map(|(s, c)| (s.to_string(), c))
        .collect();

    let (mut pst, mut ist, mut roca) = (None, None, None);
    if let Some(expected) = &r.expected {
        let expected: BitString = match expected.parse() {
            Ok(b) => b,
            Err(e) => return Response::bad_request(format!("bad expected bits: {e}")),
        };
        if expected.width() != log.width() {
            return Response::bad_request(format!(
                "expected has {} bits but outputs have {}",
                expected.width(),
                log.width()
            ));
        }
        let report = ReliabilityReport::evaluate(&log, &CorrectSet::single(expected));
        pst = Some(report.pst);
        // IST is ∞ when no incorrect output was ever observed; JSON has no
        // spelling for that, so the field is simply omitted.
        ist = Some(report.ist).filter(|x| x.is_finite());
        roca = report.roca.map(|x| x as u64);
    }

    Response::Submit(SubmitResponse {
        device: r.device.clone(),
        window,
        policy: r.policy,
        shots: r.shots,
        total: log.total(),
        distinct,
        counts,
        cache: cache_outcome,
        latency_us: 0, // patched by the worker loop
        degraded: cache_outcome == CacheOutcome::Stale,
        pst,
        ist,
        roca,
    })
}
