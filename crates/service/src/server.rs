//! The long-running mitigation server.
//!
//! Threading model:
//!
//! * the **accept loop** (the thread that called [`Server::serve`]) hands
//!   each connection to a detached handler thread;
//! * **connection handlers** speak the line protocol: cheap requests
//!   (`status`, `health`, `set-window`, `shutdown`) are answered inline,
//!   expensive ones (`submit`, `characterize`, `sleep`) become jobs on the
//!   bounded queue and the handler blocks on the job's response channel;
//! * the **worker pool** drains the queue into [`invmeas::Runner`] /
//!   the profile cache. The queue is the only buffer: when it is full the
//!   handler answers `503 busy` immediately instead of queueing unbounded
//!   memory.
//!
//! Resilience (see `DESIGN.md` §12):
//!
//! * **idle reaper** — connections are read under a socket timeout; a
//!   client that hangs without sending a line is closed (counted in
//!   `connections_reaped`) without ever consuming a worker;
//! * **deadlines** — a `submit` carrying `deadline_ms` that is still
//!   queued when the deadline passes is answered `504` at dequeue, again
//!   without consuming worker time;
//! * **panic isolation** — a panicking job answers `500` and the worker
//!   thread survives at full pool strength;
//! * **retry + breaker** — transient characterization failures retry with
//!   deterministic backoff, and a repeatedly failing device's circuit
//!   breaker serves the last good profile with `degraded: true` (see
//!   [`crate::cache::ProfileCache`]);
//! * **fault injection** — every failure path above is rehearsed by
//!   scripting an [`invmeas_faults::FaultPlan`] into
//!   [`ServerConfig::faults`]; production uses the free
//!   [`invmeas_faults::NoFaults`] default.
//!
//! Graceful shutdown: a `shutdown` request is acknowledged, the server
//! stops accepting work (new jobs get `503`), the queue is closed, workers
//! finish every job admitted before the close, and [`Server::serve`]
//! returns after joining them.

use crate::breaker::{BreakerConfig, RetryPolicy};
use crate::cache::{CacheConfig, CacheError, ProfileCache};
use crate::protocol::{
    CacheOutcome, CharacterizeRequest, CharacterizeResponse, HealthResponse, MethodKind,
    PolicyKind, Request, Response, StatusResponse, SubmitRequest, SubmitResponse,
};
use crate::queue::{BoundedQueue, PushError};
use invmeas::{PolicyChoice, Runner};
use invmeas_faults::{Fault, FaultInjector, FaultSite, NoFaults};
use qmetrics::{CorrectSet, ReliabilityReport, ServiceCounters};
use qnoise::{CalibrationDrift, DeviceModel};
use qsim::BitString;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Server configuration. The defaults favour test determinism over raw
/// throughput; a production deployment raises `workers` and
/// `queue_capacity`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker-pool size.
    pub workers: usize,
    /// Bounded job-queue capacity (jobs beyond this get `503 busy`).
    pub queue_capacity: usize,
    /// Executor threads per job (keep small: jobs already run in parallel).
    pub exec_threads: usize,
    /// Default characterization budget when a request does not name one.
    pub profile_shots: u64,
    /// Characterization RNG seed (request seeds never reach the cache, so
    /// concurrent bursts converge on one profile) — see
    /// [`crate::cache::ProfileCache`].
    pub profile_seed: u64,
    /// Per-window calibration-drift amplitude (0 disables drift).
    pub drift_amplitude: f64,
    /// Drift RNG seed.
    pub drift_seed: u64,
    /// Cache invalidation threshold on [`qnoise::drift_score`].
    pub drift_threshold: f64,
    /// Optional profile persistence directory.
    pub profile_dir: Option<PathBuf>,
    /// Upper bound honoured for `sleep` requests.
    pub max_sleep_ms: u64,
    /// Socket read timeout per connection in milliseconds; a client idle
    /// (or hung) past this is reaped. 0 disables the reaper.
    pub idle_timeout_ms: u64,
    /// Socket write timeout per connection in milliseconds (0 disables) —
    /// bounds the damage of a client that stops draining its socket.
    pub write_timeout_ms: u64,
    /// Retries after a transient characterization failure.
    pub retry_limit: u32,
    /// Base backoff between retries in milliseconds (0 = no waiting).
    pub retry_backoff_ms: u64,
    /// Consecutive characterization failures that open a device's breaker.
    pub breaker_failure_threshold: u32,
    /// Consecutive drift-threshold trips that open a device's breaker.
    pub breaker_drift_trips: u32,
    /// Degraded serves while open before a half-open probe.
    pub breaker_cooldown: u32,
    /// Fault injector threaded through workers, characterization, profile
    /// I/O, and execution. Production leaves the [`NoFaults`] default.
    pub faults: Arc<dyn FaultInjector>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 32,
            exec_threads: 1,
            profile_shots: 2048,
            profile_seed: 2019,
            drift_amplitude: 0.05,
            drift_seed: 0x1b3_5de7,
            drift_threshold: 0.0,
            profile_dir: None,
            max_sleep_ms: 5_000,
            idle_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            retry_limit: 2,
            retry_backoff_ms: 25,
            breaker_failure_threshold: 3,
            breaker_drift_trips: 4,
            breaker_cooldown: 4,
            faults: Arc::new(NoFaults),
        }
    }
}

struct Job {
    kind: JobKind,
    respond: mpsc::Sender<Response>,
    enqueued: Instant,
    /// Queue-time budget: expired jobs answer `504` at dequeue.
    deadline: Option<Duration>,
}

enum JobKind {
    Submit(SubmitRequest),
    Characterize(CharacterizeRequest),
    Sleep { ms: u64 },
}

struct State {
    config: ServerConfig,
    counters: Arc<ServiceCounters>,
    cache: ProfileCache,
    window: AtomicU64,
    draining: AtomicBool,
    queue: BoundedQueue<Job>,
    local_addr: SocketAddr,
    faults: Arc<dyn FaultInjector>,
}

/// A bound, not-yet-serving mitigation server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl std::fmt::Debug for State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("State")
            .field("local_addr", &self.local_addr)
            .field("window", &self.window.load(Ordering::Relaxed))
            .field("draining", &self.draining.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener (without serving yet).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        assert!(config.workers > 0, "need at least one worker");
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let counters = Arc::new(ServiceCounters::new());
        let faults = Arc::clone(&config.faults);
        let cache = ProfileCache::new(CacheConfig {
            profile_seed: config.profile_seed,
            drift_threshold: config.drift_threshold,
            exec_threads: config.exec_threads,
            profile_dir: config.profile_dir.clone(),
        })
        .with_counters(Arc::clone(&counters))
        .with_faults(Arc::clone(&faults))
        .with_retry(RetryPolicy {
            max_retries: config.retry_limit,
            base_backoff_ms: config.retry_backoff_ms,
        })
        .with_breaker(BreakerConfig {
            failure_threshold: config.breaker_failure_threshold,
            drift_trip_threshold: config.breaker_drift_trips,
            cooldown: config.breaker_cooldown,
        });
        let queue = BoundedQueue::new(config.queue_capacity);
        Ok(Server {
            listener,
            state: Arc::new(State {
                config,
                counters,
                cache,
                window: AtomicU64::new(0),
                draining: AtomicBool::new(false),
                queue,
                local_addr,
                faults,
            }),
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Serves until a `shutdown` request completes its drain. Blocks the
    /// calling thread and returns the final counter values.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop socket errors.
    pub fn serve(self) -> std::io::Result<qmetrics::CountersSnapshot> {
        let workers: Vec<_> = (0..self.state.config.workers)
            .map(|i| {
                let state = Arc::clone(&self.state);
                std::thread::Builder::new()
                    .name(format!("invmeas-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker")
            })
            .collect();

        for stream in self.listener.incoming() {
            if self.state.draining.load(Ordering::SeqCst) {
                break; // the wake connection that unblocked accept
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue, // transient accept failure
            };
            let state = Arc::clone(&self.state);
            let _ = std::thread::Builder::new()
                .name("invmeas-conn".into())
                .spawn(move || {
                    let _ = handle_connection(stream, &state);
                });
        }

        // Drain: no new jobs are admitted (handlers see `draining`), the
        // queue closes, and workers finish everything already accepted.
        self.state.queue.close();
        for w in workers {
            let _ = w.join();
        }
        self.state
            .counters
            .set_faults_injected(self.state.faults.injected());
        self.state
            .counters
            .set_invariant_clamps(invmeas::validate::invariant_clamps());
        mirror_simulator_gauges(&self.state.counters);
        Ok(self.state.counters.snapshot())
    }
}

/// Copies the simulator-owned gauges (worker-pool tasks, barrier episodes,
/// arena reuse) into the service counter bundle, so a single snapshot
/// carries them alongside the request counters.
fn mirror_simulator_gauges(counters: &qmetrics::ServiceCounters) {
    counters.set_pool_tasks(qsim::pool::pool_tasks());
    counters.set_barrier_waits(qsim::pool::barrier_waits());
    counters.set_arena_reuse_hits(qsim::arena::arena_reuse_hits());
}

fn initiate_shutdown(state: &State) {
    if !state.draining.swap(true, Ordering::SeqCst) {
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(state.local_addr);
    }
}

/// Whether a read error is the idle timeout firing (spelled `WouldBlock`
/// on unix, `TimedOut` on windows) rather than a real failure.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn handle_connection(stream: TcpStream, state: &State) -> std::io::Result<()> {
    if state.config.idle_timeout_ms > 0 {
        stream.set_read_timeout(Some(Duration::from_millis(state.config.idle_timeout_ms)))?;
    }
    if state.config.write_timeout_ms > 0 {
        stream.set_write_timeout(Some(Duration::from_millis(state.config.write_timeout_ms)))?;
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // clean EOF
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                // The reaper: this client sat idle (or hung mid-line) past
                // the timeout without a completed request in flight —
                // close it without ever having consumed a worker.
                state.counters.inc_connection_reaped();
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        if line.trim().is_empty() {
            continue;
        }
        state.counters.inc_requests();
        let (response, shutdown_after) = match Request::from_line(&line) {
            Err(e) => (Response::bad_request(e.to_string()), false),
            Ok(Request::Shutdown) => (Response::Shutdown, true),
            Ok(req) => (handle_request(state, req), false),
        };
        writer.write_all(response.to_line().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown_after {
            initiate_shutdown(state);
        }
    }
}

fn handle_request(state: &State, request: Request) -> Response {
    match request {
        Request::Status => {
            state.counters.set_faults_injected(state.faults.injected());
            state
                .counters
                .set_invariant_clamps(invmeas::validate::invariant_clamps());
            mirror_simulator_gauges(&state.counters);
            Response::Status(StatusResponse {
                window: state.window.load(Ordering::SeqCst),
                workers: state.config.workers as u64,
                queue_depth: state.queue.depth() as u64,
                queue_capacity: state.queue.capacity() as u64,
                draining: state.draining.load(Ordering::SeqCst),
                counters: state.counters.snapshot(),
            })
        }
        Request::Health => {
            let window = state.window.load(Ordering::SeqCst);
            let health = state.cache.health(window);
            let draining = state.draining.load(Ordering::SeqCst);
            Response::Health(HealthResponse {
                degraded: health.open_breakers > 0 || draining,
                queue_depth: state.queue.depth() as u64,
                open_breakers: health.open_breakers,
                cache_entries: health.entries,
                cache_age_windows: health.oldest_age_windows,
            })
        }
        Request::SetWindow { window } => {
            state.window.store(window, Ordering::SeqCst);
            Response::Window { window }
        }
        Request::Submit(r) => {
            let deadline = r.deadline_ms.map(Duration::from_millis);
            enqueue_and_wait(state, JobKind::Submit(r), deadline)
        }
        Request::Characterize(r) => enqueue_and_wait(state, JobKind::Characterize(r), None),
        Request::Sleep { ms } => enqueue_and_wait(state, JobKind::Sleep { ms }, None),
        Request::Shutdown => unreachable!("handled by the connection loop"),
    }
}

fn enqueue_and_wait(state: &State, kind: JobKind, deadline: Option<Duration>) -> Response {
    if state.draining.load(Ordering::SeqCst) {
        return Response::busy("busy: server is shutting down");
    }
    let (respond, receive) = mpsc::channel();
    let job = Job {
        kind,
        respond,
        enqueued: Instant::now(),
        deadline,
    };
    match state.queue.try_push(job) {
        Ok(depth) => {
            state.counters.observe_queue_depth(depth as u64);
            receive
                .recv()
                .unwrap_or_else(|_| Response::failed("worker dropped the job"))
        }
        Err(PushError::Full(_)) => {
            state.counters.inc_busy_rejection();
            Response::busy("busy: queue is full")
        }
        Err(PushError::Closed(_)) => Response::busy("busy: server is shutting down"),
    }
}

fn worker_loop(state: &State) {
    while let Some(job) = state.queue.pop() {
        // Deadline check at dequeue: an expired job is answered without
        // consuming worker time, so one slow job cannot cascade 504s into
        // wasted execution for everything queued behind it.
        if let Some(deadline) = job.deadline {
            let waited = job.enqueued.elapsed();
            if waited > deadline {
                state.counters.inc_deadline_expiration();
                state.counters.inc_jobs_failed();
                let _ = job.respond.send(Response::deadline_exceeded(format!(
                    "deadline exceeded: waited {} ms in queue (budget {} ms)",
                    waited.as_millis(),
                    deadline.as_millis()
                )));
                continue;
            }
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // The worker fault site: one arrival per job picked up.
            if let Some(f) = state.faults.check(FaultSite::Worker) {
                f.apply_latency();
                match f {
                    Fault::Error(m) => return Response::failed(m),
                    Fault::Panic(m) => panic!("{m}"),
                    _ => {}
                }
            }
            execute_job(state, &job.kind)
        }));
        let mut response =
            result.unwrap_or_else(|_| Response::failed("job panicked; see server log"));
        let latency_us = u64::try_from(job.enqueued.elapsed().as_micros()).unwrap_or(u64::MAX);
        state.counters.record_latency_us(latency_us);
        match &mut response {
            Response::Submit(r) => r.latency_us = latency_us,
            Response::Characterize(r) => r.latency_us = latency_us,
            _ => {}
        }
        if matches!(response, Response::Error { .. }) {
            state.counters.inc_jobs_failed();
        } else {
            state.counters.inc_jobs_executed();
        }
        // The handler may have disconnected; that only loses the reply.
        let _ = job.respond.send(response);
    }
}

/// The device as calibrated in the current window.
fn snapshot_device(state: &State, name: &str, window: u64) -> Option<DeviceModel> {
    let nominal = DeviceModel::by_name(name)?;
    Some(
        CalibrationDrift::new(nominal, state.config.drift_amplitude)
            .with_seed(state.config.drift_seed)
            .window(window),
    )
}

fn count_cache_outcome(state: &State, outcome: CacheOutcome) {
    match outcome {
        CacheOutcome::Hit | CacheOutcome::DiskHit => state.counters.inc_cache_hit(),
        CacheOutcome::Miss => state.counters.inc_cache_miss(),
        // Stale serves are tracked in `degraded_responses` by the cache;
        // they are neither a hit (the entry was invalid) nor a miss (no
        // characterization ran).
        CacheOutcome::Stale | CacheOutcome::None => {}
    }
}

fn cache_error_response(e: CacheError) -> Response {
    match e {
        CacheError::Invalid(m) => Response::bad_request(m),
        CacheError::Unavailable(m) => Response::busy(m),
    }
}

fn execute_job(state: &State, kind: &JobKind) -> Response {
    match kind {
        JobKind::Sleep { ms } => {
            let ms = (*ms).min(state.config.max_sleep_ms);
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Response::Slept { ms }
        }
        JobKind::Characterize(r) => execute_characterize(state, r),
        JobKind::Submit(r) => execute_submit(state, r),
    }
}

fn execute_characterize(state: &State, r: &CharacterizeRequest) -> Response {
    let window = state.window.load(Ordering::SeqCst);
    let Some(snapshot) = snapshot_device(state, &r.device, window) else {
        return Response::bad_request(format!("unknown device {:?}", r.device));
    };
    let shots = if r.shots == 0 {
        state.config.profile_shots
    } else {
        r.shots
    };
    match state
        .cache
        .get_or_measure(&r.device, &snapshot, window, r.method, shots)
    {
        Ok((table, outcome)) => {
            count_cache_outcome(state, outcome);
            Response::Characterize(CharacterizeResponse {
                device: r.device.clone(),
                window,
                method: r.method,
                width: table.width() as u64,
                trials: table.trials_used(),
                strongest: table.strongest_state().to_string(),
                weakest: table.weakest_state().to_string(),
                cache: outcome,
                latency_us: 0, // patched by the worker loop
                degraded: outcome == CacheOutcome::Stale,
            })
        }
        Err(e) => cache_error_response(e),
    }
}

fn execute_submit(state: &State, r: &SubmitRequest) -> Response {
    if r.shots == 0 {
        return Response::bad_request("shots must be positive");
    }
    let window = state.window.load(Ordering::SeqCst);
    let Some(snapshot) = snapshot_device(state, &r.device, window) else {
        return Response::bad_request(format!("unknown device {:?}", r.device));
    };
    let circuit = match qsim::qasm::from_qasm(&r.qasm) {
        Ok(c) => c,
        Err(e) => return Response::bad_request(format!("bad qasm: {e}")),
    };
    let n = snapshot.n_qubits();
    if circuit.n_qubits() != n {
        return Response::bad_request(format!(
            "program has {} qubits but {} has {n}; route it before submitting",
            circuit.n_qubits(),
            r.device
        ));
    }

    let mut runner = Runner::new(snapshot)
        .with_seed(r.seed)
        .with_threads(state.config.exec_threads)
        .with_faults(Arc::clone(&state.faults));
    let (choice, cache_outcome) = match r.policy {
        PolicyKind::Baseline => (PolicyChoice::Baseline, CacheOutcome::None),
        PolicyKind::Sim => (PolicyChoice::Sim, CacheOutcome::None),
        PolicyKind::Aim => {
            // AIM's profile comes from the shared cache, never measured
            // per-request — the whole point of the service (§6.2.1).
            let method = if n <= 5 { MethodKind::Brute } else { MethodKind::Awct };
            let window_snapshot = runner.device().clone();
            match state.cache.get_or_measure(
                &r.device,
                &window_snapshot,
                window,
                method,
                state.config.profile_shots,
            ) {
                Ok((table, outcome)) => {
                    count_cache_outcome(state, outcome);
                    runner.set_profile(table);
                    (PolicyChoice::Aim, outcome)
                }
                Err(e) => return cache_error_response(e),
            }
        }
    };

    let log = runner.run(choice, &circuit, r.shots);
    let ranked = log.ranked();
    let distinct = ranked.len() as u64;
    let counts: Vec<(String, u64)> = ranked
        .into_iter()
        .take(SubmitResponse::MAX_COUNTS)
        .map(|(s, c)| (s.to_string(), c))
        .collect();

    let (mut pst, mut ist, mut roca) = (None, None, None);
    if let Some(expected) = &r.expected {
        let expected: BitString = match expected.parse() {
            Ok(b) => b,
            Err(e) => return Response::bad_request(format!("bad expected bits: {e}")),
        };
        if expected.width() != log.width() {
            return Response::bad_request(format!(
                "expected has {} bits but outputs have {}",
                expected.width(),
                log.width()
            ));
        }
        let report = ReliabilityReport::evaluate(&log, &CorrectSet::single(expected));
        pst = Some(report.pst);
        // IST is ∞ when no incorrect output was ever observed; JSON has no
        // spelling for that, so the field is simply omitted.
        ist = Some(report.ist).filter(|x| x.is_finite());
        roca = report.roca.map(|x| x as u64);
    }

    Response::Submit(SubmitResponse {
        device: r.device.clone(),
        window,
        policy: r.policy,
        shots: r.shots,
        total: log.total(),
        distinct,
        counts,
        cache: cache_outcome,
        latency_us: 0, // patched by the worker loop
        degraded: cache_outcome == CacheOutcome::Stale,
        pst,
        ist,
        roca,
    })
}
