//! Consistent-hash ownership of devices across a static membership list.
//!
//! A profile mesh is a set of mitigation servers sharing one membership
//! list (every node is started with the *same* `--cluster a,b,c`
//! argument). Each device name hashes onto a 64-vnode-per-member
//! consistent-hash ring: the member owning the first vnode clockwise of
//! the device's hash is the **owner** — the only node that characterizes
//! the device — and the next `replication` distinct members are its
//! **followers**, receiving profile and journal replicas so one of them
//! can promote if the owner dies.
//!
//! Everything here is a pure function of the membership list: two nodes
//! (or a node and a client) holding the same list compute byte-identical
//! rings and therefore agree on every route without any coordination.

use std::fmt;

/// Virtual nodes per member. 64 spreads ownership to within a few percent
/// of uniform for small clusters while keeping the ring tiny (a 3-node
/// mesh is 192 sorted u64s).
pub const VNODES_PER_MEMBER: usize = 64;

/// Static cluster configuration for one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Every member's listen address, identically ordered on all nodes.
    pub members: Vec<String>,
    /// This node's index in `members`.
    pub self_index: usize,
    /// Followers per device (replication factor K). Clamped to
    /// `members.len() - 1` — you cannot replicate to more peers than
    /// exist.
    pub replication: usize,
    /// Interval between heartbeat probes to each peer, in milliseconds.
    pub heartbeat_ms: u64,
    /// Consecutive missed heartbeats before a peer is declared dead.
    pub heartbeat_miss_limit: u32,
}

/// A malformed cluster specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterError(pub String);

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster error: {}", self.0)
    }
}

impl std::error::Error for ClusterError {}

impl ClusterConfig {
    /// Builds a config from the shared membership list and this node's
    /// own listen address, which must appear verbatim in the list.
    ///
    /// # Errors
    ///
    /// Rejects lists with fewer than two members, duplicate members, or
    /// a `self_addr` that is not in the list.
    pub fn new(members: Vec<String>, self_addr: &str) -> Result<ClusterConfig, ClusterError> {
        if members.len() < 2 {
            return Err(ClusterError(format!(
                "a cluster needs at least 2 members, got {}",
                members.len()
            )));
        }
        for (i, m) in members.iter().enumerate() {
            if members[..i].contains(m) {
                return Err(ClusterError(format!("duplicate cluster member {m:?}")));
            }
        }
        let self_index = members.iter().position(|m| m == self_addr).ok_or_else(|| {
            ClusterError(format!(
                "own address {self_addr:?} is not in the cluster member list \
                     (every node's --addr must appear verbatim in --cluster)"
            ))
        })?;
        Ok(ClusterConfig {
            members,
            self_index,
            replication: 1,
            heartbeat_ms: 1000,
            heartbeat_miss_limit: 3,
        })
    }

    /// The effective replication factor: `replication` clamped to the
    /// number of available peers.
    pub fn effective_replication(&self) -> usize {
        self.replication.min(self.members.len() - 1)
    }
}

/// The consistent-hash route for one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Member index of the owning node.
    pub owner: usize,
    /// Member indices of the replication followers, in ring order.
    pub followers: Vec<usize>,
}

impl Route {
    /// The failover preference order: owner first, then followers in
    /// ring order. The first *alive* entry is the node that should be
    /// serving this device right now.
    pub fn ladder(&self) -> impl Iterator<Item = usize> + '_ {
        std::iter::once(self.owner).chain(self.followers.iter().copied())
    }

    /// Whether `member` appears anywhere on the ladder.
    pub fn involves(&self, member: usize) -> bool {
        self.ladder().any(|m| m == member)
    }
}

/// A consistent-hash ring over the membership list.
///
/// Construction sorts `members.len() * VNODES_PER_MEMBER` hashed vnodes;
/// routing is a binary search. The ring depends only on the member
/// *names and order*, so identical `--cluster` lists yield identical
/// routing on every node and client.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(vnode hash, member index)`, sorted by hash then index so ties
    /// (astronomically unlikely but possible) break deterministically.
    vnodes: Vec<(u64, usize)>,
    members: usize,
}

impl HashRing {
    /// Builds the ring for a membership list.
    pub fn new(members: &[String]) -> HashRing {
        let mut vnodes = Vec::with_capacity(members.len() * VNODES_PER_MEMBER);
        for (index, name) in members.iter().enumerate() {
            for v in 0..VNODES_PER_MEMBER {
                vnodes.push((ring_hash(&format!("{name}#{v}")), index));
            }
        }
        vnodes.sort_unstable();
        HashRing {
            vnodes,
            members: members.len(),
        }
    }

    /// Routes a device: the owner is the member holding the first vnode
    /// clockwise from the device's hash; followers are the next
    /// `replication` *distinct* members clockwise.
    pub fn route(&self, device: &str, replication: usize) -> Route {
        let h = ring_hash(device);
        let start = self
            .vnodes
            .partition_point(|(vh, _)| *vh < h)
            // Past the last vnode wraps to the first: it's a ring.
            % self.vnodes.len();
        let owner = self.vnodes[start].1;
        let want = replication.min(self.members - 1);
        let mut followers = Vec::with_capacity(want);
        let mut k = start;
        while followers.len() < want {
            k = (k + 1) % self.vnodes.len();
            let m = self.vnodes[k].1;
            if m != owner && !followers.contains(&m) {
                followers.push(m);
            }
        }
        Route { owner, followers }
    }
}

/// Ring placement hash: FNV-1a (the same hash the rest of the stack uses
/// for deterministic seeds) followed by a murmur3-style avalanche. Raw
/// FNV leaves the high bits of similar-suffix strings (`node#0`,
/// `node#1`, … and `ibmqx2`/`ibmqx4`) correlated, which clumps vnode
/// arcs and makes ownership wildly unbalanced; the finalizer diffuses
/// every input bit across the whole word.
pub(crate) fn ring_hash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7001 + i)).collect()
    }

    #[test]
    fn config_validates_membership() {
        let e = ClusterConfig::new(vec!["a".into()], "a").unwrap_err();
        assert!(e.to_string().contains("at least 2"), "{e}");
        let e = ClusterConfig::new(vec!["a".into(), "a".into()], "a").unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
        let e = ClusterConfig::new(vec!["a".into(), "b".into()], "c").unwrap_err();
        assert!(e.to_string().contains("not in the cluster"), "{e}");
        let c = ClusterConfig::new(vec!["a".into(), "b".into()], "b").unwrap();
        assert_eq!(c.self_index, 1);
        assert_eq!(c.effective_replication(), 1);
    }

    #[test]
    fn routing_is_deterministic_and_identical_across_nodes() {
        let list = members(3);
        let a = HashRing::new(&list);
        let b = HashRing::new(&list);
        for device in ["ibmqx4", "ibmqx2", "melbourne", "tokyo", "dev-7"] {
            assert_eq!(a.route(device, 2), b.route(device, 2), "{device}");
        }
    }

    #[test]
    fn followers_are_distinct_and_exclude_owner() {
        let ring = HashRing::new(&members(5));
        for i in 0..50 {
            let r = ring.route(&format!("device-{i}"), 3);
            assert!(r.owner < 5);
            assert_eq!(r.followers.len(), 3);
            assert!(!r.followers.contains(&r.owner));
            let mut sorted = r.followers.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "followers must be distinct");
        }
    }

    #[test]
    fn replication_clamps_to_peer_count() {
        let ring = HashRing::new(&members(3));
        let r = ring.route("ibmqx4", 10);
        assert_eq!(r.followers.len(), 2, "only 2 peers exist");
    }

    #[test]
    fn ownership_spreads_across_members() {
        let ring = HashRing::new(&members(3));
        let mut owned = [0usize; 3];
        for i in 0..300 {
            owned[ring.route(&format!("device-{i}"), 1).owner] += 1;
        }
        for (m, n) in owned.iter().enumerate() {
            assert!(
                *n > 30,
                "member {m} owns {n}/300 devices — ring is badly unbalanced: {owned:?}"
            );
        }
    }

    #[test]
    fn ladder_starts_at_owner() {
        let ring = HashRing::new(&members(3));
        let r = ring.route("ibmqx4", 2);
        let ladder: Vec<_> = r.ladder().collect();
        assert_eq!(ladder[0], r.owner);
        assert_eq!(ladder.len(), 3);
        assert!(r.involves(r.owner));
    }
}
