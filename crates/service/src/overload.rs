//! Overload control: the retry budget and the per-peer dial gate.
//!
//! Both primitives exist to bound *retry amplification*. When a mesh
//! degrades — a peer partitioned away, a disk acting up — every layer
//! that can retry (cache characterization, forward failover, replication
//! redial) wants to, and the sum of those retries can multiply offered
//! load into a storm precisely when capacity is lowest. The fix is
//! classic and deliberately simple:
//!
//! * [`RetryBudget`] — a token bucket refilled by *request arrivals*
//!   (not wall-clock), so retries across all layers are capped at a
//!   fixed fraction (~10% by default) of the request rate. A retry that
//!   cannot spend a token is simply not attempted; first attempts are
//!   never charged. Driving the refill off request counts rather than
//!   time keeps chaos replays deterministic: the same request order
//!   yields the same grant/deny sequence.
//! * [`DialGate`] — per-peer exponential backoff with deterministic
//!   (FNV-jittered) hold-offs, so a dead member is not redialed on
//!   every forwarded request. The gate remembers consecutive failures
//!   per peer and refuses dials until the hold-off lapses; a single
//!   success resets the peer. Only the *hold-off check* consults the
//!   clock — which backoff is chosen depends only on the failure count
//!   and the seed, so counters stay replayable.

use invmeas_faults::jitter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Milli-tokens per whole retry token.
const MILLI: u64 = 1000;

/// A request-rate-coupled token bucket shared by every retry path.
///
/// Accounting is in milli-tokens so sub-unity refill rates (e.g. 0.1
/// token per request) stay integral. The bucket starts full.
#[derive(Debug)]
pub struct RetryBudget {
    /// Current balance, in milli-tokens.
    millitokens: AtomicU64,
    /// Bucket capacity, in milli-tokens.
    cap_milli: u64,
    /// Milli-tokens added per request arrival.
    refill_milli: u64,
    /// Retries denied because the bucket was empty.
    exhausted: AtomicU64,
    /// Retries granted.
    spent: AtomicU64,
}

impl RetryBudget {
    /// A bucket holding at most `cap_tokens` whole tokens, refilled by
    /// `refill_milli` milli-tokens (1/1000ths of a retry) per request.
    /// `refill_milli = 100` couples retries to ~10% of the request rate.
    pub fn new(cap_tokens: u64, refill_milli: u64) -> RetryBudget {
        let cap_milli = cap_tokens.max(1) * MILLI;
        RetryBudget {
            millitokens: AtomicU64::new(cap_milli),
            cap_milli,
            refill_milli,
            exhausted: AtomicU64::new(0),
            spent: AtomicU64::new(0),
        }
    }

    /// Registers one request arrival, refilling the bucket (saturating
    /// at capacity). Called once per parsed request frame.
    pub fn note_request(&self) {
        let mut cur = self.millitokens.load(Ordering::Relaxed);
        loop {
            let next = (cur + self.refill_milli).min(self.cap_milli);
            if next == cur {
                return;
            }
            match self.millitokens.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Tries to spend one whole retry token. Returns whether the retry
    /// may proceed; a denial is counted and must mean *no attempt*.
    pub fn try_spend(&self) -> bool {
        let mut cur = self.millitokens.load(Ordering::Relaxed);
        loop {
            if cur < MILLI {
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match self.millitokens.compare_exchange_weak(
                cur,
                cur - MILLI,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.spent.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Whole tokens currently available.
    pub fn available(&self) -> u64 {
        self.millitokens.load(Ordering::Relaxed) / MILLI
    }

    /// Retries denied so far.
    pub fn exhausted(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Retries granted so far.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }
}

/// Per-peer backoff state: consecutive failures and the hold-off edge.
#[derive(Debug, Default)]
struct PeerGate {
    failures: u32,
    open_after: Option<Instant>,
}

/// Exponential-backoff dial suppression, one slot per mesh peer.
///
/// After `f` consecutive dial failures the peer is held off for
/// `min(cap, base · 2^(f−1))` plus a deterministic jitter of up to half
/// the backoff (FNV over the seed, peer index, and failure ordinal —
/// no RNG state, so two runs with the same history pick the same
/// hold-offs).
#[derive(Debug)]
pub struct DialGate {
    peers: Vec<Mutex<PeerGate>>,
    base: Duration,
    cap: Duration,
    seed: u64,
    suppressed: AtomicU64,
}

impl DialGate {
    /// A gate for `peers` members with the given backoff tuning.
    pub fn new(peers: usize, base: Duration, cap: Duration, seed: u64) -> DialGate {
        DialGate {
            peers: (0..peers)
                .map(|_| Mutex::new(PeerGate::default()))
                .collect(),
            base,
            cap: cap.max(base),
            seed,
            suppressed: AtomicU64::new(0),
        }
    }

    fn slot(&self, peer: usize) -> std::sync::MutexGuard<'_, PeerGate> {
        self.peers[peer].lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Whether dialing `peer` is currently allowed. A refusal is counted
    /// as a suppressed dial.
    pub fn allow(&self, peer: usize) -> bool {
        let gate = self.slot(peer);
        match gate.open_after {
            Some(edge) if Instant::now() < edge => {
                self.suppressed.fetch_add(1, Ordering::Relaxed);
                false
            }
            _ => true,
        }
    }

    /// Records a failed dial (or failed call) to `peer`, extending the
    /// hold-off exponentially.
    pub fn record_failure(&self, peer: usize) {
        let mut gate = self.slot(peer);
        gate.failures = gate.failures.saturating_add(1);
        let shift = (gate.failures - 1).min(20);
        let backoff_ms = (self.base.as_millis() as u64)
            .saturating_mul(1u64 << shift)
            .min(self.cap.as_millis() as u64);
        let jit = jitter(
            self.seed,
            &format!("dial:{peer}"),
            u64::from(gate.failures),
            backoff_ms / 2 + 1,
        );
        gate.open_after = Some(Instant::now() + Duration::from_millis(backoff_ms + jit));
    }

    /// Records a successful call to `peer`, resetting its backoff.
    pub fn record_success(&self, peer: usize) {
        let mut gate = self.slot(peer);
        gate.failures = 0;
        gate.open_after = None;
    }

    /// Dials refused so far, across all peers.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }

    /// Consecutive failures currently recorded for `peer` (test hook).
    pub fn failures(&self, peer: usize) -> u32 {
        self.slot(peer).failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_starts_full_and_spends_whole_tokens() {
        let b = RetryBudget::new(3, 100);
        assert_eq!(b.available(), 3);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend(), "empty bucket denies");
        assert_eq!(b.spent(), 3);
        assert_eq!(b.exhausted(), 1);
    }

    #[test]
    fn requests_refill_at_the_configured_fraction() {
        let b = RetryBudget::new(10, 100);
        while b.try_spend() {}
        assert_eq!(b.available(), 0);
        // 10% coupling: ten requests buy exactly one retry.
        for _ in 0..9 {
            b.note_request();
            assert!(!b.try_spend());
        }
        b.note_request();
        assert!(b.try_spend());
        assert!(!b.try_spend());
    }

    #[test]
    fn refill_saturates_at_capacity() {
        let b = RetryBudget::new(2, 1000);
        for _ in 0..50 {
            b.note_request();
        }
        assert_eq!(b.available(), 2);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend());
    }

    #[test]
    fn budget_is_race_free_under_contention() {
        let b = std::sync::Arc::new(RetryBudget::new(64, 0));
        let granted = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = std::sync::Arc::clone(&b);
                let granted = std::sync::Arc::clone(&granted);
                s.spawn(move || {
                    for _ in 0..32 {
                        if b.try_spend() {
                            granted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // 256 attempts against 64 tokens: exactly 64 grants, no more.
        assert_eq!(granted.load(Ordering::Relaxed), 64);
        assert_eq!(b.spent(), 64);
        assert_eq!(b.exhausted(), 256 - 64);
    }

    #[test]
    fn gate_suppresses_after_failure_and_resets_on_success() {
        let gate = DialGate::new(3, Duration::from_millis(200), Duration::from_secs(2), 7);
        assert!(gate.allow(1), "fresh peers are open");
        gate.record_failure(1);
        assert!(!gate.allow(1), "held off right after a failure");
        assert!(gate.allow(0), "other peers unaffected");
        assert_eq!(gate.suppressed(), 1);
        gate.record_success(1);
        assert!(gate.allow(1), "success reopens immediately");
        assert_eq!(gate.failures(1), 0);
    }

    #[test]
    fn gate_backoff_grows_and_expires() {
        let gate = DialGate::new(1, Duration::from_millis(5), Duration::from_millis(20), 7);
        gate.record_failure(0);
        assert!(!gate.allow(0));
        // base 5ms + up-to-half jitter: open again within ~10ms.
        std::thread::sleep(Duration::from_millis(15));
        assert!(gate.allow(0), "hold-off lapses");
        for _ in 0..10 {
            gate.record_failure(0);
        }
        assert_eq!(gate.failures(0), 11);
        // Capped: even 11 consecutive failures stay within cap + jitter.
        std::thread::sleep(Duration::from_millis(35));
        assert!(gate.allow(0));
    }

    #[test]
    fn gate_jitter_is_deterministic() {
        // Two gates with the same seed and history produce the same
        // hold-off decisions (modulo the clock): we can only assert the
        // derived jitter values agree.
        for f in 1..6u64 {
            assert_eq!(jitter(7, "dial:2", f, 101), jitter(7, "dial:2", f, 101));
        }
        assert_ne!(
            jitter(7, "dial:2", 1, 1 << 30),
            jitter(8, "dial:2", 1, 1 << 30)
        );
    }
}
