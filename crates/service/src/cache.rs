//! The drift-aware RBMS profile cache.
//!
//! Characterization is the expensive part of AIM (§6.2.1) but profiles are
//! stable across calibration windows (§6.1), so the service measures each
//! (device, method) profile once and reuses it until the calibration
//! moves. Cache keying and invalidation:
//!
//! * **key** — `(device, method)`; each entry records the calibration
//!   window and the exact device snapshot it was measured against;
//! * **invalidation** — an entry is stale as soon as the current window
//!   differs from the entry's, or [`qnoise::drift_score`] between the
//!   entry's snapshot and the current one exceeds the configured
//!   threshold, or the requested trial budget changed;
//! * **single-flight** — concurrent requests for the same key serialize on
//!   a per-key slot, so a burst of N requests performs exactly one
//!   characterization and N−1 hits;
//! * **persistence** — with a profile directory configured, measured
//!   tables are written through via `profile_io` (`rbms v1` files named
//!   `<device>-<method>-w<window>.rbms`) and later instances warm up from
//!   disk;
//! * **determinism** — the measurement RNG seed is derived from the
//!   server's profile seed and the key (never from the request), so the
//!   cached table does not depend on which concurrent request got there
//!   first.

use crate::protocol::{CacheOutcome, MethodKind};
use invmeas::RbmsTable;
use qnoise::{drift_score, DeviceModel, NoisyExecutor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone)]
struct Entry {
    window: u64,
    shots: u64,
    snapshot: DeviceModel,
    table: RbmsTable,
}

/// Cache configuration.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Base RNG seed for characterization runs.
    pub profile_seed: u64,
    /// Maximum [`drift_score`] against the profiled snapshot before an
    /// entry is considered stale (0.0 = any parameter change invalidates).
    pub drift_threshold: f64,
    /// Worker threads per characterization sweep.
    pub exec_threads: usize,
    /// Optional write-through persistence directory.
    pub profile_dir: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            profile_seed: 2019,
            drift_threshold: 0.0,
            exec_threads: 1,
            profile_dir: None,
        }
    }
}

/// A per-key slot: the outer `Arc<Mutex>` is what single-flights
/// concurrent misses for one `(device, method)` pair.
type Slot = Arc<Mutex<Option<Entry>>>;

/// A concurrent profile cache. See the module docs for semantics.
#[derive(Debug)]
pub struct ProfileCache {
    config: CacheConfig,
    slots: Mutex<HashMap<(String, MethodKind), Slot>>,
}

impl ProfileCache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        ProfileCache {
            config,
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the profile for `(device, method)` in calibration window
    /// `window`, measuring it against `snapshot` only when no valid cached
    /// or persisted copy exists. The outcome reports which path served it.
    ///
    /// # Errors
    ///
    /// Returns a message when the method cannot characterize this device
    /// (e.g. brute force beyond 14 qubits).
    pub fn get_or_measure(
        &self,
        device: &str,
        snapshot: &DeviceModel,
        window: u64,
        method: MethodKind,
        shots: u64,
    ) -> Result<(RbmsTable, CacheOutcome), String> {
        assert!(shots > 0, "characterization needs a trial budget");
        let slot = {
            let mut slots = self.slots.lock().expect("cache poisoned");
            Arc::clone(
                slots
                    .entry((device.to_string(), method))
                    .or_insert_with(|| Arc::new(Mutex::new(None))),
            )
        };
        // Per-key critical section: the winner of a concurrent burst
        // measures while the rest block here, then observe a fresh entry.
        let mut entry = slot.lock().expect("cache slot poisoned");
        if let Some(e) = entry.as_ref() {
            let fresh = e.window == window
                && e.shots == shots
                && drift_score(&e.snapshot, snapshot) <= self.config.drift_threshold;
            if fresh {
                return Ok((e.table.clone(), CacheOutcome::Hit));
            }
        }

        let (table, outcome) = match self.load_persisted(device, method, window, snapshot) {
            Some(table) => (table, CacheOutcome::DiskHit),
            None => {
                let table = self.measure(snapshot, window, method, shots)?;
                self.persist(device, method, window, &table);
                (table, CacheOutcome::Miss)
            }
        };
        *entry = Some(Entry {
            window,
            shots,
            snapshot: snapshot.clone(),
            table: table.clone(),
        });
        Ok((table, outcome))
    }

    /// Measures a profile with a seed that is a pure function of the
    /// configuration and the (device, method, window) key.
    fn measure(
        &self,
        snapshot: &DeviceModel,
        window: u64,
        method: MethodKind,
        shots: u64,
    ) -> Result<RbmsTable, String> {
        let n = snapshot.n_qubits();
        if method == MethodKind::Brute && n > 14 {
            return Err(format!(
                "brute-force characterization limited to 14 qubits ({n} requested); use awct"
            ));
        }
        let exec = NoisyExecutor::from_device(snapshot).with_threads(self.config.exec_threads);
        let seed = self
            .config
            .profile_seed
            .wrapping_mul(0x100000001b3)
            .wrapping_add(fnv(snapshot.name()))
            .wrapping_add(fnv(method.as_str()))
            .wrapping_add(window);
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(match method {
            MethodKind::Brute => RbmsTable::brute_force(&exec, shots, &mut rng),
            MethodKind::Esct => RbmsTable::esct(&exec, shots, &mut rng),
            MethodKind::Awct => {
                RbmsTable::awct(&exec, 4.min(n), 2.min(n.saturating_sub(1)), shots, &mut rng)
            }
        })
    }

    fn profile_path(&self, device: &str, method: MethodKind, window: u64) -> Option<PathBuf> {
        let dir = self.config.profile_dir.as_ref()?;
        let sane: String = device
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '_' })
            .collect();
        Some(dir.join(format!("{sane}-{}-w{window}.rbms", method.as_str())))
    }

    fn load_persisted(
        &self,
        device: &str,
        method: MethodKind,
        window: u64,
        snapshot: &DeviceModel,
    ) -> Option<RbmsTable> {
        let path = self.profile_path(device, method, window)?;
        let table = RbmsTable::load(&path).ok()?;
        (table.width() == snapshot.n_qubits()).then_some(table)
    }

    fn persist(&self, device: &str, method: MethodKind, window: u64, table: &RbmsTable) {
        if let Some(path) = self.profile_path(device, method, window) {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            // Best effort: a full disk must not fail the request.
            let _ = table.save(&path);
        }
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnoise::CalibrationDrift;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn cache() -> ProfileCache {
        ProfileCache::new(CacheConfig::default())
    }

    #[test]
    fn second_lookup_hits_and_matches() {
        let dev = DeviceModel::ibmqx2();
        let c = cache();
        let (t1, o1) = c.get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 64).unwrap();
        let (t2, o2) = c.get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 64).unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Hit);
        assert_eq!(t1, t2);
    }

    #[test]
    fn window_advance_invalidates() {
        let drift = CalibrationDrift::new(DeviceModel::ibmqx2(), 0.05);
        let c = cache();
        let (_, o1) = c
            .get_or_measure("ibmqx2", &drift.window(0), 0, MethodKind::Esct, 256)
            .unwrap();
        let (_, o2) = c
            .get_or_measure("ibmqx2", &drift.window(1), 1, MethodKind::Esct, 256)
            .unwrap();
        let (_, o3) = c
            .get_or_measure("ibmqx2", &drift.window(1), 1, MethodKind::Esct, 256)
            .unwrap();
        assert_eq!((o1, o2, o3), (CacheOutcome::Miss, CacheOutcome::Miss, CacheOutcome::Hit));
    }

    #[test]
    fn drift_score_beyond_threshold_invalidates_within_a_window() {
        // Same window index, but the device recalibrated underneath us:
        // the score check catches what window keying cannot.
        let nominal = DeviceModel::ibmqx2();
        let recalibrated = CalibrationDrift::new(nominal.clone(), 0.2).window(17);
        let c = ProfileCache::new(CacheConfig {
            drift_threshold: 0.01,
            ..CacheConfig::default()
        });
        let (_, o1) = c.get_or_measure("ibmqx2", &nominal, 4, MethodKind::Esct, 128).unwrap();
        let (_, o2) = c
            .get_or_measure("ibmqx2", &recalibrated, 4, MethodKind::Esct, 128)
            .unwrap();
        assert_eq!((o1, o2), (CacheOutcome::Miss, CacheOutcome::Miss));
        // And a small perturbation under a loose threshold stays a hit.
        let loose = ProfileCache::new(CacheConfig {
            drift_threshold: 0.5,
            ..CacheConfig::default()
        });
        let (_, _) = loose.get_or_measure("ibmqx2", &nominal, 4, MethodKind::Esct, 128).unwrap();
        let (_, o) = loose
            .get_or_measure("ibmqx2", &recalibrated, 4, MethodKind::Esct, 128)
            .unwrap();
        assert_eq!(o, CacheOutcome::Hit);
    }

    #[test]
    fn concurrent_burst_measures_once() {
        let dev = DeviceModel::ibmqx4();
        let c = std::sync::Arc::new(cache());
        let misses = std::sync::Arc::new(AtomicUsize::new(0));
        let tables: Vec<RbmsTable> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let c = std::sync::Arc::clone(&c);
                    let misses = std::sync::Arc::clone(&misses);
                    let dev = &dev;
                    scope.spawn(move || {
                        let (t, o) = c
                            .get_or_measure("ibmqx4", dev, 0, MethodKind::Brute, 32)
                            .unwrap();
                        if o == CacheOutcome::Miss {
                            misses.fetch_add(1, Ordering::SeqCst);
                        }
                        t
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(misses.load(Ordering::SeqCst), 1, "exactly one characterization");
        for t in &tables[1..] {
            assert_eq!(t, &tables[0], "every requester sees the same table");
        }
    }

    #[test]
    fn persisted_profiles_warm_new_instances() {
        let dir = std::env::temp_dir().join(format!(
            "invmeas-cache-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CacheConfig {
            profile_dir: Some(dir.clone()),
            ..CacheConfig::default()
        };
        let dev = DeviceModel::ibmqx2();
        let first = ProfileCache::new(cfg.clone());
        let (t1, o1) = first.get_or_measure("ibmqx2", &dev, 2, MethodKind::Brute, 64).unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        assert!(dir.join("ibmqx2-brute-w2.rbms").exists());

        let second = ProfileCache::new(cfg);
        let (t2, o2) = second.get_or_measure("ibmqx2", &dev, 2, MethodKind::Brute, 64).unwrap();
        assert_eq!(o2, CacheOutcome::DiskHit);
        for (a, b) in t1.strengths().iter().zip(t2.strengths()) {
            assert!((a - b).abs() < 1e-12);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn brute_force_width_guard() {
        let wide = DeviceModel::ideal(15);
        let e = cache()
            .get_or_measure("ideal-15", &wide, 0, MethodKind::Brute, 8)
            .unwrap_err();
        assert!(e.contains("limited to 14"), "{e}");
    }
}
