//! The drift-aware RBMS profile cache, with retry and breaker resilience.
//!
//! Characterization is the expensive part of AIM (§6.2.1) but profiles are
//! stable across calibration windows (§6.1), so the service measures each
//! (device, method) profile once and reuses it until the calibration
//! moves. Cache keying and invalidation:
//!
//! * **key** — `(device, method)`; each entry records the calibration
//!   window and the exact device snapshot it was measured against;
//! * **invalidation** — an entry is stale as soon as the current window
//!   differs from the entry's, or [`qnoise::drift_score`] between the
//!   entry's snapshot and the current one exceeds the configured
//!   threshold, or the requested trial budget changed;
//! * **single-flight** — concurrent requests for the same key serialize on
//!   a per-key slot, so a burst of N requests performs exactly one
//!   characterization and N−1 hits;
//! * **persistence** — with a profile directory configured, measured
//!   tables are written through via `profile_io` (`rbms v1` files named
//!   `<device>-<method>-w<window>.rbms`, crash-safe temp-and-rename
//!   writes) and later instances warm up from disk;
//! * **determinism** — the measurement RNG seed is derived from the
//!   server's profile seed and the key (never from the request), so the
//!   cached table does not depend on which concurrent request got there
//!   first.
//!
//! ## Resilience
//!
//! A transient characterization failure is retried under the cache's
//! [`RetryPolicy`] (bounded, exponential backoff, deterministic jitter).
//! When retries exhaust — or a device's profile keeps tripping the drift
//! threshold — the per-device [`CircuitBreaker`] opens and the cache
//! serves the **last known-good** profile with [`CacheOutcome::Stale`]
//! instead of failing or re-hammering the device. A stale RBMS table
//! still ranks states usefully (strengths are stable across windows,
//! §6.1), so mitigation degrades gracefully; requests only fail with
//! [`CacheError::Unavailable`] when there is no last-good profile at all.

use crate::breaker::{BreakerConfig, CircuitBreaker, RetryPolicy};
use crate::overload::RetryBudget;
use crate::protocol::{CacheOutcome, MethodKind};
use crate::replicate::ProfileReplicator;
use invmeas::journal::{
    characterize_journaled_with_hook, export_journal, install_journal, CharSpec, JournalError,
    JournalStats,
};
use invmeas::profile_io::{install_profile_text, quarantine_profile, ProfileError, ProfileMeta};
use invmeas::RbmsTable;
use invmeas_faults::{Fault, FaultInjector, FaultSite, NoFaults};
use qmetrics::ServiceCounters;
use qnoise::{drift_score, DeviceModel, NoisyExecutor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks a cache mutex, tolerating poison: an injected (or real) panic
/// mid-measure must not wedge the slot for every later request for that
/// key. The guarded state stays consistent across a panic because
/// [`ProfileCache::install`] only runs after a measurement fully
/// succeeds — a poisoned slot simply holds whatever was installed last.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[derive(Debug, Clone)]
struct Entry {
    window: u64,
    shots: u64,
    snapshot: DeviceModel,
    table: RbmsTable,
}

/// One key's cached state: the entry serving fresh hits plus the last
/// profile that was ever measured (or loaded) successfully, kept for
/// degraded serves while the breaker is open.
#[derive(Debug, Default)]
struct SlotState {
    current: Option<Entry>,
    last_good: Option<Entry>,
}

/// Cache configuration.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Base RNG seed for characterization runs.
    pub profile_seed: u64,
    /// Maximum [`drift_score`] against the profiled snapshot before an
    /// entry is considered stale (0.0 = any parameter change invalidates).
    pub drift_threshold: f64,
    /// Worker threads per characterization sweep.
    pub exec_threads: usize,
    /// Optional write-through persistence directory.
    pub profile_dir: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            profile_seed: 2019,
            drift_threshold: 0.0,
            exec_threads: 1,
            profile_dir: None,
        }
    }
}

/// Why the cache could not produce a profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// The request can never succeed (e.g. brute force beyond 14 qubits) —
    /// a client error, not a service degradation.
    Invalid(String),
    /// Characterization failed transiently, retries are exhausted, and no
    /// last-good profile exists to serve degraded.
    Unavailable(String),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Invalid(m) => write!(f, "{m}"),
            CacheError::Unavailable(m) => write!(f, "unavailable: {m}"),
        }
    }
}

impl std::error::Error for CacheError {}

/// A point-in-time summary of cache and breaker state for `health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheHealth {
    /// Keys holding a profile (fresh or last-good).
    pub entries: u64,
    /// Devices whose breaker is currently open.
    pub open_breakers: u64,
    /// Windows behind the current one of the oldest held profile
    /// (0 when empty or fully fresh).
    pub oldest_age_windows: u64,
}

/// Outcome of one measurement attempt, split by retryability.
enum MeasureError {
    /// Client/config error — retrying cannot help.
    Permanent(String),
    /// Worth retrying (injected or environmental).
    Transient(String),
}

/// A per-key slot: the outer `Arc<Mutex>` is what single-flights
/// concurrent misses for one `(device, method)` pair.
type Slot = Arc<Mutex<SlotState>>;

/// A concurrent profile cache. See the module docs for semantics.
#[derive(Debug)]
pub struct ProfileCache {
    config: CacheConfig,
    slots: Mutex<HashMap<(String, MethodKind), Slot>>,
    breakers: Mutex<HashMap<String, CircuitBreaker>>,
    breaker_config: BreakerConfig,
    retry: RetryPolicy,
    counters: Arc<ServiceCounters>,
    faults: Arc<dyn FaultInjector>,
    /// Mesh replication hook: when set, finished profiles and journal
    /// checkpoints are pushed to the device's follower nodes.
    replicator: Option<Arc<dyn ProfileReplicator>>,
    /// Node-wide retry budget: when set, every characterization retry
    /// must spend a token first (a denial serves stale immediately).
    retry_budget: Option<Arc<RetryBudget>>,
}

impl ProfileCache {
    /// Creates an empty cache with default retry/breaker tuning, private
    /// counters, and no fault injection.
    pub fn new(config: CacheConfig) -> Self {
        ProfileCache {
            config,
            slots: Mutex::new(HashMap::new()),
            breakers: Mutex::new(HashMap::new()),
            breaker_config: BreakerConfig::default(),
            retry: RetryPolicy::default(),
            counters: Arc::new(ServiceCounters::new()),
            faults: Arc::new(NoFaults),
            replicator: None,
            retry_budget: None,
        }
    }

    /// Shares the server's counter bundle so retries, degraded serves, and
    /// breaker trips land in the same status snapshot as everything else.
    #[must_use]
    pub fn with_counters(mut self, counters: Arc<ServiceCounters>) -> Self {
        self.counters = counters;
        self
    }

    /// Installs a fault injector consulted at [`FaultSite::Characterize`]
    /// (one arrival per actual measurement attempt) and threaded through
    /// profile I/O ([`FaultSite::ProfileWrite`] / [`FaultSite::ProfileRead`]).
    #[must_use]
    pub fn with_faults(mut self, faults: Arc<dyn FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the breaker tuning used for every device.
    #[must_use]
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker_config = breaker;
        self
    }

    /// Installs a mesh replicator: finished profiles (after persist) and
    /// journal checkpoints (after every append) are pushed to the
    /// device's followers. Requires a profile directory — replication
    /// payloads are the exact on-disk text.
    #[must_use]
    pub fn with_replicator(mut self, replicator: Arc<dyn ProfileReplicator>) -> Self {
        self.replicator = Some(replicator);
        self
    }

    /// Couples characterization retries to the node-wide [`RetryBudget`]:
    /// a retry that cannot spend a token is not attempted and the
    /// failure serves stale (or `Unavailable`) immediately. First
    /// attempts are never charged.
    #[must_use]
    pub fn with_retry_budget(mut self, budget: Arc<RetryBudget>) -> Self {
        self.retry_budget = Some(budget);
        self
    }

    /// Returns the profile for `(device, method)` in calibration window
    /// `window`, measuring it against `snapshot` only when no valid cached
    /// or persisted copy exists. The outcome reports which path served it;
    /// [`CacheOutcome::Stale`] means the breaker (or exhausted retries)
    /// forced a last-good serve and the response must carry
    /// `degraded: true`.
    ///
    /// # Errors
    ///
    /// [`CacheError::Invalid`] when the method cannot characterize this
    /// device (e.g. brute force beyond 14 qubits); [`CacheError::Unavailable`]
    /// when characterization failed and no last-good profile exists.
    pub fn get_or_measure(
        &self,
        device: &str,
        snapshot: &DeviceModel,
        window: u64,
        method: MethodKind,
        shots: u64,
    ) -> Result<(RbmsTable, CacheOutcome), CacheError> {
        assert!(shots > 0, "characterization needs a trial budget");
        let slot = {
            let mut slots = lock(&self.slots);
            Arc::clone(
                slots
                    .entry((device.to_string(), method))
                    .or_insert_with(|| Arc::new(Mutex::new(SlotState::default()))),
            )
        };
        // Per-key critical section: the winner of a concurrent burst
        // measures while the rest block here, then observe a fresh entry.
        let mut state = lock(&slot);
        if let Some(e) = state.current.as_ref() {
            let fresh = e.window == window
                && e.shots == shots
                && drift_score(&e.snapshot, snapshot) <= self.config.drift_threshold;
            if fresh {
                self.with_breaker_of(device, |b| b.note_fresh_hit());
                return Ok((e.table.clone(), CacheOutcome::Hit));
            }
            // A drift trip is calibration moving *within* a window — the
            // profile went bad faster than window keying predicts. Window
            // advances and budget changes are normal invalidation.
            let drift_trip = e.window == window
                && e.shots == shots
                && self.config.drift_threshold > 0.0
                && drift_score(&e.snapshot, snapshot) > self.config.drift_threshold;
            if drift_trip && self.with_breaker_of(device, |b| b.record_drift_trip()) {
                self.counters.inc_breaker_trip();
            }
        }

        // Open breaker: serve the last good profile degraded instead of
        // attempting characterization (each serve counts toward cooldown).
        if !self.with_breaker_of(device, |b| b.allow_attempt()) {
            return self.serve_stale(&mut state, "circuit breaker open");
        }

        if let Some(table) = self.load_persisted(device, method, window, snapshot) {
            self.install(&mut state, window, shots, snapshot, &table);
            self.with_breaker_of(device, |b| b.record_success());
            return Ok((table, CacheOutcome::DiskHit));
        }

        // Bounded retry around transient characterization failures, with a
        // deterministic backoff schedule (seeded jitter, no RNG state).
        let mut attempt = 0u32;
        let failure = loop {
            match self.measure(device, snapshot, window, method, shots) {
                Ok((table, stats)) => {
                    if let Some(stats) = stats {
                        self.counters
                            .add_journal_checkpoints(stats.checkpoints_written);
                        if stats.resumed() {
                            self.counters.inc_resumed_job();
                        }
                    }
                    self.persist(device, snapshot, method, window, &table);
                    self.install(&mut state, window, shots, snapshot, &table);
                    self.with_breaker_of(device, |b| b.record_success());
                    return Ok((table, CacheOutcome::Miss));
                }
                Err(MeasureError::Permanent(m)) => return Err(CacheError::Invalid(m)),
                Err(MeasureError::Transient(m)) => {
                    if attempt >= self.retry.max_retries {
                        break m;
                    }
                    // The node-wide retry budget gates every retry: an
                    // empty bucket means the whole mesh is already
                    // retrying too much, so this failure degrades now
                    // instead of adding to the storm.
                    if let Some(budget) = self.retry_budget.as_ref() {
                        if !budget.try_spend() {
                            break m;
                        }
                    }
                    self.counters.inc_retry();
                    let ms = self
                        .retry
                        .backoff_ms(self.config.profile_seed, device, attempt);
                    if ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                    attempt += 1;
                }
            }
        };

        if self.with_breaker_of(device, |b| b.record_failure()) {
            self.counters.inc_breaker_trip();
        }
        self.serve_stale(&mut state, &failure)
    }

    /// Serves the last-good profile degraded, or fails `Unavailable`.
    fn serve_stale(
        &self,
        state: &mut SlotState,
        reason: &str,
    ) -> Result<(RbmsTable, CacheOutcome), CacheError> {
        match state.last_good.as_ref() {
            Some(e) => {
                self.counters.inc_degraded_response();
                Ok((e.table.clone(), CacheOutcome::Stale))
            }
            None => Err(CacheError::Unavailable(format!(
                "{reason} and no last-good profile is cached"
            ))),
        }
    }

    fn install(
        &self,
        state: &mut SlotState,
        window: u64,
        shots: u64,
        snapshot: &DeviceModel,
        table: &RbmsTable,
    ) {
        let entry = Entry {
            window,
            shots,
            snapshot: snapshot.clone(),
            table: table.clone(),
        };
        state.current = Some(entry.clone());
        state.last_good = Some(entry);
    }

    /// Runs `f` against the device's breaker (created closed on first use).
    fn with_breaker_of<T>(&self, device: &str, f: impl FnOnce(&mut CircuitBreaker) -> T) -> T {
        let mut breakers = lock(&self.breakers);
        let b = breakers
            .entry(device.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.breaker_config));
        f(b)
    }

    /// Summarizes cache and breaker state relative to `current_window`.
    pub fn health(&self, current_window: u64) -> CacheHealth {
        let open_breakers = {
            let breakers = lock(&self.breakers);
            breakers.values().filter(|b| b.is_open()).count() as u64
        };
        let slots: Vec<Slot> = {
            let map = lock(&self.slots);
            map.values().map(Arc::clone).collect()
        };
        let mut entries = 0u64;
        let mut oldest = 0u64;
        for slot in slots {
            let state = lock(&slot);
            if let Some(e) = state.current.as_ref().or(state.last_good.as_ref()) {
                entries += 1;
                oldest = oldest.max(current_window.saturating_sub(e.window));
            }
        }
        CacheHealth {
            entries,
            open_breakers,
            oldest_age_windows: oldest,
        }
    }

    /// Measures a profile with a seed that is a pure function of the
    /// configuration and the (device, method, window) key. Registers one
    /// [`FaultSite::Characterize`] arrival per call.
    ///
    /// With a profile directory configured the measurement runs through
    /// the journaled characterization path, checkpointing each completed
    /// work unit to `<profile path>.journal`: a worker that panics (or a
    /// process that dies) mid-characterization leaves the journal behind,
    /// and the retry — or the next process — resumes from it
    /// bit-identically instead of re-measuring from scratch. The second
    /// element of the result reports what the journal did.
    fn measure(
        &self,
        device: &str,
        snapshot: &DeviceModel,
        window: u64,
        method: MethodKind,
        shots: u64,
    ) -> Result<(RbmsTable, Option<JournalStats>), MeasureError> {
        let n = snapshot.n_qubits();
        if method == MethodKind::Brute && n > 14 {
            return Err(MeasureError::Permanent(format!(
                "brute-force characterization limited to 14 qubits ({n} requested); use awct"
            )));
        }
        if let Some(f) = self.faults.check(FaultSite::Characterize) {
            f.apply_latency();
            match f {
                Fault::Error(m) => return Err(MeasureError::Transient(m)),
                Fault::Panic(m) => panic!("{m}"),
                _ => {}
            }
        }
        let exec = NoisyExecutor::from_device(snapshot).with_threads(self.config.exec_threads);
        let seed = self.char_seed(snapshot.name(), method, window);
        if let Some(journal) = self.journal_path(device, method, window) {
            if let Some(dir) = journal.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let spec = self.char_spec(device, n, method, shots, seed);
            // With a replicator installed, every checkpoint append ships
            // the whole journal to the followers — so a node that dies
            // mid-characterization leaves its last completed unit on the
            // survivors' disks, and the promoted follower resumes from
            // there bit-identically instead of starting over.
            let hook = self.replicator.as_ref().map(|r| {
                let journal = journal.clone();
                let device = device.to_string();
                move |_checkpoints: u64| {
                    if let Ok(Some(text)) = export_journal(&journal) {
                        r.replicate_journal(&device, method, window, &text);
                    }
                }
            });
            return match characterize_journaled_with_hook(
                &exec,
                &spec,
                Some(&journal),
                self.faults.as_ref(),
                hook.as_ref().map(|h| h as &(dyn Fn(u64) + Sync)),
            ) {
                Ok((table, stats)) => Ok((table, Some(stats))),
                // A journal write failure is transient: the checkpoints
                // already on disk survive, so the retry resumes them.
                Err(JournalError::Io(e)) => Err(MeasureError::Transient(format!(
                    "journal write failed: {e}"
                ))),
                Err(JournalError::Invalid(m)) => Err(MeasureError::Permanent(m)),
            };
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let table = match method {
            MethodKind::Brute => RbmsTable::brute_force(&exec, shots, &mut rng),
            MethodKind::Esct => RbmsTable::esct(&exec, shots, &mut rng),
            MethodKind::Awct => {
                RbmsTable::awct(&exec, 4.min(n), 2.min(n.saturating_sub(1)), shots, &mut rng)
            }
        };
        Ok((table, None))
    }

    /// The characterization seed: a pure function of the configuration and
    /// the (device, method, window) key — never of the requesting client.
    fn char_seed(&self, device_name: &str, method: MethodKind, window: u64) -> u64 {
        self.config
            .profile_seed
            .wrapping_mul(0x100000001b3)
            .wrapping_add(fnv(device_name))
            .wrapping_add(fnv(method.as_str()))
            .wrapping_add(window)
    }

    /// The journaled-characterization job for this key.
    fn char_spec(
        &self,
        device: &str,
        n: usize,
        method: MethodKind,
        shots: u64,
        seed: u64,
    ) -> CharSpec {
        match method {
            MethodKind::Brute => CharSpec::brute(device, n, shots, seed),
            MethodKind::Esct => CharSpec::esct(device, n, shots, seed),
            MethodKind::Awct => {
                CharSpec::awct(device, n, 4.min(n), 2.min(n.saturating_sub(1)), shots, seed)
            }
        }
    }

    fn profile_path(&self, device: &str, method: MethodKind, window: u64) -> Option<PathBuf> {
        let dir = self.config.profile_dir.as_ref()?;
        let sane: String = device
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        Some(dir.join(format!("{sane}-{}-w{window}.rbms", method.as_str())))
    }

    /// The in-flight journal sibling of this key's profile file.
    fn journal_path(&self, device: &str, method: MethodKind, window: u64) -> Option<PathBuf> {
        let path = self.profile_path(device, method, window)?;
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(".journal");
        Some(path.with_file_name(name))
    }

    fn load_persisted(
        &self,
        device: &str,
        method: MethodKind,
        window: u64,
        snapshot: &DeviceModel,
    ) -> Option<RbmsTable> {
        let path = self.profile_path(device, method, window)?;
        if !path.exists() {
            return None;
        }
        // A damaged or unreadable file (injected or real) is not fatal:
        // the caller falls through to a fresh measurement. But damage and
        // unreadability are handled differently — a file that *parses
        // wrong* or fails its checksum is evidence of corruption, so it is
        // quarantined aside (never deleted) where an operator can inspect
        // it; a file that merely cannot be read right now is left alone.
        let table = match RbmsTable::load_with(&path, self.faults.as_ref()) {
            Ok(table) => table,
            Err(ProfileError::Io(_)) => return None,
            Err(ProfileError::Parse { .. } | ProfileError::Checksum { .. }) => {
                if quarantine_profile(&path).is_ok() {
                    self.counters.inc_profile_quarantined();
                }
                return None;
            }
        };
        (table.width() == snapshot.n_qubits()).then_some(table)
    }

    fn persist(
        &self,
        device: &str,
        snapshot: &DeviceModel,
        method: MethodKind,
        window: u64,
        table: &RbmsTable,
    ) {
        if let Some(path) = self.profile_path(device, method, window) {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let n = snapshot.n_qubits();
            let meta = ProfileMeta {
                device: device.to_string(),
                method: method.as_str().to_string(),
                seed: self.char_seed(snapshot.name(), method, window),
                window: if method == MethodKind::Awct {
                    4.min(n)
                } else {
                    0
                },
            };
            // Best effort: a full disk (or an injected torn write) must not
            // fail the request — and the crash-safe writer guarantees the
            // final path never holds a partial profile. The characterization
            // journal outlives a failed save on purpose: until the profile
            // is durably on disk, the checkpoints are the recovery story.
            if table
                .save_v2_with(&path, &meta, self.faults.as_ref())
                .is_ok()
            {
                if let Some(journal) = self.journal_path(device, method, window) {
                    let _ = std::fs::remove_file(journal);
                }
                // Ship the finished profile to the followers as the exact
                // bytes just persisted, so every replica is `cmp`-equal
                // to the owner's file.
                if let Some(r) = self.replicator.as_ref() {
                    if let Ok(text) = std::fs::read_to_string(&path) {
                        r.replicate_profile(device, method, window, &text);
                    }
                }
            }
        }
    }

    /// Installs a replicated `rbms v2` profile pushed by the owning node:
    /// verifies the payload checksum *before* any byte reaches the final
    /// path, then writes the raw received text so the replica is
    /// byte-identical to the sender's file. A corrupt payload is rejected
    /// without touching local state (no quarantine — nothing local is
    /// suspect, the wire copy simply failed verification).
    ///
    /// # Errors
    ///
    /// A human-readable reason: no profile directory, a failed checksum,
    /// or an I/O failure.
    pub fn install_replica_profile(
        &self,
        device: &str,
        method: MethodKind,
        window: u64,
        text: &str,
    ) -> Result<(), String> {
        let path = self
            .profile_path(device, method, window)
            .ok_or_else(|| "this node has no profile directory".to_string())?;
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        install_profile_text(&path, text).map_err(|e| e.to_string())?;
        // The profile supersedes any in-flight journal replica for the
        // same key, exactly as a local persist would.
        if let Some(journal) = self.journal_path(device, method, window) {
            let _ = std::fs::remove_file(journal);
        }
        self.counters.inc_replication_write();
        Ok(())
    }

    /// Installs a replicated `charjournal v2` checkpoint file, verifying
    /// its per-line checksums first. The journal lands at exactly the
    /// path a local characterization would use, so a later
    /// characterization of this key on this node resumes it.
    ///
    /// # Errors
    ///
    /// A human-readable reason: no profile directory, an unparseable
    /// payload, or an I/O failure.
    pub fn install_replica_journal(
        &self,
        device: &str,
        method: MethodKind,
        window: u64,
        text: &str,
    ) -> Result<u64, String> {
        let path = self
            .journal_path(device, method, window)
            .ok_or_else(|| "this node has no profile directory".to_string())?;
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let units = install_journal(&path, text).map_err(|e| e.to_string())?;
        self.counters.inc_replication_write();
        Ok(units)
    }

    /// The exact persisted profile text for a key, if any — what a
    /// follower re-fetches after rejecting a corrupt replica.
    pub fn read_profile_text(
        &self,
        device: &str,
        method: MethodKind,
        window: u64,
    ) -> Option<String> {
        let path = self.profile_path(device, method, window)?;
        std::fs::read_to_string(path).ok()
    }

    /// Re-ships every persisted profile through the replicator — the
    /// heal-path resync. Called when a peer transitions dead → alive:
    /// the peer may have missed any number of replica pushes while
    /// unreachable, and re-shipping the exact on-disk bytes is what
    /// re-converges its copies `cmp`-equal after the partition heals.
    ///
    /// Keys are recovered from the `{device}-{method}-w{window}.rbms`
    /// filenames, which round-trip for real device names (alphanumerics
    /// and dashes — the sanitizer is the identity on those). Files are
    /// shipped in sorted name order so replays are deterministic.
    pub fn reship_profiles(&self) {
        let (Some(dir), Some(replicator)) =
            (self.config.profile_dir.as_ref(), self.replicator.as_ref())
        else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "rbms"))
            .collect();
        files.sort();
        for path in files {
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Some((rest, wtag)) = stem.rsplit_once("-w") else {
                continue;
            };
            let Ok(window) = wtag.parse::<u64>() else {
                continue;
            };
            let Some((device, method)) = rest.rsplit_once('-') else {
                continue;
            };
            let method = match method {
                "brute" => MethodKind::Brute,
                "esct" => MethodKind::Esct,
                "awct" => MethodKind::Awct,
                _ => continue,
            };
            if let Ok(text) = std::fs::read_to_string(&path) {
                replicator.replicate_profile(device, method, window, &text);
            }
        }
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use invmeas_faults::FaultPlan;
    use qnoise::CalibrationDrift;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn cache() -> ProfileCache {
        ProfileCache::new(CacheConfig::default())
    }

    /// A retry policy with no backoff sleeps, for fast tests.
    fn instant_retry(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_backoff_ms: 0,
        }
    }

    #[test]
    fn second_lookup_hits_and_matches() {
        let dev = DeviceModel::ibmqx2();
        let c = cache();
        let (t1, o1) = c
            .get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 64)
            .unwrap();
        let (t2, o2) = c
            .get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 64)
            .unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Hit);
        assert_eq!(t1, t2);
    }

    #[test]
    fn window_advance_invalidates() {
        let drift = CalibrationDrift::new(DeviceModel::ibmqx2(), 0.05);
        let c = cache();
        let (_, o1) = c
            .get_or_measure("ibmqx2", &drift.window(0), 0, MethodKind::Esct, 256)
            .unwrap();
        let (_, o2) = c
            .get_or_measure("ibmqx2", &drift.window(1), 1, MethodKind::Esct, 256)
            .unwrap();
        let (_, o3) = c
            .get_or_measure("ibmqx2", &drift.window(1), 1, MethodKind::Esct, 256)
            .unwrap();
        assert_eq!(
            (o1, o2, o3),
            (CacheOutcome::Miss, CacheOutcome::Miss, CacheOutcome::Hit)
        );
    }

    #[test]
    fn drift_score_beyond_threshold_invalidates_within_a_window() {
        // Same window index, but the device recalibrated underneath us:
        // the score check catches what window keying cannot.
        let nominal = DeviceModel::ibmqx2();
        let recalibrated = CalibrationDrift::new(nominal.clone(), 0.2).window(17);
        let c = ProfileCache::new(CacheConfig {
            drift_threshold: 0.01,
            ..CacheConfig::default()
        });
        let (_, o1) = c
            .get_or_measure("ibmqx2", &nominal, 4, MethodKind::Esct, 128)
            .unwrap();
        let (_, o2) = c
            .get_or_measure("ibmqx2", &recalibrated, 4, MethodKind::Esct, 128)
            .unwrap();
        assert_eq!((o1, o2), (CacheOutcome::Miss, CacheOutcome::Miss));
        // And a small perturbation under a loose threshold stays a hit.
        let loose = ProfileCache::new(CacheConfig {
            drift_threshold: 0.5,
            ..CacheConfig::default()
        });
        let (_, _) = loose
            .get_or_measure("ibmqx2", &nominal, 4, MethodKind::Esct, 128)
            .unwrap();
        let (_, o) = loose
            .get_or_measure("ibmqx2", &recalibrated, 4, MethodKind::Esct, 128)
            .unwrap();
        assert_eq!(o, CacheOutcome::Hit);
    }

    #[test]
    fn concurrent_burst_measures_once() {
        let dev = DeviceModel::ibmqx4();
        let c = std::sync::Arc::new(cache());
        let misses = std::sync::Arc::new(AtomicUsize::new(0));
        let tables: Vec<RbmsTable> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let c = std::sync::Arc::clone(&c);
                    let misses = std::sync::Arc::clone(&misses);
                    let dev = &dev;
                    scope.spawn(move || {
                        let (t, o) = c
                            .get_or_measure("ibmqx4", dev, 0, MethodKind::Brute, 32)
                            .unwrap();
                        if o == CacheOutcome::Miss {
                            misses.fetch_add(1, Ordering::SeqCst);
                        }
                        t
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            misses.load(Ordering::SeqCst),
            1,
            "exactly one characterization"
        );
        for t in &tables[1..] {
            assert_eq!(t, &tables[0], "every requester sees the same table");
        }
    }

    #[test]
    fn persisted_profiles_warm_new_instances() {
        let dir = std::env::temp_dir().join(format!("invmeas-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CacheConfig {
            profile_dir: Some(dir.clone()),
            ..CacheConfig::default()
        };
        let dev = DeviceModel::ibmqx2();
        let first = ProfileCache::new(cfg.clone());
        let (t1, o1) = first
            .get_or_measure("ibmqx2", &dev, 2, MethodKind::Brute, 64)
            .unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        assert!(dir.join("ibmqx2-brute-w2.rbms").exists());

        let second = ProfileCache::new(cfg);
        let (t2, o2) = second
            .get_or_measure("ibmqx2", &dev, 2, MethodKind::Brute, 64)
            .unwrap();
        assert_eq!(o2, CacheOutcome::DiskHit);
        for (a, b) in t1.strengths().iter().zip(t2.strengths()) {
            assert!((a - b).abs() < 1e-12);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn brute_force_width_guard() {
        let wide = DeviceModel::ideal(15);
        let e = cache()
            .get_or_measure("ideal-15", &wide, 0, MethodKind::Brute, 8)
            .unwrap_err();
        assert!(matches!(e, CacheError::Invalid(_)), "{e:?}");
        assert!(e.to_string().contains("limited to 14"), "{e}");
    }

    #[test]
    fn transient_failure_is_retried_then_succeeds() {
        let dev = DeviceModel::ibmqx2();
        let plan = Arc::new(
            FaultPlan::new(1)
                .on_nth(FaultSite::Characterize, 1, Fault::Error("flaky".into()))
                .on_nth(FaultSite::Characterize, 2, Fault::Error("flaky".into())),
        );
        let counters = Arc::new(ServiceCounters::new());
        let c = ProfileCache::new(CacheConfig::default())
            .with_faults(plan)
            .with_retry(instant_retry(2))
            .with_counters(Arc::clone(&counters));
        let (_, o) = c
            .get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 32)
            .unwrap();
        assert_eq!(o, CacheOutcome::Miss, "third attempt lands");
        assert_eq!(counters.snapshot().retries, 2);
        assert_eq!(counters.snapshot().breaker_trips, 0);
    }

    #[test]
    fn exhausted_retries_without_last_good_is_unavailable() {
        let dev = DeviceModel::ibmqx2();
        let plan = Arc::new(
            FaultPlan::new(2)
                .on_nth(FaultSite::Characterize, 1, Fault::Error("down".into()))
                .on_nth(FaultSite::Characterize, 2, Fault::Error("down".into())),
        );
        let c = ProfileCache::new(CacheConfig::default())
            .with_faults(plan)
            .with_retry(instant_retry(1));
        let e = c
            .get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 32)
            .unwrap_err();
        assert!(matches!(e, CacheError::Unavailable(_)), "{e:?}");
        assert!(e.to_string().contains("down"), "{e}");
    }

    #[test]
    fn breaker_opens_and_serves_last_good_degraded() {
        let dev = DeviceModel::ibmqx2();
        // Warm a last-good profile (arrival 1 is clean), then fail every
        // subsequent characterization attempt.
        let mut plan = FaultPlan::new(3);
        for arrival in 2..40 {
            plan = plan.on_nth(
                FaultSite::Characterize,
                arrival,
                Fault::Error("device offline".into()),
            );
        }
        let plan = Arc::new(plan);
        let counters = Arc::new(ServiceCounters::new());
        let c = ProfileCache::new(CacheConfig::default())
            .with_faults(Arc::clone(&plan) as Arc<dyn FaultInjector>)
            .with_retry(instant_retry(0))
            .with_breaker(BreakerConfig {
                failure_threshold: 2,
                drift_trip_threshold: 4,
                cooldown: 3,
            })
            .with_counters(Arc::clone(&counters));

        let (warm, o) = c
            .get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 32)
            .unwrap();
        assert_eq!(o, CacheOutcome::Miss);

        // Window advances force re-measures that now fail. The first two
        // failures serve stale (breaker trips on the second); after that
        // the open breaker serves stale without attempting at all. Stop
        // one serve short of the cooldown so the breaker is still open.
        let mut stale_serves = 0;
        for w in 1..=4 {
            let (t, o) = c
                .get_or_measure("ibmqx2", &dev, w, MethodKind::Brute, 32)
                .unwrap();
            assert_eq!(o, CacheOutcome::Stale, "window {w}");
            assert_eq!(t, warm, "stale serve returns the last good table");
            stale_serves += 1;
        }
        let s = counters.snapshot();
        assert_eq!(s.degraded_responses, stale_serves);
        assert_eq!(s.breaker_trips, 1);
        // Attempts stop once the breaker opens: 1 warm + 2 failed = 3
        // arrivals, the open-breaker serves add none until the cooldown.
        assert_eq!(plan.arrivals(FaultSite::Characterize), 3);
        let h = c.health(4);
        assert_eq!(h.open_breakers, 1);
        assert_eq!(h.entries, 1);
        assert_eq!(h.oldest_age_windows, 4);
    }

    #[test]
    fn half_open_probe_recovers_after_cooldown() {
        let dev = DeviceModel::ibmqx2();
        // Arrival 1 clean (warm), arrivals 2-3 fail (trip), everything
        // after succeeds — so the half-open probe closes the breaker.
        let plan = FaultPlan::new(4)
            .on_nth(FaultSite::Characterize, 2, Fault::Error("blip".into()))
            .on_nth(FaultSite::Characterize, 3, Fault::Error("blip".into()));
        let c = ProfileCache::new(CacheConfig::default())
            .with_faults(Arc::new(plan))
            .with_retry(instant_retry(0))
            .with_breaker(BreakerConfig {
                failure_threshold: 2,
                drift_trip_threshold: 4,
                cooldown: 2,
            });

        assert_eq!(
            c.get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 32)
                .unwrap()
                .1,
            CacheOutcome::Miss
        );
        // Two failing windows trip the breaker (stale serves).
        for w in [1, 2] {
            assert_eq!(
                c.get_or_measure("ibmqx2", &dev, w, MethodKind::Brute, 32)
                    .unwrap()
                    .1,
                CacheOutcome::Stale
            );
        }
        assert_eq!(c.health(2).open_breakers, 1);
        // Cooldown: two more degraded serves…
        for w in [3, 4] {
            assert_eq!(
                c.get_or_measure("ibmqx2", &dev, w, MethodKind::Brute, 32)
                    .unwrap()
                    .1,
                CacheOutcome::Stale
            );
        }
        // …then the probe runs, succeeds, and the breaker closes.
        assert_eq!(
            c.get_or_measure("ibmqx2", &dev, 5, MethodKind::Brute, 32)
                .unwrap()
                .1,
            CacheOutcome::Miss
        );
        assert_eq!(c.health(5).open_breakers, 0);
    }

    #[test]
    fn damaged_persisted_profile_is_quarantined_not_deleted() {
        let dir = std::env::temp_dir().join(format!(
            "invmeas-cache-quarantine-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CacheConfig {
            profile_dir: Some(dir.clone()),
            ..CacheConfig::default()
        };
        let dev = DeviceModel::ibmqx2();
        ProfileCache::new(cfg.clone())
            .get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 64)
            .unwrap();
        // Flip one byte of the persisted profile — on-disk rot.
        let path = dir.join("ibmqx2-brute-w0.rbms");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        // A fresh instance detects the checksum failure, quarantines the
        // file aside, and re-measures.
        let counters = Arc::new(ServiceCounters::new());
        let second = ProfileCache::new(cfg).with_counters(Arc::clone(&counters));
        let (_, o) = second
            .get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 64)
            .unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        assert_eq!(counters.snapshot().profiles_quarantined, 1);
        // The damaged bytes survive, byte-for-byte, at the quarantine path…
        let quarantined = dir.join("ibmqx2-brute-w0.rbms.quarantined");
        assert_eq!(std::fs::read(&quarantined).unwrap(), bytes);
        // …and the re-measured profile replaced the original.
        assert!(RbmsTable::load(&path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_write_resumes_on_retry_bit_identically() {
        let base =
            std::env::temp_dir().join(format!("invmeas-cache-journal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let dev = DeviceModel::ibmqx2();
        let cfg_for = |tag: &str| CacheConfig {
            profile_dir: Some(base.join(tag)),
            ..CacheConfig::default()
        };
        // Uninterrupted journaled run (separate directory, same seed
        // derivation) is the baseline.
        let (baseline, _) = ProfileCache::new(cfg_for("clean"))
            .get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 64)
            .unwrap();

        // The faulted instance tears the second journal checkpoint: the
        // measurement fails mid-characterization, and the retry resumes
        // the surviving checkpoints instead of starting over.
        let plan = Arc::new(FaultPlan::new(7).on_nth(FaultSite::JournalWrite, 2, Fault::Torn));
        let counters = Arc::new(ServiceCounters::new());
        let c = ProfileCache::new(cfg_for("torn"))
            .with_faults(plan)
            .with_retry(instant_retry(1))
            .with_counters(Arc::clone(&counters));
        let (table, o) = c
            .get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 64)
            .unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        assert_eq!(
            table, baseline,
            "resumed run must match the uninterrupted one"
        );
        let s = counters.snapshot();
        assert_eq!(s.retries, 1);
        assert_eq!(s.resumed_jobs, 1, "the retry resumed the in-flight journal");
        assert!(s.journal_checkpoints > 0);
        // Once the profile is durably persisted, the journal is gone.
        assert!(base.join("torn").join("ibmqx2-brute-w0.rbms").exists());
        assert!(!base
            .join("torn")
            .join("ibmqx2-brute-w0.rbms.journal")
            .exists());
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn panic_mid_journal_neither_wedges_the_slot_nor_loses_checkpoints() {
        let base = std::env::temp_dir().join(format!(
            "invmeas-cache-panic-journal-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        let dev = DeviceModel::ibmqx2();
        let cfg_for = |tag: &str| CacheConfig {
            profile_dir: Some(base.join(tag)),
            ..CacheConfig::default()
        };
        let (baseline, _) = ProfileCache::new(cfg_for("clean"))
            .get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 64)
            .unwrap();

        // A panic mid-measure (injected at the third checkpoint) unwinds
        // while the slot mutex is held, poisoning it.
        let plan = Arc::new(FaultPlan::new(8).on_nth(
            FaultSite::JournalWrite,
            3,
            Fault::Panic("worker crashed mid-characterization".into()),
        ));
        let counters = Arc::new(ServiceCounters::new());
        let c = ProfileCache::new(cfg_for("panic"))
            .with_faults(plan)
            .with_counters(Arc::clone(&counters));
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 64)
        }));
        assert!(died.is_err(), "scripted panic did not fire");

        // The next request tolerates the poisoned slot, resumes the two
        // surviving checkpoints, and lands the same table as a run that
        // never crashed.
        let (table, o) = c
            .get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 64)
            .unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        assert_eq!(table, baseline);
        assert_eq!(counters.snapshot().resumed_jobs, 1);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn corrupt_persisted_profile_falls_through_to_measurement() {
        let dir =
            std::env::temp_dir().join(format!("invmeas-cache-corrupt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CacheConfig {
            profile_dir: Some(dir.clone()),
            ..CacheConfig::default()
        };
        let dev = DeviceModel::ibmqx2();
        // Instance 1 persists a profile cleanly.
        let first = ProfileCache::new(cfg.clone());
        first
            .get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 64)
            .unwrap();
        // Instance 2's first disk read is corrupted: it must re-measure,
        // not mis-load.
        let plan = Arc::new(FaultPlan::new(5).on_nth(FaultSite::ProfileRead, 1, Fault::Corrupt));
        let second = ProfileCache::new(cfg).with_faults(plan);
        let (_, o) = second
            .get_or_measure("ibmqx2", &dev, 0, MethodKind::Brute, 64)
            .unwrap();
        assert_eq!(
            o,
            CacheOutcome::Miss,
            "corrupt read falls back to measuring"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
