//! A blocking line-protocol client, used by `invmeas submit` and tests.
//!
//! Hardening (see `DESIGN.md` §12): every connection carries a default
//! read/write timeout so a hung server cannot wedge the caller forever —
//! and the same bound applies to the TCP **connect** itself, because a
//! partitioned host (no RST coming back) would otherwise block the
//! caller for the OS SYN-retry window (~2 minutes on Linux). And
//! [`Client::request`] transparently reconnects **once** when the
//! server dropped the connection between requests — but only retries
//! *idempotent* requests (`status`, `health`, `characterize`, and the
//! mesh's `replicate`/`fetch-profile`, which install or read checksummed
//! bytes and are safe to repeat). A `submit` that dies mid-flight is
//! never resent: the job may already be running, and replaying it would
//! double-spend shots.
//!
//! The client reuses one response-line buffer across requests (no
//! per-response allocation on the hot path) and can pipeline: send K
//! requests before reading K responses with [`Client::pipeline`], or use
//! the [`Client::send`]/[`Client::recv`] halves directly. The server
//! guarantees responses arrive in request order even when jobs complete
//! out of order, which is what makes the split safe.

use crate::net::{NetFabric, NetStream};
use crate::protocol::{ProtocolError, Request, Response};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

/// Default socket read/write timeout applied by [`Client::connect`] and
/// [`call`]. Override with [`Client::set_timeout`].
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// Pause before the single reconnect-and-retry of an idempotent request.
const RECONNECT_BACKOFF: Duration = Duration::from_millis(25);

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket trouble.
    Io(std::io::Error),
    /// The server sent something the protocol module cannot parse.
    Protocol(ProtocolError),
    /// The server closed the connection before responding.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Protocol(e) => write!(f, "client {e}"),
            ClientError::Closed => write!(f, "server closed the connection before responding"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            ClientError::Closed => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Whether an error means "the connection is gone" (and a reconnect might
/// help) as opposed to a timeout or protocol problem (where it won't —
/// retrying after a *timeout* could resubmit work that is still running).
fn is_disconnect(e: &ClientError) -> bool {
    match e {
        ClientError::Closed => true,
        ClientError::Io(io) => matches!(
            io.kind(),
            std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::NotConnected
        ),
        ClientError::Protocol(_) => false,
    }
}

/// Whether resending `request` after a reconnect is safe. Reads and cache
/// lookups are, as are replica installs and profile fetches (the same
/// checksummed bytes land twice, harmlessly); `submit`/`sleep` (work) and
/// `set-window`/`shutdown` (state changes we cannot confirm were applied)
/// are not.
fn is_idempotent(request: &Request) -> bool {
    matches!(
        request,
        Request::Status
            | Request::Health
            | Request::Characterize(_)
            | Request::Replicate(_)
            | Request::FetchProfile { .. }
    )
}

/// A persistent connection to a mitigation server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<NetStream>,
    writer: NetStream,
    /// The resolved peer, kept for transparent reconnects.
    peer: SocketAddr,
    /// Every seed address the caller supplied (always contains `peer`).
    /// Reconnects rotate through these, so a clustered client survives
    /// the death of the node it happened to be talking to.
    seeds: Vec<SocketAddr>,
    timeout: Option<Duration>,
    /// The transport every (re)dial goes through — the production
    /// direct fabric unless the caller routed this client through a
    /// fault-scripted one with [`Client::connect_via`].
    fabric: NetFabric,
    /// Reused across responses so steady-state requests allocate nothing
    /// for line assembly.
    line: String,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`) with
    /// [`DEFAULT_TIMEOUT`] on reads and writes.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_timeout(addr, DEFAULT_TIMEOUT)
    }

    /// Connects to `addr` with `timeout` bounding the TCP connect *and*
    /// every read/write. This is what node-to-node mesh calls use: a
    /// partitioned peer costs at most `timeout`, never the OS SYN-retry
    /// window.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (including a connect timeout).
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        Client::connect_via(&NetFabric::direct(), addr, Some(timeout))
    }

    /// Connects through an explicit [`NetFabric`], so mesh-internal
    /// clients (peer calls, replication, forwarded work) and chaos tests
    /// route every dial — including reconnects — through the fault
    /// fabric. `timeout` bounds the connect and every read/write as in
    /// [`Client::connect_timeout`]; `None` waits forever.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (including injected refusals).
    pub fn connect_via(
        fabric: &NetFabric,
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> Result<Client, ClientError> {
        let peer = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?;
        let stream = open(fabric, peer, timeout)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            peer,
            seeds: vec![peer],
            timeout,
            fabric: fabric.clone(),
            line: String::new(),
        })
    }

    /// Connects to the first reachable of several seed addresses (e.g.
    /// the members of a profile-mesh cluster), trying them in order. The
    /// whole list is retained: if the connected node later dies, the
    /// reconnect path rotates to the next seed instead of giving up.
    ///
    /// # Errors
    ///
    /// Returns the *last* connection failure when every seed is down, or
    /// an error when `addrs` is empty or nothing resolves.
    pub fn connect_seeds<S: AsRef<str>>(addrs: &[S]) -> Result<Client, ClientError> {
        let mut seeds = Vec::new();
        for a in addrs {
            if let Some(peer) = a.as_ref().to_socket_addrs()?.next() {
                seeds.push(peer);
            }
        }
        if seeds.is_empty() {
            return Err(ClientError::Io(std::io::Error::other(
                "no seed address resolved",
            )));
        }
        let fabric = NetFabric::direct();
        let mut last: Option<ClientError> = None;
        for peer in seeds.iter().copied() {
            match open(&fabric, peer, Some(DEFAULT_TIMEOUT)) {
                Ok(stream) => {
                    return Ok(Client {
                        reader: BufReader::new(stream.try_clone()?),
                        writer: stream,
                        peer,
                        seeds,
                        timeout: Some(DEFAULT_TIMEOUT),
                        fabric,
                        line: String::new(),
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one seed was tried"))
    }

    /// The address of the node this client is currently connected to.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Bounds how long [`Client::request`] waits for a response line
    /// (`None` waits forever).
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)?;
        self.timeout = timeout;
        Ok(())
    }

    /// Sends one request and blocks for its response. If the server
    /// dropped the connection and the request is idempotent, reconnects
    /// and retries exactly once.
    ///
    /// # Errors
    ///
    /// I/O failures, an early close, or an unparseable response line.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.request_once(request) {
            Err(e) if is_disconnect(&e) && is_idempotent(request) => {
                std::thread::sleep(RECONNECT_BACKOFF);
                self.reconnect()?;
                self.request_once(request)
            }
            other => other,
        }
    }

    fn request_once(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        self.recv()
    }

    /// Writes one request without waiting for its response (the pipelined
    /// send half). Pair every `send` with a later [`Client::recv`].
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        self.writer.write_all(request.to_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one response (the pipelined receive half), reusing the
    /// client's persistent line buffer.
    ///
    /// # Errors
    ///
    /// I/O failures, an early close, or an unparseable response line.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        self.line.clear();
        let n = self.reader.read_line(&mut self.line)?;
        if n == 0 {
            return Err(ClientError::Closed);
        }
        Response::from_line(self.line.trim_end()).map_err(ClientError::Protocol)
    }

    /// Like [`Client::recv`], but a read *timeout* leaves any partially
    /// received bytes buffered so a later call resumes assembling the
    /// same line. This is the slice-polling receive the mesh uses to wait
    /// on a long-running forwarded job: the caller loops on timeouts
    /// (checking liveness between slices) without corrupting a response
    /// that happened to arrive split across a slice boundary.
    ///
    /// Do not interleave with [`Client::recv`]/[`Client::request`] after
    /// a timeout: only this method knows the line buffer may hold a
    /// partial frame.
    ///
    /// # Errors
    ///
    /// I/O failures (including timeouts, which are retryable here), an
    /// early close, or an unparseable response line.
    pub fn recv_resumable(&mut self) -> Result<Response, ClientError> {
        // No clear on entry: `read_line` appends, so bytes banked by a
        // timed-out previous call stay and the line completes across
        // calls. (`BufRead::read_line` keeps already-read valid UTF-8 in
        // the buffer when the underlying read errors.)
        let n = self.reader.read_line(&mut self.line)?;
        if n == 0 {
            return Err(ClientError::Closed);
        }
        let response = Response::from_line(self.line.trim_end()).map_err(ClientError::Protocol);
        self.line.clear();
        response
    }

    /// Sends every request before reading any response — one round trip
    /// for the whole batch instead of one per request. Responses come
    /// back in request order. No reconnect-retry applies: after a
    /// mid-batch disconnect the caller cannot know which requests
    /// executed, so the error surfaces as-is.
    ///
    /// # Errors
    ///
    /// The first send or receive failure, which abandons the rest of the
    /// batch.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        for request in requests {
            self.send(request)?;
        }
        requests.iter().map(|_| self.recv()).collect()
    }

    fn reconnect(&mut self) -> Result<(), ClientError> {
        // Current peer first, then the remaining seeds in list order —
        // so a single-seed client behaves exactly as before, and a
        // multi-seed client rotates off a dead node.
        let start = self.seeds.iter().position(|s| *s == self.peer).unwrap_or(0);
        let mut last: Option<ClientError> = None;
        for k in 0..self.seeds.len() {
            let peer = self.seeds[(start + k) % self.seeds.len()];
            match open(&self.fabric, peer, self.timeout) {
                Ok(stream) => {
                    self.reader = BufReader::new(stream.try_clone()?);
                    self.writer = stream;
                    self.peer = peer;
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            ClientError::Io(std::io::Error::other("no seed address to reconnect to"))
        }))
    }

    /// Splits the connection into an independent send half and receive
    /// half so one thread can keep requests in flight while another
    /// drains responses as the server produces them. Responses still
    /// arrive in request order. Unlike [`Client::request`], split halves
    /// never reconnect: a mid-stream disconnect surfaces as an error on
    /// both halves.
    #[must_use]
    pub fn split(self) -> (ClientSender, ClientReader) {
        (
            ClientSender {
                writer: self.writer,
            },
            ClientReader {
                reader: self.reader,
                line: self.line,
            },
        )
    }
}

/// The write half of a [`Client::split`] connection.
#[derive(Debug)]
pub struct ClientSender {
    writer: NetStream,
}

impl ClientSender {
    /// Writes one request without waiting for its response; the paired
    /// [`ClientReader::recv`] observes it in order.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        self.writer.write_all(request.to_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }
}

/// The read half of a [`Client::split`] connection.
#[derive(Debug)]
pub struct ClientReader {
    reader: BufReader<NetStream>,
    line: String,
}

impl ClientReader {
    /// Reads the next in-order response.
    ///
    /// # Errors
    ///
    /// I/O failures, an early close, or an unparseable response line.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        self.line.clear();
        let n = self.reader.read_line(&mut self.line)?;
        if n == 0 {
            return Err(ClientError::Closed);
        }
        Response::from_line(self.line.trim_end()).map_err(ClientError::Protocol)
    }
}

fn open(
    fabric: &NetFabric,
    peer: SocketAddr,
    timeout: Option<Duration>,
) -> Result<NetStream, ClientError> {
    // The timeout bounds the connect too: a plain `TcpStream::connect`
    // against a partitioned host (packets silently dropped, no RST) blocks
    // for the OS SYN-retry window — minutes — which is exactly the hang
    // the read/write timeouts exist to prevent.
    let stream = fabric.dial(peer, timeout)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    Ok(stream)
}

/// One-shot convenience: connect (with [`DEFAULT_TIMEOUT`]), send
/// `request`, return the response.
///
/// # Errors
///
/// See [`Client::request`].
pub fn call(addr: impl ToSocketAddrs, request: &Request) -> Result<Response, ClientError> {
    Client::connect(addr)?.request(request)
}
