//! A blocking line-protocol client, used by `invmeas submit` and tests.

use crate::protocol::{ProtocolError, Request, Response};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket trouble.
    Io(std::io::Error),
    /// The server sent something the protocol module cannot parse.
    Protocol(ProtocolError),
    /// The server closed the connection before responding.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Protocol(e) => write!(f, "client {e}"),
            ClientError::Closed => write!(f, "server closed the connection before responding"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            ClientError::Closed => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A persistent connection to a mitigation server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Bounds how long [`Client::request`] waits for a response line.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout)?;
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// I/O failures, an early close, or an unparseable response line.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.writer.write_all(request.to_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Closed);
        }
        Response::from_line(line.trim_end()).map_err(ClientError::Protocol)
    }
}

/// One-shot convenience: connect, send `request`, return the response.
///
/// # Errors
///
/// See [`Client::request`].
pub fn call(addr: impl ToSocketAddrs, request: &Request) -> Result<Response, ClientError> {
    Client::connect(addr)?.request(request)
}
