//! The mitigation service's wire protocol: one JSON object per line.
//!
//! ## Grammar (v1)
//!
//! Every request and response is a single newline-free JSON object
//! terminated by `\n`. Requests carry an `op` discriminator and an
//! optional `v` protocol version (assumed `1` when absent; any other
//! value is rejected). Responses always carry `v`, `ok`, and — when
//! `ok` is true — echo the `op`.
//!
//! ```text
//! → {"v":1,"op":"submit","device":"ibmqx4","qasm":"...","policy":"sim","shots":4096,"seed":7}
//! ← {"v":1,"ok":true,"op":"submit","device":"ibmqx4","window":0,"policy":"sim",
//!    "shots":4096,"total":4096,"distinct":17,"cache":"none","latency_us":1234,
//!    "counts":{"00000":3901,"00001":88,...}}
//!
//! → {"op":"characterize","device":"ibmqx4","method":"brute","shots":512}
//! ← {"v":1,"ok":true,"op":"characterize","device":"ibmqx4","window":0,"method":"brute",
//!    "width":5,"trials":16384,"strongest":"00000","weakest":"11111","cache":"miss",
//!    "latency_us":5678}
//!
//! → {"op":"status"} / {"op":"set-window","window":3} / {"op":"sleep","ms":50} / {"op":"shutdown"}
//! ← {"v":1,"ok":false,"code":503,"error":"busy: queue is full"}   (backpressure)
//! ```
//!
//! The schema is versioned so a future `rbms v2`-style evolution can keep
//! old clients working: servers reject requests whose `v` they do not
//! speak with a `400` error naming the supported version.

use crate::json::Json;
use std::fmt;

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// Mitigation policy names on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Standard measurement.
    Baseline,
    /// Static Invert-and-Measure.
    Sim,
    /// Adaptive Invert-and-Measure (consults the profile cache).
    Aim,
}

impl PolicyKind {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            PolicyKind::Baseline => "baseline",
            PolicyKind::Sim => "sim",
            PolicyKind::Aim => "aim",
        }
    }

    fn parse(s: &str) -> Result<Self, ProtocolError> {
        match s {
            "baseline" => Ok(PolicyKind::Baseline),
            "sim" => Ok(PolicyKind::Sim),
            "aim" => Ok(PolicyKind::Aim),
            other => Err(ProtocolError::new(format!("unknown policy {other:?}"))),
        }
    }
}

/// Characterization technique names on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Prepare-and-measure every basis state.
    Brute,
    /// Equal-superposition characterization.
    Esct,
    /// Sliding-window characterization.
    Awct,
}

impl MethodKind {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            MethodKind::Brute => "brute",
            MethodKind::Esct => "esct",
            MethodKind::Awct => "awct",
        }
    }

    fn parse(s: &str) -> Result<Self, ProtocolError> {
        match s {
            "brute" => Ok(MethodKind::Brute),
            "esct" => Ok(MethodKind::Esct),
            "awct" => Ok(MethodKind::Awct),
            other => Err(ProtocolError::new(format!("unknown method {other:?}"))),
        }
    }
}

/// How a request's profile need was met.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the in-memory cache.
    Hit,
    /// Loaded from the persisted profile directory.
    DiskHit,
    /// Measured fresh (a characterization ran).
    Miss,
    /// Served the last known-good profile because fresh characterization
    /// is unavailable (circuit breaker open or retries exhausted). The
    /// response carries `degraded: true`.
    Stale,
    /// The request did not need a profile.
    None,
}

impl CacheOutcome {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::DiskHit => "disk-hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Stale => "stale",
            CacheOutcome::None => "none",
        }
    }

    fn parse(s: &str) -> Result<Self, ProtocolError> {
        match s {
            "hit" => Ok(CacheOutcome::Hit),
            "disk-hit" => Ok(CacheOutcome::DiskHit),
            "miss" => Ok(CacheOutcome::Miss),
            "stale" => Ok(CacheOutcome::Stale),
            "none" => Ok(CacheOutcome::None),
            other => Err(ProtocolError::new(format!(
                "unknown cache outcome {other:?}"
            ))),
        }
    }
}

/// A `submit` request: run one QASM program under a policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Device name (resolved server-side, e.g. `ibmqx4`).
    pub device: String,
    /// OpenQASM 2.0 source.
    pub qasm: String,
    /// Mitigation policy.
    pub policy: PolicyKind,
    /// Trial budget.
    pub shots: u64,
    /// RNG seed — responses are deterministic per seed.
    pub seed: u64,
    /// Expected correct output; enables PST/IST/ROCA in the response.
    pub expected: Option<String>,
    /// Queue-time budget in milliseconds: if the job has not *started* by
    /// this deadline it is answered `504` without consuming a worker slot.
    pub deadline_ms: Option<u64>,
    /// True when a cluster peer already routed this request here: the
    /// receiving node must serve it locally instead of forwarding again
    /// (loop protection). Absent on the wire when false.
    pub fwd: bool,
}

/// A `characterize` request: warm or refresh the profile cache.
///
/// The characterization RNG seed is *server* configuration, not a request
/// field: a burst of concurrent requests must converge on one profile
/// regardless of which request reaches the cache first.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeRequest {
    /// Device name.
    pub device: String,
    /// Technique.
    pub method: MethodKind,
    /// Trial budget (0 = server default).
    pub shots: u64,
    /// True when a cluster peer already routed this request here (see
    /// [`SubmitRequest::fwd`]).
    pub fwd: bool,
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a program.
    Submit(SubmitRequest),
    /// Measure (or fetch) a device profile.
    Characterize(CharacterizeRequest),
    /// Report queue, cache, and counter state.
    Status,
    /// Set the current calibration-window index (cache invalidation hook).
    /// On a clustered node the new window is broadcast to every member,
    /// so routed requests execute under the same window everywhere.
    SetWindow {
        /// The new window index.
        window: u64,
        /// True when a cluster peer already broadcast this change here:
        /// apply locally, do not re-broadcast (loop protection, exactly
        /// like [`SubmitRequest::fwd`]). Absent on the wire when false.
        fwd: bool,
    },
    /// Occupy a worker for `ms` milliseconds — a backpressure/testing aid.
    Sleep {
        /// Sleep duration in milliseconds (servers clamp this).
        ms: u64,
    },
    /// Liveness/degradation probe, answered inline (never queued).
    Health,
    /// Cluster routing table: members, liveness, and — when `device` is
    /// given — the owner/follower route for that device. Answered inline.
    ClusterMap {
        /// Device to route, if the caller wants a concrete route.
        device: Option<String>,
    },
    /// A profile and/or characterization-journal replica pushed by the
    /// owning node. Payloads are the exact on-disk text (`rbms v2` /
    /// `charjournal v2`, both checksummed) so the receiver can verify
    /// before trusting and store byte-identical copies.
    Replicate(ReplicateRequest),
    /// Fetch the persisted `rbms v2` profile text for a key — the
    /// re-fetch path a follower uses after rejecting a corrupt replica.
    FetchProfile {
        /// Device name.
        device: String,
        /// Technique.
        method: MethodKind,
        /// Calibration window.
        window: u64,
    },
    /// Drain in-flight jobs and stop the server.
    Shutdown,
}

/// A `replicate` push from the owning node to a follower.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicateRequest {
    /// Device name.
    pub device: String,
    /// Technique.
    pub method: MethodKind,
    /// Calibration window the payloads belong to.
    pub window: u64,
    /// Full `rbms v2` profile text, when a finished profile is shipped.
    pub profile: Option<String>,
    /// Full `charjournal v2` text, when a checkpoint is shipped.
    pub journal: Option<String>,
    /// Member index of the sender, so a follower that rejects a corrupt
    /// payload knows whom to re-fetch a clean copy from.
    pub from: u64,
}

impl Request {
    /// Serializes to a single wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut pairs = vec![("v", Json::int(PROTOCOL_VERSION))];
        match self {
            Request::Submit(r) => {
                pairs.push(("op", Json::str("submit")));
                pairs.push(("device", Json::str(&r.device)));
                pairs.push(("qasm", Json::str(&r.qasm)));
                pairs.push(("policy", Json::str(r.policy.as_str())));
                pairs.push(("shots", Json::int(r.shots)));
                pairs.push(("seed", Json::int(r.seed)));
                if let Some(e) = &r.expected {
                    pairs.push(("expected", Json::str(e)));
                }
                if let Some(d) = r.deadline_ms {
                    pairs.push(("deadline_ms", Json::int(d)));
                }
                if r.fwd {
                    pairs.push(("fwd", Json::Bool(true)));
                }
            }
            Request::Characterize(r) => {
                pairs.push(("op", Json::str("characterize")));
                pairs.push(("device", Json::str(&r.device)));
                pairs.push(("method", Json::str(r.method.as_str())));
                pairs.push(("shots", Json::int(r.shots)));
                if r.fwd {
                    pairs.push(("fwd", Json::Bool(true)));
                }
            }
            Request::ClusterMap { device } => {
                pairs.push(("op", Json::str("cluster-map")));
                if let Some(d) = device {
                    pairs.push(("device", Json::str(d)));
                }
            }
            Request::Replicate(r) => {
                pairs.push(("op", Json::str("replicate")));
                pairs.push(("device", Json::str(&r.device)));
                pairs.push(("method", Json::str(r.method.as_str())));
                pairs.push(("window", Json::int(r.window)));
                if let Some(p) = &r.profile {
                    pairs.push(("profile", Json::str(p)));
                }
                if let Some(j) = &r.journal {
                    pairs.push(("journal", Json::str(j)));
                }
                pairs.push(("from", Json::int(r.from)));
            }
            Request::FetchProfile {
                device,
                method,
                window,
            } => {
                pairs.push(("op", Json::str("fetch-profile")));
                pairs.push(("device", Json::str(device)));
                pairs.push(("method", Json::str(method.as_str())));
                pairs.push(("window", Json::int(*window)));
            }
            Request::Status => pairs.push(("op", Json::str("status"))),
            Request::SetWindow { window, fwd } => {
                pairs.push(("op", Json::str("set-window")));
                pairs.push(("window", Json::int(*window)));
                if *fwd {
                    pairs.push(("fwd", Json::Bool(true)));
                }
            }
            Request::Sleep { ms } => {
                pairs.push(("op", Json::str("sleep")));
                pairs.push(("ms", Json::int(*ms)));
            }
            Request::Health => pairs.push(("op", Json::str("health"))),
            Request::Shutdown => pairs.push(("op", Json::str("shutdown"))),
        }
        Json::obj(pairs).to_string()
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] on malformed JSON, an unsupported
    /// version, a missing/unknown `op`, or missing required fields.
    pub fn from_line(line: &str) -> Result<Request, ProtocolError> {
        let v = Json::parse(line).map_err(|e| ProtocolError::new(e.to_string()))?;
        check_version(&v)?;
        let op = require_str(&v, "op")?;
        match op {
            "submit" => Ok(Request::Submit(SubmitRequest {
                device: require_str(&v, "device")?.to_string(),
                qasm: require_str(&v, "qasm")?.to_string(),
                policy: PolicyKind::parse(opt_str(&v, "policy").unwrap_or("baseline"))?,
                shots: opt_u64(&v, "shots")?.unwrap_or(4096),
                seed: opt_u64(&v, "seed")?.unwrap_or(2019),
                expected: opt_str(&v, "expected").map(str::to_string),
                deadline_ms: opt_u64(&v, "deadline_ms")?,
                fwd: v.get("fwd").and_then(Json::as_bool).unwrap_or(false),
            })),
            "characterize" => Ok(Request::Characterize(CharacterizeRequest {
                device: require_str(&v, "device")?.to_string(),
                method: MethodKind::parse(opt_str(&v, "method").unwrap_or("brute"))?,
                shots: opt_u64(&v, "shots")?.unwrap_or(0),
                fwd: v.get("fwd").and_then(Json::as_bool).unwrap_or(false),
            })),
            "cluster-map" => Ok(Request::ClusterMap {
                device: opt_str(&v, "device").map(str::to_string),
            }),
            "replicate" => Ok(Request::Replicate(ReplicateRequest {
                device: require_str(&v, "device")?.to_string(),
                method: MethodKind::parse(opt_str(&v, "method").unwrap_or("brute"))?,
                window: opt_u64(&v, "window")?.unwrap_or(0),
                profile: opt_str(&v, "profile").map(str::to_string),
                journal: opt_str(&v, "journal").map(str::to_string),
                from: opt_u64(&v, "from")?.unwrap_or(0),
            })),
            "fetch-profile" => Ok(Request::FetchProfile {
                device: require_str(&v, "device")?.to_string(),
                method: MethodKind::parse(opt_str(&v, "method").unwrap_or("brute"))?,
                window: opt_u64(&v, "window")?
                    .ok_or_else(|| ProtocolError::new("fetch-profile needs a window index"))?,
            }),
            "status" => Ok(Request::Status),
            "set-window" => Ok(Request::SetWindow {
                window: opt_u64(&v, "window")?
                    .ok_or_else(|| ProtocolError::new("set-window needs a window index"))?,
                fwd: v.get("fwd").and_then(Json::as_bool).unwrap_or(false),
            }),
            "sleep" => Ok(Request::Sleep {
                ms: opt_u64(&v, "ms")?.ok_or_else(|| ProtocolError::new("sleep needs ms"))?,
            }),
            "health" => Ok(Request::Health),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtocolError::new(format!("unknown op {other:?}"))),
        }
    }
}

/// The result of a `submit` job.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitResponse {
    /// Device the job ran on.
    pub device: String,
    /// Calibration window it ran in.
    pub window: u64,
    /// Policy applied.
    pub policy: PolicyKind,
    /// Trial budget.
    pub shots: u64,
    /// Total logged trials (equals `shots`).
    pub total: u64,
    /// Number of distinct outputs observed.
    pub distinct: u64,
    /// Ranked output log, strongest first, truncated to the top
    /// [`SubmitResponse::MAX_COUNTS`] entries.
    pub counts: Vec<(String, u64)>,
    /// How the profile need was met (`none` for baseline/SIM).
    pub cache: CacheOutcome,
    /// End-to-end latency (enqueue to completion), microseconds.
    pub latency_us: u64,
    /// True when the profile came from a stale last-good entry because
    /// fresh characterization was unavailable (`cache` is then `stale`).
    pub degraded: bool,
    /// PST, present when `expected` was given.
    pub pst: Option<f64>,
    /// IST, present when `expected` was given.
    pub ist: Option<f64>,
    /// ROCA, present when `expected` was given and the answer was observed.
    pub roca: Option<u64>,
}

impl SubmitResponse {
    /// Ranked-count entries included in a response.
    pub const MAX_COUNTS: usize = 32;
}

/// The result of a `characterize` job.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeResponse {
    /// Device characterized.
    pub device: String,
    /// Calibration window.
    pub window: u64,
    /// Technique.
    pub method: MethodKind,
    /// Register width.
    pub width: u64,
    /// Trials spent measuring the profile.
    pub trials: u64,
    /// Strongest basis state.
    pub strongest: String,
    /// Weakest basis state.
    pub weakest: String,
    /// Hit/miss/disk-hit/stale.
    pub cache: CacheOutcome,
    /// End-to-end latency, microseconds.
    pub latency_us: u64,
    /// True when a stale last-good profile was served (`cache` is `stale`).
    pub degraded: bool,
}

/// The `status` snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusResponse {
    /// Current calibration window.
    pub window: u64,
    /// Worker-pool size.
    pub workers: u64,
    /// Jobs currently queued (excludes in-flight).
    pub queue_depth: u64,
    /// Queue capacity.
    pub queue_capacity: u64,
    /// Whether a shutdown is draining.
    pub draining: bool,
    /// Operational counters.
    pub counters: qmetrics::CountersSnapshot,
}

/// The `health` probe result, answered inline without queueing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthResponse {
    /// True when any circuit breaker is open (the service is serving
    /// stale profiles for at least one device) or a drain is in progress.
    pub degraded: bool,
    /// Jobs currently queued.
    pub queue_depth: u64,
    /// Devices whose circuit breaker is currently open.
    pub open_breakers: u64,
    /// Profile-cache entries currently held (fresh or stale).
    pub cache_entries: u64,
    /// Age of the oldest cached profile, in calibration windows behind
    /// the current one (0 when the cache is empty or fully fresh).
    pub cache_age_windows: u64,
}

/// The `cluster-map` routing table: who is in the mesh, who is alive,
/// and — when a device was named — where its profile lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMapResponse {
    /// The full static membership list, in ring order (index = member id).
    pub members: Vec<String>,
    /// Liveness of each member as seen by the answering node.
    pub alive: Vec<bool>,
    /// The answering node's own index in `members`.
    pub self_index: u64,
    /// The route for the requested device, when one was named.
    pub route: Option<RouteInfo>,
}

/// The consistent-hash route for one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteInfo {
    /// The device routed.
    pub device: String,
    /// Member index of the owning node.
    pub owner: u64,
    /// Member indices of the replication followers, in ring order.
    pub followers: Vec<u64>,
}

/// A parsed server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `submit` result.
    Submit(SubmitResponse),
    /// `characterize` result.
    Characterize(CharacterizeResponse),
    /// `status` result.
    Status(StatusResponse),
    /// `set-window` acknowledgement (echoes the window now in force).
    Window {
        /// The window index now in force.
        window: u64,
    },
    /// `sleep` acknowledgement.
    Slept {
        /// Milliseconds actually slept.
        ms: u64,
    },
    /// `health` probe result.
    Health(HealthResponse),
    /// `cluster-map` result.
    ClusterMap(ClusterMapResponse),
    /// `replicate` acknowledgement. `accepted` is false when the payload
    /// failed its checksum on receipt; `refetched` reports whether the
    /// receiver then pulled a clean copy from the sender.
    Replicated {
        /// Whether the pushed payload verified and was installed.
        accepted: bool,
        /// Whether a clean copy was re-fetched after a rejection.
        refetched: bool,
    },
    /// `fetch-profile` result: the exact persisted `rbms v2` text.
    Profile {
        /// Device name.
        device: String,
        /// Technique.
        method: MethodKind,
        /// Calibration window.
        window: u64,
        /// Full profile text (checksummed `rbms v2`).
        profile: String,
    },
    /// `shutdown` acknowledgement.
    Shutdown,
    /// Any failure; `code` follows HTTP conventions (`400` bad request,
    /// `503` busy/draining/unavailable, `500` execution failure, `504`
    /// deadline exceeded).
    Error {
        /// Status code.
        code: u16,
        /// Human-readable description.
        message: String,
    },
}

impl Response {
    /// A `400 bad request` error.
    pub fn bad_request(message: impl Into<String>) -> Response {
        Response::Error {
            code: 400,
            message: message.into(),
        }
    }

    /// A `503 busy` backpressure error.
    pub fn busy(message: impl Into<String>) -> Response {
        Response::Error {
            code: 503,
            message: message.into(),
        }
    }

    /// A `500` execution error.
    pub fn failed(message: impl Into<String>) -> Response {
        Response::Error {
            code: 500,
            message: message.into(),
        }
    }

    /// A `504 deadline exceeded` error: the job expired in queue.
    pub fn deadline_exceeded(message: impl Into<String>) -> Response {
        Response::Error {
            code: 504,
            message: message.into(),
        }
    }

    /// Serializes to a single wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut pairs = vec![("v", Json::int(PROTOCOL_VERSION))];
        match self {
            Response::Error { code, message } => {
                pairs.push(("ok", Json::Bool(false)));
                pairs.push(("code", Json::int(u64::from(*code))));
                pairs.push(("error", Json::str(message)));
            }
            Response::Submit(r) => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("op", Json::str("submit")));
                pairs.push(("device", Json::str(&r.device)));
                pairs.push(("window", Json::int(r.window)));
                pairs.push(("policy", Json::str(r.policy.as_str())));
                pairs.push(("shots", Json::int(r.shots)));
                pairs.push(("total", Json::int(r.total)));
                pairs.push(("distinct", Json::int(r.distinct)));
                pairs.push(("cache", Json::str(r.cache.as_str())));
                pairs.push(("latency_us", Json::int(r.latency_us)));
                if r.degraded {
                    pairs.push(("degraded", Json::Bool(true)));
                }
                pairs.push((
                    "counts",
                    Json::Obj(
                        r.counts
                            .iter()
                            .map(|(s, n)| (s.clone(), Json::int(*n)))
                            .collect(),
                    ),
                ));
                if let Some(pst) = r.pst {
                    pairs.push(("pst", Json::Num(pst)));
                }
                if let Some(ist) = r.ist {
                    pairs.push(("ist", Json::Num(ist)));
                }
                if let Some(roca) = r.roca {
                    pairs.push(("roca", Json::int(roca)));
                }
            }
            Response::Characterize(r) => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("op", Json::str("characterize")));
                pairs.push(("device", Json::str(&r.device)));
                pairs.push(("window", Json::int(r.window)));
                pairs.push(("method", Json::str(r.method.as_str())));
                pairs.push(("width", Json::int(r.width)));
                pairs.push(("trials", Json::int(r.trials)));
                pairs.push(("strongest", Json::str(&r.strongest)));
                pairs.push(("weakest", Json::str(&r.weakest)));
                pairs.push(("cache", Json::str(r.cache.as_str())));
                pairs.push(("latency_us", Json::int(r.latency_us)));
                if r.degraded {
                    pairs.push(("degraded", Json::Bool(true)));
                }
            }
            Response::Status(r) => {
                let c = &r.counters;
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("op", Json::str("status")));
                pairs.push(("window", Json::int(r.window)));
                pairs.push(("workers", Json::int(r.workers)));
                pairs.push(("queue_depth", Json::int(r.queue_depth)));
                pairs.push(("queue_capacity", Json::int(r.queue_capacity)));
                pairs.push(("draining", Json::Bool(r.draining)));
                let mut counter_pairs = vec![
                    ("requests", Json::int(c.requests)),
                    ("jobs_executed", Json::int(c.jobs_executed)),
                    ("jobs_failed", Json::int(c.jobs_failed)),
                    ("busy_rejections", Json::int(c.busy_rejections)),
                    ("cache_hits", Json::int(c.cache_hits)),
                    ("cache_misses", Json::int(c.cache_misses)),
                    ("queue_depth_peak", Json::int(c.queue_depth_peak)),
                    ("latency_total_us", Json::int(c.latency_total_us)),
                    ("latency_max_us", Json::int(c.latency_max_us)),
                    ("faults_injected", Json::int(c.faults_injected)),
                    ("retries", Json::int(c.retries)),
                    ("degraded_responses", Json::int(c.degraded_responses)),
                    ("deadline_expirations", Json::int(c.deadline_expirations)),
                    ("connections_reaped", Json::int(c.connections_reaped)),
                    ("breaker_trips", Json::int(c.breaker_trips)),
                    ("journal_checkpoints", Json::int(c.journal_checkpoints)),
                    ("resumed_jobs", Json::int(c.resumed_jobs)),
                    ("profiles_quarantined", Json::int(c.profiles_quarantined)),
                    ("invariant_clamps", Json::int(c.invariant_clamps)),
                    ("pool_tasks", Json::int(c.pool_tasks)),
                    ("barrier_waits", Json::int(c.barrier_waits)),
                    ("arena_reuse_hits", Json::int(c.arena_reuse_hits)),
                    ("epoll_wakeups", Json::int(c.epoll_wakeups)),
                    ("frames_parsed", Json::int(c.frames_parsed)),
                    (
                        "write_backpressure_events",
                        Json::int(c.write_backpressure_events),
                    ),
                    ("shard_depth_peak", Json::int(c.shard_depth_peak)),
                    ("queue_steals", Json::int(c.queue_steals)),
                    ("forwards", Json::int(c.forwards)),
                    ("replication_writes", Json::int(c.replication_writes)),
                    ("failovers", Json::int(c.failovers)),
                    ("heartbeats_missed", Json::int(c.heartbeats_missed)),
                    ("stale_map_retries", Json::int(c.stale_map_retries)),
                ];
                // Overload/net-fault counters are additive v1 fields:
                // omitted when zero so pre-fabric peers parse unchanged
                // frames (same compatibility scheme as `fwd`).
                for (key, value) in [
                    ("requests_shed", c.requests_shed),
                    ("retry_budget_exhausted", c.retry_budget_exhausted),
                    ("peer_dials_suppressed", c.peer_dials_suppressed),
                    ("net_faults_injected", c.net_faults_injected),
                    ("partitions_healed", c.partitions_healed),
                ] {
                    if value > 0 {
                        counter_pairs.push((key, Json::int(value)));
                    }
                }
                pairs.push(("counters", Json::obj(counter_pairs)));
            }
            Response::Window { window } => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("op", Json::str("set-window")));
                pairs.push(("window", Json::int(*window)));
            }
            Response::Slept { ms } => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("op", Json::str("sleep")));
                pairs.push(("ms", Json::int(*ms)));
            }
            Response::Health(r) => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("op", Json::str("health")));
                pairs.push(("degraded", Json::Bool(r.degraded)));
                pairs.push(("queue_depth", Json::int(r.queue_depth)));
                pairs.push(("open_breakers", Json::int(r.open_breakers)));
                pairs.push(("cache_entries", Json::int(r.cache_entries)));
                pairs.push(("cache_age_windows", Json::int(r.cache_age_windows)));
            }
            Response::ClusterMap(r) => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("op", Json::str("cluster-map")));
                pairs.push((
                    "members",
                    Json::Arr(r.members.iter().map(|m| Json::str(m.as_str())).collect()),
                ));
                pairs.push((
                    "alive",
                    Json::Arr(r.alive.iter().map(|a| Json::Bool(*a)).collect()),
                ));
                pairs.push(("self", Json::int(r.self_index)));
                if let Some(route) = &r.route {
                    pairs.push(("device", Json::str(&route.device)));
                    pairs.push(("owner", Json::int(route.owner)));
                    pairs.push((
                        "followers",
                        Json::Arr(route.followers.iter().map(|f| Json::int(*f)).collect()),
                    ));
                }
            }
            Response::Replicated {
                accepted,
                refetched,
            } => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("op", Json::str("replicate")));
                pairs.push(("accepted", Json::Bool(*accepted)));
                pairs.push(("refetched", Json::Bool(*refetched)));
            }
            Response::Profile {
                device,
                method,
                window,
                profile,
            } => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("op", Json::str("fetch-profile")));
                pairs.push(("device", Json::str(device)));
                pairs.push(("method", Json::str(method.as_str())));
                pairs.push(("window", Json::int(*window)));
                pairs.push(("profile", Json::str(profile)));
            }
            Response::Shutdown => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("op", Json::str("shutdown")));
            }
        }
        Json::obj(pairs).to_string()
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] on malformed JSON or schema violations.
    pub fn from_line(line: &str) -> Result<Response, ProtocolError> {
        let v = Json::parse(line).map_err(|e| ProtocolError::new(e.to_string()))?;
        check_version(&v)?;
        let ok = v
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| ProtocolError::new("response missing ok"))?;
        if !ok {
            let code = opt_u64(&v, "code")?.unwrap_or(500) as u16;
            let message = opt_str(&v, "error").unwrap_or("unknown error").to_string();
            return Ok(Response::Error { code, message });
        }
        match require_str(&v, "op")? {
            "submit" => {
                let counts = v
                    .get("counts")
                    .and_then(Json::as_obj)
                    .ok_or_else(|| ProtocolError::new("submit response missing counts"))?
                    .iter()
                    .map(|(k, n)| {
                        n.as_u64()
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| ProtocolError::new(format!("bad count for {k:?}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Submit(SubmitResponse {
                    device: require_str(&v, "device")?.to_string(),
                    window: require_u64(&v, "window")?,
                    policy: PolicyKind::parse(require_str(&v, "policy")?)?,
                    shots: require_u64(&v, "shots")?,
                    total: require_u64(&v, "total")?,
                    distinct: require_u64(&v, "distinct")?,
                    counts,
                    cache: CacheOutcome::parse(require_str(&v, "cache")?)?,
                    latency_us: require_u64(&v, "latency_us")?,
                    degraded: v.get("degraded").and_then(Json::as_bool).unwrap_or(false),
                    pst: v.get("pst").and_then(Json::as_f64),
                    ist: v.get("ist").and_then(Json::as_f64),
                    roca: v.get("roca").and_then(Json::as_u64),
                }))
            }
            "characterize" => Ok(Response::Characterize(CharacterizeResponse {
                device: require_str(&v, "device")?.to_string(),
                window: require_u64(&v, "window")?,
                method: MethodKind::parse(require_str(&v, "method")?)?,
                width: require_u64(&v, "width")?,
                trials: require_u64(&v, "trials")?,
                strongest: require_str(&v, "strongest")?.to_string(),
                weakest: require_str(&v, "weakest")?.to_string(),
                cache: CacheOutcome::parse(require_str(&v, "cache")?)?,
                latency_us: require_u64(&v, "latency_us")?,
                degraded: v.get("degraded").and_then(Json::as_bool).unwrap_or(false),
            })),
            "status" => {
                let c = v
                    .get("counters")
                    .ok_or_else(|| ProtocolError::new("status response missing counters"))?;
                let counters = qmetrics::CountersSnapshot {
                    requests: require_u64(c, "requests")?,
                    jobs_executed: require_u64(c, "jobs_executed")?,
                    jobs_failed: require_u64(c, "jobs_failed")?,
                    busy_rejections: require_u64(c, "busy_rejections")?,
                    cache_hits: require_u64(c, "cache_hits")?,
                    cache_misses: require_u64(c, "cache_misses")?,
                    queue_depth_peak: require_u64(c, "queue_depth_peak")?,
                    latency_total_us: require_u64(c, "latency_total_us")?,
                    latency_max_us: require_u64(c, "latency_max_us")?,
                    // Resilience counters postdate v1's first release;
                    // default to 0 so older peers still parse.
                    faults_injected: opt_u64(c, "faults_injected")?.unwrap_or(0),
                    retries: opt_u64(c, "retries")?.unwrap_or(0),
                    degraded_responses: opt_u64(c, "degraded_responses")?.unwrap_or(0),
                    deadline_expirations: opt_u64(c, "deadline_expirations")?.unwrap_or(0),
                    connections_reaped: opt_u64(c, "connections_reaped")?.unwrap_or(0),
                    breaker_trips: opt_u64(c, "breaker_trips")?.unwrap_or(0),
                    journal_checkpoints: opt_u64(c, "journal_checkpoints")?.unwrap_or(0),
                    resumed_jobs: opt_u64(c, "resumed_jobs")?.unwrap_or(0),
                    profiles_quarantined: opt_u64(c, "profiles_quarantined")?.unwrap_or(0),
                    invariant_clamps: opt_u64(c, "invariant_clamps")?.unwrap_or(0),
                    pool_tasks: opt_u64(c, "pool_tasks")?.unwrap_or(0),
                    barrier_waits: opt_u64(c, "barrier_waits")?.unwrap_or(0),
                    arena_reuse_hits: opt_u64(c, "arena_reuse_hits")?.unwrap_or(0),
                    epoll_wakeups: opt_u64(c, "epoll_wakeups")?.unwrap_or(0),
                    frames_parsed: opt_u64(c, "frames_parsed")?.unwrap_or(0),
                    write_backpressure_events: opt_u64(c, "write_backpressure_events")?
                        .unwrap_or(0),
                    shard_depth_peak: opt_u64(c, "shard_depth_peak")?.unwrap_or(0),
                    queue_steals: opt_u64(c, "queue_steals")?.unwrap_or(0),
                    forwards: opt_u64(c, "forwards")?.unwrap_or(0),
                    replication_writes: opt_u64(c, "replication_writes")?.unwrap_or(0),
                    failovers: opt_u64(c, "failovers")?.unwrap_or(0),
                    heartbeats_missed: opt_u64(c, "heartbeats_missed")?.unwrap_or(0),
                    stale_map_retries: opt_u64(c, "stale_map_retries")?.unwrap_or(0),
                    requests_shed: opt_u64(c, "requests_shed")?.unwrap_or(0),
                    retry_budget_exhausted: opt_u64(c, "retry_budget_exhausted")?.unwrap_or(0),
                    peer_dials_suppressed: opt_u64(c, "peer_dials_suppressed")?.unwrap_or(0),
                    net_faults_injected: opt_u64(c, "net_faults_injected")?.unwrap_or(0),
                    partitions_healed: opt_u64(c, "partitions_healed")?.unwrap_or(0),
                };
                Ok(Response::Status(StatusResponse {
                    window: require_u64(&v, "window")?,
                    workers: require_u64(&v, "workers")?,
                    queue_depth: require_u64(&v, "queue_depth")?,
                    queue_capacity: require_u64(&v, "queue_capacity")?,
                    draining: v.get("draining").and_then(Json::as_bool).unwrap_or(false),
                    counters,
                }))
            }
            "set-window" => Ok(Response::Window {
                window: require_u64(&v, "window")?,
            }),
            "sleep" => Ok(Response::Slept {
                ms: require_u64(&v, "ms")?,
            }),
            "health" => Ok(Response::Health(HealthResponse {
                degraded: v
                    .get("degraded")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| ProtocolError::new("health response missing degraded"))?,
                queue_depth: require_u64(&v, "queue_depth")?,
                open_breakers: require_u64(&v, "open_breakers")?,
                cache_entries: require_u64(&v, "cache_entries")?,
                cache_age_windows: require_u64(&v, "cache_age_windows")?,
            })),
            "cluster-map" => {
                let members = v
                    .get("members")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtocolError::new("cluster-map response missing members"))?
                    .iter()
                    .map(|m| {
                        m.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| ProtocolError::new("bad member name"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let alive = v
                    .get("alive")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtocolError::new("cluster-map response missing alive"))?
                    .iter()
                    .map(|a| {
                        a.as_bool()
                            .ok_or_else(|| ProtocolError::new("bad alive flag"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let route = match opt_str(&v, "device") {
                    None => None,
                    Some(device) => Some(RouteInfo {
                        device: device.to_string(),
                        owner: require_u64(&v, "owner")?,
                        followers: v
                            .get("followers")
                            .and_then(Json::as_arr)
                            .ok_or_else(|| ProtocolError::new("route missing followers"))?
                            .iter()
                            .map(|f| {
                                f.as_u64()
                                    .ok_or_else(|| ProtocolError::new("bad follower index"))
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                    }),
                };
                Ok(Response::ClusterMap(ClusterMapResponse {
                    members,
                    alive,
                    self_index: require_u64(&v, "self")?,
                    route,
                }))
            }
            "replicate" => Ok(Response::Replicated {
                accepted: v
                    .get("accepted")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| ProtocolError::new("replicate response missing accepted"))?,
                refetched: v.get("refetched").and_then(Json::as_bool).unwrap_or(false),
            }),
            "fetch-profile" => Ok(Response::Profile {
                device: require_str(&v, "device")?.to_string(),
                method: MethodKind::parse(require_str(&v, "method")?)?,
                window: require_u64(&v, "window")?,
                profile: require_str(&v, "profile")?.to_string(),
            }),
            "shutdown" => Ok(Response::Shutdown),
            other => Err(ProtocolError::new(format!("unknown response op {other:?}"))),
        }
    }
}

/// A malformed or unsupported protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl ProtocolError {
    fn new(message: impl Into<String>) -> Self {
        ProtocolError(message.into())
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn check_version(v: &Json) -> Result<(), ProtocolError> {
    match v.get("v") {
        None => Ok(()), // absent ⇒ v1
        Some(field) => match field.as_u64() {
            Some(PROTOCOL_VERSION) => Ok(()),
            _ => Err(ProtocolError::new(format!(
                "unsupported protocol version {field} (this server speaks v{PROTOCOL_VERSION})"
            ))),
        },
    }
}

fn require_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, ProtocolError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::new(format!("missing string field {key:?}")))
}

fn opt_str<'a>(v: &'a Json, key: &str) -> Option<&'a str> {
    v.get(key).and_then(Json::as_str)
}

fn require_u64(v: &Json, key: &str) -> Result<u64, ProtocolError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtocolError::new(format!("missing integer field {key:?}")))
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, ProtocolError> {
    match v.get(key) {
        None => Ok(None),
        Some(field) => field.as_u64().map(Some).ok_or_else(|| {
            ProtocolError::new(format!("field {key:?} must be a non-negative integer"))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_request_roundtrips_with_qasm_newlines() {
        let req = Request::Submit(SubmitRequest {
            device: "ibmqx4".into(),
            qasm: "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[5];\n".into(),
            policy: PolicyKind::Aim,
            shots: 1000,
            seed: 7,
            expected: Some("11111".into()),
            deadline_ms: Some(250),
            fwd: false,
        });
        let line = req.to_line();
        assert!(!line.contains('\n'), "wire lines must be newline-free");
        assert_eq!(Request::from_line(&line).unwrap(), req);
    }

    #[test]
    fn cluster_requests_roundtrip() {
        let cases = vec![
            Request::ClusterMap { device: None },
            Request::ClusterMap {
                device: Some("ibmqx4".into()),
            },
            Request::Characterize(CharacterizeRequest {
                device: "ibmqx4".into(),
                method: MethodKind::Awct,
                shots: 512,
                fwd: true,
            }),
            Request::Replicate(ReplicateRequest {
                device: "ibmqx4".into(),
                method: MethodKind::Brute,
                window: 3,
                profile: Some("rbms v2\n...\ncrc32 deadbeef\n".into()),
                journal: None,
                from: 1,
            }),
            Request::Replicate(ReplicateRequest {
                device: "ibmqx2".into(),
                method: MethodKind::Esct,
                window: 0,
                profile: None,
                journal: Some("charjournal v2\nunit 00000000 0 00000:12\n".into()),
                from: 2,
            }),
            Request::FetchProfile {
                device: "ibmqx4".into(),
                method: MethodKind::Brute,
                window: 3,
            },
            Request::SetWindow {
                window: 4,
                fwd: true,
            },
        ];
        for req in cases {
            let line = req.to_line();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Request::from_line(&line).unwrap(), req, "{line}");
        }
        // The fwd flag is absent from the wire when false, so pre-mesh
        // parsers never see an unexpected field on ordinary traffic.
        let plain = Request::Characterize(CharacterizeRequest {
            device: "x".into(),
            method: MethodKind::Brute,
            shots: 0,
            fwd: false,
        });
        assert!(!plain.to_line().contains("fwd"));
        let plain_window = Request::SetWindow {
            window: 4,
            fwd: false,
        };
        assert!(!plain_window.to_line().contains("fwd"));
    }

    #[test]
    fn request_defaults_apply() {
        let req = Request::from_line(r#"{"op":"submit","device":"ibmqx2","qasm":"x"}"#).unwrap();
        match req {
            Request::Submit(r) => {
                assert_eq!(r.policy, PolicyKind::Baseline);
                assert_eq!(r.shots, 4096);
                assert_eq!(r.seed, 2019);
                assert_eq!(r.expected, None);
                assert_eq!(r.deadline_ms, None);
            }
            other => panic!("wrong request {other:?}"),
        }
        assert_eq!(
            Request::from_line(r#"{"op":"status"}"#).unwrap(),
            Request::Status
        );
        assert_eq!(
            Request::from_line(r#"{"op":"health"}"#).unwrap(),
            Request::Health
        );
    }

    #[test]
    fn version_mismatch_rejected() {
        let e = Request::from_line(r#"{"v":2,"op":"status"}"#).unwrap_err();
        assert!(
            e.to_string().contains("unsupported protocol version"),
            "{e}"
        );
        assert!(Request::from_line(r#"{"v":"x","op":"status"}"#).is_err());
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        for (line, expect) in [
            ("not json", "json error"),
            (r#"{"op":"nope"}"#, "unknown op"),
            (r#"{"device":"x"}"#, "missing string field \"op\""),
            (
                r#"{"op":"submit","device":"x"}"#,
                "missing string field \"qasm\"",
            ),
            (
                r#"{"op":"submit","device":"x","qasm":"q","shots":-1}"#,
                "non-negative",
            ),
            (
                r#"{"op":"submit","device":"x","qasm":"q","policy":"magic"}"#,
                "unknown policy",
            ),
            (r#"{"op":"set-window"}"#, "needs a window"),
        ] {
            let e = Request::from_line(line).unwrap_err().to_string();
            assert!(e.contains(expect), "{line}: {e}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let cases = vec![
            Response::Submit(SubmitResponse {
                device: "ibmqx4".into(),
                window: 3,
                policy: PolicyKind::Sim,
                shots: 4096,
                total: 4096,
                distinct: 17,
                counts: vec![("00000".into(), 3901), ("00001".into(), 88)],
                cache: CacheOutcome::None,
                latency_us: 1234,
                degraded: false,
                pst: Some(0.95),
                ist: Some(44.0),
                roca: Some(1),
            }),
            Response::Characterize(CharacterizeResponse {
                device: "ibmqx4".into(),
                window: 0,
                method: MethodKind::Brute,
                width: 5,
                trials: 16384,
                strongest: "00000".into(),
                weakest: "11111".into(),
                cache: CacheOutcome::Miss,
                latency_us: 99,
                degraded: false,
            }),
            Response::Characterize(CharacterizeResponse {
                device: "ibmqx2".into(),
                window: 4,
                method: MethodKind::Awct,
                width: 5,
                trials: 8192,
                strongest: "00000".into(),
                weakest: "10110".into(),
                cache: CacheOutcome::Stale,
                latency_us: 120,
                degraded: true,
            }),
            Response::Status(StatusResponse {
                window: 2,
                workers: 4,
                queue_depth: 1,
                queue_capacity: 32,
                draining: false,
                counters: qmetrics::CountersSnapshot {
                    requests: 10,
                    jobs_executed: 8,
                    jobs_failed: 0,
                    busy_rejections: 1,
                    cache_hits: 7,
                    cache_misses: 1,
                    queue_depth_peak: 3,
                    latency_total_us: 5000,
                    latency_max_us: 900,
                    faults_injected: 2,
                    retries: 3,
                    degraded_responses: 1,
                    deadline_expirations: 1,
                    connections_reaped: 2,
                    breaker_trips: 1,
                    journal_checkpoints: 12,
                    resumed_jobs: 1,
                    profiles_quarantined: 1,
                    invariant_clamps: 4,
                    pool_tasks: 64,
                    barrier_waits: 17,
                    arena_reuse_hits: 9,
                    epoll_wakeups: 41,
                    frames_parsed: 12,
                    write_backpressure_events: 2,
                    shard_depth_peak: 3,
                    queue_steals: 5,
                    forwards: 4,
                    replication_writes: 6,
                    failovers: 1,
                    heartbeats_missed: 2,
                    stale_map_retries: 1,
                    requests_shed: 3,
                    retry_budget_exhausted: 2,
                    peer_dials_suppressed: 5,
                    net_faults_injected: 7,
                    partitions_healed: 1,
                },
            }),
            Response::ClusterMap(ClusterMapResponse {
                members: vec![
                    "127.0.0.1:7001".into(),
                    "127.0.0.1:7002".into(),
                    "127.0.0.1:7003".into(),
                ],
                alive: vec![true, false, true],
                self_index: 2,
                route: Some(RouteInfo {
                    device: "ibmqx4".into(),
                    owner: 1,
                    followers: vec![2, 0],
                }),
            }),
            Response::ClusterMap(ClusterMapResponse {
                members: vec!["127.0.0.1:7001".into()],
                alive: vec![true],
                self_index: 0,
                route: None,
            }),
            Response::Replicated {
                accepted: false,
                refetched: true,
            },
            Response::Profile {
                device: "ibmqx4".into(),
                method: MethodKind::Brute,
                window: 3,
                profile: "rbms v2\ndevice ibmqx4\ncrc32 0badf00d\n".into(),
            },
            Response::Health(HealthResponse {
                degraded: true,
                queue_depth: 2,
                open_breakers: 1,
                cache_entries: 3,
                cache_age_windows: 2,
            }),
            Response::Window { window: 9 },
            Response::Slept { ms: 50 },
            Response::Shutdown,
            Response::busy("busy: queue is full"),
            Response::deadline_exceeded("deadline exceeded after 250 ms in queue"),
        ];
        for resp in cases {
            let line = resp.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Response::from_line(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn error_codes_on_the_wire() {
        let line = Response::busy("busy: queue is full").to_line();
        assert!(line.contains("\"code\":503"), "{line}");
        assert!(line.contains("\"ok\":false"), "{line}");
        match Response::from_line(&line).unwrap() {
            Response::Error { code, message } => {
                assert_eq!(code, 503);
                assert!(message.contains("busy"));
            }
            other => panic!("wrong response {other:?}"),
        }
    }
}
