//! Readiness polling for the event-loop front end.
//!
//! The workspace is offline and vendors no `libc`, so the Linux backend
//! is a thin hand-rolled shim over the raw `syscall(2)` entry point (the
//! symbol is already in the C runtime `std` links): `epoll_create1`,
//! `epoll_ctl`, and `epoll_pwait`, with the arch-specific syscall numbers
//! and the x86_64-packed `epoll_event` layout spelled out here. Everything
//! above the shim is safe: [`Poller`] owns the epoll descriptor, tokens
//! are opaque `u64`s, and errors surface as [`std::io::Error`] (which
//! reads `errno` for us).
//!
//! On other targets [`Poller`] degrades to a portable fallback that
//! reports every registered token as maybe-ready after a short sleep.
//! That is correct — the event loop's nonblocking state machines treat
//! readiness as a hint and handle `WouldBlock` — just not efficient, which
//! keeps the service tests runnable off Linux without a second code path.
//!
//! Cross-thread wakeups ([`Waker`]) use a connected localhost UDP pair
//! rather than an `eventfd`: it is `std`-only, works on every target, and
//! a full socket buffer (send fails `WouldBlock`) can only happen when a
//! wakeup is already pending, which is exactly when dropping one is safe.

use std::io;
use std::net::UdpSocket;
use std::sync::Arc;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};

/// Which readiness a registration asks for. Readability is always
/// watched; writability is opted into while a connection has buffered
/// response bytes the socket refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or has hung up).
    pub readable: bool,
    /// Wake when the descriptor accepts writes again.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest, the steady state of a connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest, used while responses are backed up.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// Readable (or peer-closed — a read will observe the EOF).
    pub readable: bool,
    /// Writable again.
    pub writable: bool,
    /// Error or hangup: the connection should be torn down after a final
    /// read drains whatever arrived before the close.
    pub hangup: bool,
}

/// Anything the poller can watch. On unix this exposes the raw fd; the
/// portable fallback never needs one.
pub trait Source {
    /// The raw descriptor to register with epoll.
    #[cfg(unix)]
    fn raw_fd(&self) -> RawFd;
}

#[cfg(unix)]
impl<T: AsRawFd> Source for T {
    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

#[cfg(not(unix))]
impl<T> Source for T {}

// ---------------------------------------------------------------------------
// Linux backend: raw syscall shim.
// ---------------------------------------------------------------------------

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::io;
    use std::os::raw::{c_int, c_long};
    use std::os::unix::io::RawFd;

    extern "C" {
        /// The variadic syscall trampoline from the C runtime; the only
        /// foreign symbol this crate touches.
        fn syscall(num: c_long, ...) -> c_long;
    }

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const CLOSE: i64 = 3;
        pub const EPOLL_CTL: i64 = 233;
        pub const EPOLL_PWAIT: i64 = 281;
        pub const EPOLL_CREATE1: i64 = 291;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: i64 = 20;
        pub const EPOLL_CTL: i64 = 21;
        pub const EPOLL_PWAIT: i64 = 22;
        pub const CLOSE: i64 = 57;
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// The kernel's `struct epoll_event`. The uapi header packs it on
    /// x86_64 only (12 bytes there, 16 elsewhere) — reproduce that or
    /// `epoll_ctl` reads garbage.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    fn cvt(ret: c_long) -> io::Result<c_long> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create1() -> io::Result<RawFd> {
        // SAFETY: epoll_create1 takes one flag and touches no caller
        // memory. Every vararg is widened to c_long: syscall arguments
        // are machine words.
        let fd = cvt(unsafe { syscall(nr::EPOLL_CREATE1, EPOLL_CLOEXEC as c_long) })?;
        Ok(fd as RawFd)
    }

    pub fn epoll_ctl(
        epfd: RawFd,
        op: c_int,
        fd: RawFd,
        event: Option<EpollEvent>,
    ) -> io::Result<()> {
        let ptr = event
            .as_ref()
            .map_or(std::ptr::null(), |e| e as *const EpollEvent);
        // SAFETY: `ptr` is null (DEL) or points at a live EpollEvent for
        // the duration of the call; the kernel copies it before returning.
        cvt(unsafe {
            syscall(
                nr::EPOLL_CTL,
                epfd as c_long,
                op as c_long,
                fd as c_long,
                ptr as c_long,
            )
        })?;
        Ok(())
    }

    pub fn epoll_pwait(
        epfd: RawFd,
        events: &mut [EpollEvent],
        timeout_ms: c_int,
    ) -> io::Result<usize> {
        loop {
            // SAFETY: `events` is a live, writable slice; maxevents is its
            // exact length; the null sigmask (with sigsetsize 8) keeps the
            // signal mask untouched.
            let ret = unsafe {
                syscall(
                    nr::EPOLL_PWAIT,
                    epfd as c_long,
                    events.as_mut_ptr() as c_long,
                    events.len() as c_long,
                    timeout_ms as c_long,
                    0 as c_long, // NULL sigmask
                    8 as c_long, // sigsetsize
                )
            };
            match cvt(ret) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    pub fn close(fd: RawFd) {
        // SAFETY: we own `fd` and never use it again after this.
        unsafe { syscall(nr::CLOSE, fd as c_long) };
    }

    // -- sockets and rlimits (used by the load generator) ------------------

    #[cfg(target_arch = "x86_64")]
    mod nr_net {
        pub const SOCKET: i64 = 41;
        pub const CONNECT: i64 = 42;
        pub const BIND: i64 = 49;
        pub const SETSOCKOPT: i64 = 54;
        pub const PRLIMIT64: i64 = 302;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr_net {
        pub const SOCKET: i64 = 198;
        pub const BIND: i64 = 200;
        pub const CONNECT: i64 = 203;
        pub const SETSOCKOPT: i64 = 208;
        pub const PRLIMIT64: i64 = 261;
    }

    const AF_INET: c_long = 2;
    const SOCK_STREAM: c_long = 1;
    const SOCK_CLOEXEC: c_long = 0o2000000;
    const SOL_SOCKET: c_long = 1;
    const SO_REUSEADDR: c_long = 2;
    const SO_RCVTIMEO: c_long = 20;
    const SO_SNDTIMEO: c_long = 21;
    const SOL_IP: c_long = 0;
    const IP_BIND_ADDRESS_NO_PORT: c_long = 24;
    const RLIMIT_NOFILE: c_long = 7;

    /// The kernel's IPv4 `struct sockaddr_in` (16 bytes, port/addr in
    /// network byte order).
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port_be: u16,
        addr_be: u32,
        zero: [u8; 8],
    }

    impl SockaddrIn {
        fn new(addr: std::net::SocketAddrV4) -> SockaddrIn {
            SockaddrIn {
                family: AF_INET as u16,
                port_be: addr.port().to_be(),
                addr_be: u32::from(*addr.ip()).to_be(),
                zero: [0; 8],
            }
        }
    }

    /// 64-bit `struct timeval` for the socket-timeout options.
    #[repr(C)]
    struct Timeval {
        tv_sec: i64,
        tv_usec: i64,
    }

    /// `struct rlimit64`.
    #[repr(C)]
    struct Rlimit64 {
        rlim_cur: u64,
        rlim_max: u64,
    }

    /// Opens a blocking IPv4 TCP socket bound to `src` (any local address,
    /// e.g. anywhere in `127.0.0.0/8`) and connects it to `dst` within
    /// `timeout` (`SO_SNDTIMEO` bounds `connect(2)` on Linux). Returns the
    /// raw fd; the caller takes ownership.
    pub fn connect_from(
        src: std::net::Ipv4Addr,
        dst: std::net::SocketAddrV4,
        timeout: std::time::Duration,
    ) -> io::Result<RawFd> {
        // SAFETY: socket(2) touches no caller memory.
        let fd = cvt(unsafe { syscall(nr_net::SOCKET, AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) })?
            as RawFd;
        let result = (|| {
            let tv = Timeval {
                tv_sec: timeout.as_secs() as i64,
                tv_usec: i64::from(timeout.subsec_micros()),
            };
            for opt in [SO_SNDTIMEO, SO_RCVTIMEO] {
                // SAFETY: `tv` outlives the call; the kernel copies it.
                cvt(unsafe {
                    syscall(
                        nr_net::SETSOCKOPT,
                        fd as c_long,
                        SOL_SOCKET,
                        opt,
                        &tv as *const Timeval as c_long,
                        std::mem::size_of::<Timeval>() as c_long,
                    )
                })?;
            }
            // Binding with port 0 would pick the port NOW, and bind-time
            // selection cannot reuse ports parked in TIME_WAIT (and only
            // draws from half the ephemeral range). These two options defer
            // port choice to connect(2), which reuses ports per-destination
            // — without them, each benchmark rung's closed connections
            // starve the next rung of source ports for a minute.
            let one: c_int = 1;
            for (level, opt) in [
                (SOL_IP, IP_BIND_ADDRESS_NO_PORT),
                (SOL_SOCKET, SO_REUSEADDR),
            ] {
                // SAFETY: `one` outlives the call; the kernel copies it.
                // Best-effort: an old kernel without IP_BIND_ADDRESS_NO_PORT
                // still works, just with bind-time port selection.
                let _ = unsafe {
                    syscall(
                        nr_net::SETSOCKOPT,
                        fd as c_long,
                        level,
                        opt,
                        &one as *const c_int as c_long,
                        std::mem::size_of::<c_int>() as c_long,
                    )
                };
            }
            let local = SockaddrIn::new(std::net::SocketAddrV4::new(src, 0));
            // SAFETY: `local` is a live 16-byte sockaddr_in for the call.
            cvt(unsafe {
                syscall(
                    nr_net::BIND,
                    fd as c_long,
                    &local as *const SockaddrIn as c_long,
                    std::mem::size_of::<SockaddrIn>() as c_long,
                )
            })?;
            let peer = SockaddrIn::new(dst);
            // SAFETY: `peer` is a live 16-byte sockaddr_in for the call.
            cvt(unsafe {
                syscall(
                    nr_net::CONNECT,
                    fd as c_long,
                    &peer as *const SockaddrIn as c_long,
                    std::mem::size_of::<SockaddrIn>() as c_long,
                )
            })?;
            Ok(())
        })();
        match result {
            Ok(()) => Ok(fd),
            Err(e) => {
                close(fd);
                Err(e)
            }
        }
    }

    /// Raises `RLIMIT_NOFILE` toward `target`, trying the hard limit too
    /// (allowed for root / `CAP_SYS_RESOURCE`), else clamping to the
    /// current hard limit. Returns the resulting `(soft, hard)`.
    pub fn raise_nofile_limit(target: u64) -> io::Result<(u64, u64)> {
        let mut old = Rlimit64 {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: pid 0 = self; `old` is live and writable for the call.
        cvt(unsafe {
            syscall(
                nr_net::PRLIMIT64,
                0 as c_long,
                RLIMIT_NOFILE,
                0 as c_long, // no new limit: read only
                &mut old as *mut Rlimit64 as c_long,
            )
        })?;
        let attempts = [
            Rlimit64 {
                rlim_cur: old.rlim_cur.max(target),
                rlim_max: old.rlim_max.max(target),
            },
            Rlimit64 {
                rlim_cur: old.rlim_cur.max(target.min(old.rlim_max)),
                rlim_max: old.rlim_max,
            },
        ];
        for new in &attempts {
            // SAFETY: `new` is a live rlimit64 for the call.
            let ret = unsafe {
                syscall(
                    nr_net::PRLIMIT64,
                    0 as c_long,
                    RLIMIT_NOFILE,
                    new as *const Rlimit64 as c_long,
                    0 as c_long,
                )
            };
            if ret == 0 {
                return Ok((new.rlim_cur, new.rlim_max));
            }
        }
        Ok((old.rlim_cur, old.rlim_max))
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod backend {
    use super::{sys, Interest, PollEvent, Source};
    use std::io;
    use std::os::unix::io::RawFd;

    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                epfd: sys::epoll_create1()?,
            })
        }

        pub const BACKEND: &'static str = "epoll";

        fn event(token: u64, interest: Interest) -> sys::EpollEvent {
            let mut events = sys::EPOLLRDHUP;
            if interest.readable {
                events |= sys::EPOLLIN;
            }
            if interest.writable {
                events |= sys::EPOLLOUT;
            }
            sys::EpollEvent {
                events,
                data: token,
            }
        }

        pub fn register(&self, src: &dyn Source, token: u64, interest: Interest) -> io::Result<()> {
            sys::epoll_ctl(
                self.epfd,
                sys::EPOLL_CTL_ADD,
                src.raw_fd(),
                Some(Self::event(token, interest)),
            )
        }

        pub fn modify(&self, src: &dyn Source, token: u64, interest: Interest) -> io::Result<()> {
            sys::epoll_ctl(
                self.epfd,
                sys::EPOLL_CTL_MOD,
                src.raw_fd(),
                Some(Self::event(token, interest)),
            )
        }

        pub fn deregister(&self, src: &dyn Source, _token: u64) -> io::Result<()> {
            sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, src.raw_fd(), None)
        }

        pub fn wait(
            &self,
            out: &mut Vec<PollEvent>,
            timeout: Option<std::time::Duration>,
        ) -> io::Result<()> {
            out.clear();
            let timeout_ms = match timeout {
                None => -1,
                Some(d) => {
                    // Round up so a 0.4 ms deadline does not spin at 0.
                    let ms = d.as_millis();
                    let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
                    i32::try_from(ms).unwrap_or(i32::MAX)
                }
            };
            let mut events = [sys::EpollEvent { events: 0, data: 0 }; 256];
            let n = sys::epoll_pwait(self.epfd, &mut events, timeout_ms)?;
            for e in &events[..n] {
                let bits = e.events;
                out.push(PollEvent {
                    token: e.data,
                    readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::close(self.epfd);
        }
    }
}

// ---------------------------------------------------------------------------
// Portable fallback: report every registered token as maybe-ready.
// ---------------------------------------------------------------------------

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod backend {
    use super::{Interest, PollEvent, Source};
    use std::io;
    use std::sync::Mutex;

    /// Granularity of the busy-poll: latency floor for the fallback path.
    const TICK: std::time::Duration = std::time::Duration::from_millis(1);

    #[derive(Debug)]
    pub struct Poller {
        registered: Mutex<Vec<(u64, Interest)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Mutex::new(Vec::new()),
            })
        }

        pub const BACKEND: &'static str = "portable";

        pub fn register(
            &self,
            _src: &dyn Source,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            self.registered.lock().unwrap().push((token, interest));
            Ok(())
        }

        pub fn modify(&self, _src: &dyn Source, token: u64, interest: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            match reg.iter_mut().find(|(t, _)| *t == token) {
                Some(slot) => {
                    slot.1 = interest;
                    Ok(())
                }
                None => Err(io::Error::other("token not registered")),
            }
        }

        pub fn deregister(&self, _src: &dyn Source, token: u64) -> io::Result<()> {
            self.registered.lock().unwrap().retain(|(t, _)| *t != token);
            Ok(())
        }

        pub fn wait(
            &self,
            out: &mut Vec<PollEvent>,
            timeout: Option<std::time::Duration>,
        ) -> io::Result<()> {
            out.clear();
            // Without a kernel readiness facility we nap for one tick and
            // let the nonblocking state machines discover actual state
            // (reads return WouldBlock when there is nothing).
            std::thread::sleep(match timeout {
                Some(t) => t.min(TICK),
                None => TICK,
            });
            for &(token, interest) in self.registered.lock().unwrap().iter() {
                out.push(PollEvent {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                    hangup: false,
                });
            }
            Ok(())
        }
    }
}

/// Readiness poller over the platform backend (`epoll` on Linux
/// x86_64/aarch64, a portable maybe-ready fallback elsewhere).
#[derive(Debug)]
pub struct Poller {
    inner: backend::Poller,
}

impl Poller {
    /// Creates a poller.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: backend::Poller::new()?,
        })
    }

    /// Which backend this build uses (`"epoll"` or `"portable"`).
    pub fn backend() -> &'static str {
        backend::Poller::BACKEND
    }

    /// Watches `src` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn register(&self, src: &dyn Source, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.register(src, token, interest)
    }

    /// Changes the interest set of an existing registration.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. an unregistered token).
    pub fn modify(&self, src: &dyn Source, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(src, token, interest)
    }

    /// Stops watching `src`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn deregister(&self, src: &dyn Source, token: u64) -> io::Result<()> {
        self.inner.deregister(src, token)
    }

    /// Blocks until readiness or `timeout` (`None` waits indefinitely),
    /// filling `out` with the events. Spurious wakeups with an empty
    /// `out` are allowed.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_pwait` failure (`EINTR` is retried internally).
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.wait(out, timeout)
    }
}

/// Opens a blocking TCP connection to `dst` from the given local source
/// address (any address in `127.0.0.0/8` works on loopback), bounded by
/// `timeout`. The load generator uses this to escape the ~28k ephemeral
/// ports a single `(src, dst)` pair allows: spreading a connection storm
/// over several loopback source IPs multiplies the usable port space.
///
/// On targets without the raw-syscall shim the source address is ignored
/// and this degrades to [`std::net::TcpStream::connect_timeout`].
///
/// # Errors
///
/// Propagates socket/bind/connect failure (a refused or timed-out
/// connection among them).
pub fn connect_from(
    src: std::net::Ipv4Addr,
    dst: std::net::SocketAddrV4,
    timeout: Duration,
) -> io::Result<std::net::TcpStream> {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        use std::os::unix::io::FromRawFd;
        let fd = sys::connect_from(src, dst, timeout)?;
        // SAFETY: `fd` is a freshly connected socket we own; from_raw_fd
        // transfers that ownership to the TcpStream.
        Ok(unsafe { std::net::TcpStream::from_raw_fd(fd) })
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        let _ = src;
        std::net::TcpStream::connect_timeout(&std::net::SocketAddr::V4(dst), timeout)
    }
}

/// Raises this process's open-file limit toward `target` (hard limit too
/// when privileged, else clamped to the existing hard limit) and returns
/// the resulting `(soft, hard)` pair. Lets the benchmark hold tens of
/// thousands of sockets without external `ulimit` choreography; child
/// processes inherit the raised limit.
///
/// # Errors
///
/// Fails where unsupported (no raw-syscall shim) or when the current
/// limits cannot be read.
pub fn raise_nofile_limit(target: u64) -> io::Result<(u64, u64)> {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        sys::raise_nofile_limit(target)
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        let _ = target;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "rlimit shim requires the Linux syscall backend",
        ))
    }
}

/// Wakes a [`Poller`] from another thread (worker → event loop response
/// hand-off). Cheap to clone; all clones poke the same receiver.
#[derive(Debug, Clone)]
pub struct Waker {
    tx: Arc<UdpSocket>,
}

/// The receiving half of a [`Waker`], registered with the poller under a
/// dedicated token.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: UdpSocket,
}

impl Waker {
    /// Creates a connected waker pair on localhost.
    ///
    /// # Errors
    ///
    /// Propagates socket setup failure.
    pub fn new() -> io::Result<(Waker, WakeReceiver)> {
        let rx = UdpSocket::bind("127.0.0.1:0")?;
        rx.set_nonblocking(true)?;
        let tx = UdpSocket::bind("127.0.0.1:0")?;
        tx.set_nonblocking(true)?;
        tx.connect(rx.local_addr()?)?;
        Ok((Waker { tx: Arc::new(tx) }, WakeReceiver { rx }))
    }

    /// Pokes the poller. Best-effort: a full socket buffer means a wakeup
    /// is already pending, so the drop is harmless.
    pub fn wake(&self) {
        let _ = self.tx.send(&[1]);
    }
}

impl WakeReceiver {
    /// Drains pending wake datagrams so level-triggered polling settles.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while self.rx.recv(&mut buf).is_ok() {}
    }
}

#[cfg(unix)]
impl AsRawFd for WakeReceiver {
    fn as_raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn listener_readability_on_connect() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.register(&listener, 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a short wait returns empty (epoll) or a
        // maybe-ready hint (portable); either way accept() says WouldBlock.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(matches!(
            listener.accept().map(|_| ()).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        ));

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no readiness event");
        }
        listener.accept().unwrap();
    }

    #[test]
    fn stream_read_write_interest_transitions() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller.register(&server_side, 9, Interest::READ).unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 9 && e.readable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no read event");
        }
        let mut buf = [0u8; 8];
        let n = (&server_side).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Ask for writability: an idle socket reports it immediately.
        poller
            .modify(&server_side, 9, Interest::READ_WRITE)
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 9 && e.writable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no write event");
        }
        poller.deregister(&server_side, 9).unwrap();
    }

    #[test]
    fn waker_crosses_threads() {
        let poller = Poller::new().unwrap();
        let (waker, rx) = Waker::new().unwrap();
        poller.register(&rx, 1, Interest::READ).unwrap();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 1 && e.readable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "wakeup never arrived");
        }
        rx.drain();
        t.join().unwrap();
    }

    #[test]
    fn connect_from_binds_the_requested_source_address() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let dst = match listener.local_addr().unwrap() {
            std::net::SocketAddr::V4(v4) => v4,
            other => panic!("unexpected addr {other}"),
        };
        let src = std::net::Ipv4Addr::new(127, 0, 0, 5);
        let mut client = connect_from(src, dst, Duration::from_secs(5)).unwrap();
        let (mut server_side, peer) = listener.accept().unwrap();
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert_eq!(peer.ip(), std::net::IpAddr::V4(src), "source address held");
        }
        client.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        server_side.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
    }

    #[test]
    fn connect_from_reports_refused_connections() {
        // Grab a port and close the listener so nothing is listening there.
        let dst = match TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
        {
            std::net::SocketAddr::V4(v4) => v4,
            other => panic!("unexpected addr {other}"),
        };
        let err = connect_from(
            std::net::Ipv4Addr::new(127, 0, 0, 6),
            dst,
            Duration::from_millis(500),
        )
        .unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::ConnectionRefused | io::ErrorKind::TimedOut
            ),
            "unexpected error {err:?}"
        );
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn raise_nofile_limit_never_lowers() {
        let (soft, hard) = raise_nofile_limit(64).unwrap();
        assert!(soft >= 64);
        assert!(hard >= soft);
    }

    #[test]
    fn timeout_returns_without_events() {
        let poller = Poller::new().unwrap();
        let start = std::time::Instant::now();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        // epoll returns empty; the portable backend may report nothing
        // since nothing is registered. Either way we came back promptly.
        assert!(events.is_empty());
        assert!(start.elapsed() < Duration::from_secs(2));
    }
}
