//! # invmeas-service — the long-running mitigation server
//!
//! PR 1–2 made single runs fast; this crate makes them *servable*. The
//! paper's deployment story (§6.1–§6.2) is that RBMS profiles are
//! expensive to measure but stable across calibration windows, which only
//! pays off in a long-lived process that amortizes characterization across
//! requests. The service is that process:
//!
//! * [`protocol`] — a versioned newline-delimited JSON request/response
//!   schema (`submit`, `characterize`, `status`, `set-window`, `sleep`,
//!   `shutdown`) with a hand-rolled serializer/parser ([`json`]) in the
//!   spirit of `profile_io`'s `rbms v1` format — `std` only, per the
//!   workspace's offline-dependency policy;
//! * [`queue`] — a bounded job queue; a full queue answers `503 busy`
//!   instead of growing without bound (backpressure);
//! * [`cache`] — the drift-aware profile cache keyed by
//!   `(device, method)` and invalidated on calibration-window advance or
//!   a [`qnoise::drift_score`] above threshold, with `profile_io`
//!   write-through persistence — a burst of N AIM requests against one
//!   device performs **one** characterization;
//! * [`breaker`] — per-device circuit breakers and a deterministic
//!   bounded-retry policy around transient characterization failures;
//! * [`server`] — the accept loop, worker pool, idle-connection reaper,
//!   per-job deadlines, panic isolation, and graceful drain;
//! * [`client`] — the blocking client used by `invmeas submit` and tests,
//!   with default timeouts and reconnect-once retry of idempotent
//!   requests.
//!
//! Failure paths are rehearsed, not hoped for: the whole resilience layer
//! is driven by the deterministic fault-injection scripts in
//! [`invmeas_faults`] (see `DESIGN.md` §12 and `crates/service/tests/chaos.rs`).
//!
//! Everything is deterministic under fixed seeds: request results depend
//! only on `(device, window, policy, shots, seed)` and cached profiles
//! depend only on server configuration — never on request arrival order.
//!
//! ```no_run
//! use invmeas_service::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default())?;
//! println!("listening on {}", server.local_addr());
//! server.serve()?; // blocks until a shutdown request drains the queue
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod breaker;
pub mod cache;
pub mod client;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
pub use cache::{CacheConfig, CacheError, CacheHealth, ProfileCache};
pub use client::{call, Client, ClientError, DEFAULT_TIMEOUT};
pub use json::Json;
pub use protocol::{
    CacheOutcome, CharacterizeRequest, CharacterizeResponse, HealthResponse, MethodKind,
    PolicyKind, Request, Response, StatusResponse, SubmitRequest, SubmitResponse,
    PROTOCOL_VERSION,
};
pub use queue::{BoundedQueue, PushError};
pub use server::{Server, ServerConfig};
