//! # invmeas-service — the long-running mitigation server
//!
//! PR 1–2 made single runs fast; this crate makes them *servable*. The
//! paper's deployment story (§6.1–§6.2) is that RBMS profiles are
//! expensive to measure but stable across calibration windows, which only
//! pays off in a long-lived process that amortizes characterization across
//! requests. The service is that process:
//!
//! * [`protocol`] — a versioned newline-delimited JSON request/response
//!   schema (`submit`, `characterize`, `status`, `set-window`, `sleep`,
//!   `shutdown`) with a hand-rolled serializer/parser ([`json`]) in the
//!   spirit of `profile_io`'s `rbms v1` format — `std` only, per the
//!   workspace's offline-dependency policy;
//! * [`queue`] — bounded job queues; a full queue answers `503 busy`
//!   instead of growing without bound (backpressure). The server runs the
//!   sharded variant ([`queue::ShardedQueue`]): jobs hash to a shard by
//!   connection id and idle workers steal from foreign shards, so one hot
//!   connection cannot serialize the pool behind a single lock;
//! * [`poll`] — a dependency-free readiness poller (raw `epoll` syscalls
//!   on Linux, a portable fallback elsewhere) plus a cross-thread
//!   [`poll::Waker`], the foundation of the event-loop front end;
//! * [`conn`] — per-connection state machines: incremental newline-frame
//!   parsing over a reusable read buffer, in-order response slots for
//!   pipelined clients, and write buffers that serialize each response
//!   exactly once;
//! * [`cache`] — the drift-aware profile cache keyed by
//!   `(device, method)` and invalidated on calibration-window advance or
//!   a [`qnoise::drift_score`] above threshold, with `profile_io`
//!   write-through persistence — a burst of N AIM requests against one
//!   device performs **one** characterization;
//! * [`breaker`] — per-device circuit breakers and a deterministic
//!   bounded-retry policy around transient characterization failures;
//! * [`server`] — the front ends (a readiness-driven event loop by
//!   default, the original thread-per-connection design as a baseline),
//!   worker pool, idle-connection reaper, per-job deadlines, panic
//!   isolation, and graceful drain;
//! * [`client`] — the blocking client used by `invmeas submit` and tests,
//!   with default timeouts and reconnect-once retry of idempotent
//!   requests.
//!
//! Failure paths are rehearsed, not hoped for: the whole resilience layer
//! is driven by the deterministic fault-injection scripts in
//! [`invmeas_faults`] (see `DESIGN.md` §12 and `crates/service/tests/chaos.rs`).
//!
//! Everything is deterministic under fixed seeds: request results depend
//! only on `(device, window, policy, shots, seed)` and cached profiles
//! depend only on server configuration — never on request arrival order.
//!
//! ```no_run
//! use invmeas_service::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default())?;
//! println!("listening on {}", server.local_addr());
//! server.serve()?; // blocks until a shutdown request drains the queue
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod breaker;
pub mod cache;
pub mod client;
pub mod cluster;
pub mod conn;
pub mod json;
pub mod membership;
pub mod net;
pub mod overload;
pub mod poll;
pub mod protocol;
pub mod queue;
pub mod replicate;
pub mod server;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
pub use cache::{CacheConfig, CacheError, CacheHealth, ProfileCache};
pub use client::{call, Client, ClientError, ClientReader, ClientSender, DEFAULT_TIMEOUT};
pub use cluster::{ClusterConfig, ClusterError, HashRing, Route};
pub use conn::{Conn, FrameBuffer};
pub use json::Json;
pub use membership::Membership;
pub use net::{NetFabric, NetStream};
pub use overload::{DialGate, RetryBudget};
pub use poll::{Interest, PollEvent, Poller, Waker};
pub use protocol::{
    CacheOutcome, CharacterizeRequest, CharacterizeResponse, ClusterMapResponse, HealthResponse,
    MethodKind, PolicyKind, ReplicateRequest, Request, Response, RouteInfo, StatusResponse,
    SubmitRequest, SubmitResponse, PROTOCOL_VERSION,
};
pub use queue::{BoundedQueue, PushError, PushReceipt, ShardedQueue, ShedClass};
pub use replicate::{MeshReplicator, ProfileReplicator};
pub use server::{Server, ServerConfig};
